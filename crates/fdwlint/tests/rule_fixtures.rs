//! Per-rule fixture tests through the public API: every rule has a
//! passing and a violating snippet, rule text quoted in strings, comments
//! or `#[cfg(test)]` regions never fires, and the allow/ratchet machinery
//! behaves end to end the way `scripts/ci.sh` depends on.

use fdwlint::{scan_sources, scan_workspace, AnalysisOptions, Baseline, Ratchet, SourceFile};

fn src(crate_name: &str, rel_path: &str, text: &str) -> SourceFile {
    SourceFile {
        crate_name: crate_name.into(),
        rel_path: rel_path.into(),
        text: text.into(),
    }
}

/// Full scan (token rules + call-graph pass) at the default taint depth.
fn scan(files: &[SourceFile]) -> fdwlint::ScanOutcome {
    scan_workspace(files, &AnalysisOptions::default())
}

/// `(rule, violating source, passing source)` triples; all placed in a
/// crate/path where the rule is in scope.
fn per_rule_fixtures() -> Vec<(&'static str, SourceFile, SourceFile)> {
    vec![
        (
            "wall-clock-in-sim",
            src(
                "htcsim",
                "crates/htcsim/src/fx.rs",
                "fn f() -> std::time::Instant { std::time::Instant::now() }\n",
            ),
            src(
                "htcsim",
                "crates/htcsim/src/fx.rs",
                "fn f(now: SimTime) -> SimTime { now + 1 }\n",
            ),
        ),
        (
            "unordered-hash-iteration",
            src(
                "dagman",
                "crates/dagman/src/fx.rs",
                "fn f(m: HashMap<u32, u32>) {\n    for (k, v) in &m {\n        emit(k, v);\n    }\n}\n",
            ),
            src(
                "dagman",
                "crates/dagman/src/fx.rs",
                "fn f(m: BTreeMap<u32, u32>) {\n    for (k, v) in &m {\n        emit(k, v);\n    }\n}\n",
            ),
        ),
        (
            "unseeded-randomness",
            src(
                "fakequakes",
                "crates/fakequakes/src/fx.rs",
                "fn f() -> f64 { rand::thread_rng().gen() }\n",
            ),
            src(
                "fakequakes",
                "crates/fakequakes/src/fx.rs",
                "fn f(seed: u64) -> StdRng { StdRng::seed_from_u64(seed) }\n",
            ),
        ),
        (
            "raw-parallelism",
            src(
                "fakequakes",
                "crates/fakequakes/src/fx.rs",
                "fn f(xs: &[f64]) -> Vec<f64> { xs.par_iter().map(|x| x * 2.0).collect() }\n",
            ),
            src(
                "fakequakes",
                "crates/fakequakes/src/fx.rs",
                "fn f(xs: &[f64]) -> Vec<f64> { par::map_chunked(xs, |x| x * 2.0) }\n",
            ),
        ),
        (
            "naive-float-accum",
            src(
                "fakequakes",
                "crates/fakequakes/src/fx.rs",
                "fn moment(terms: &[f64]) -> f64 { terms.iter().sum::<f64>() }\n",
            ),
            src(
                "fakequakes",
                "crates/fakequakes/src/fx.rs",
                "fn moment(terms: &[f64]) -> f64 { crate::simd::lane_sum(terms) }\n",
            ),
        ),
        (
            "unwrap-in-lib",
            src(
                "eew",
                "crates/eew/src/fx.rs",
                "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
            ),
            src(
                "eew",
                "crates/eew/src/fx.rs",
                "fn f(x: Option<u32>) -> Result<u32, Error> { x.ok_or(Error::Missing) }\n",
            ),
        ),
        (
            "nondet-flow-to-sink",
            src(
                "htcsim",
                "crates/htcsim/src/fx.rs",
                "pub fn digest_fold(h: u64, x: u64) -> u64 { h ^ x }\n\
                 pub fn stamp(m: &HashMap<u64, u64>) -> u64 {\n\
                 \x20   let mut h = 0;\n\
                 \x20   for (k, v) in m.iter() {\n\
                 \x20       h = digest_fold(h, k ^ v);\n\
                 \x20   }\n\
                 \x20   h\n\
                 }\n",
            ),
            src(
                "htcsim",
                "crates/htcsim/src/fx.rs",
                "pub fn digest_fold(h: u64, x: u64) -> u64 { h ^ x }\n\
                 pub fn stamp(m: &BTreeMap<u64, u64>) -> u64 {\n\
                 \x20   let mut h = 0;\n\
                 \x20   for (k, v) in m.iter() {\n\
                 \x20       h = digest_fold(h, k ^ v);\n\
                 \x20   }\n\
                 \x20   h\n\
                 }\n",
            ),
        ),
        (
            "dead-config-knob",
            src(
                "fdw-core",
                "crates/core/src/config.rs",
                "impl FdwConfig {\n\
                 \x20   pub fn parse(text: &str) -> Result<Self, String> {\n\
                 \x20       let mut cfg = FdwConfig::default();\n\
                 \x20       match key {\n\
                 \x20           \"ghost_knob\" => cfg.ghost_knob = value.parse().map_err(|_| bad(\"ghost_knob\"))?,\n\
                 \x20       }\n\
                 \x20       Ok(cfg)\n\
                 \x20   }\n\
                 }\n",
            ),
            src(
                "fdw-core",
                "crates/core/src/config.rs",
                "impl FdwConfig {\n\
                 \x20   pub fn parse(text: &str) -> Result<Self, String> {\n\
                 \x20       let mut cfg = FdwConfig::default();\n\
                 \x20       match key {\n\
                 \x20           // fdwlint::allow(dead-config-knob): staged rollout; the reader lands with the next engine PR\n\
                 \x20           \"ghost_knob\" => cfg.ghost_knob = value.parse().map_err(|_| bad(\"ghost_knob\"))?,\n\
                 \x20       }\n\
                 \x20       Ok(cfg)\n\
                 \x20   }\n\
                 }\n",
            ),
        ),
        (
            "ulog-code-registry",
            src(
                "htcsim",
                "crates/htcsim/src/condor_log.rs",
                "pub mod codes {\n\
                 \x20   pub const SUBMITTED: &str = \"000\";\n\
                 \x20   pub const TERMINATED: &str = \"005\";\n\
                 \x20   pub const DUP: &str = \"005\";\n\
                 }\n",
            ),
            src(
                "htcsim",
                "crates/htcsim/src/condor_log.rs",
                "pub mod codes {\n\
                 \x20   pub const SUBMITTED: &str = \"000\";\n\
                 \x20   pub const TERMINATED: &str = \"005\";\n\
                 }\n\
                 pub fn writer(code: &str) -> String { format!(\"{code} ...\") }\n",
            ),
        ),
        (
            "unblessed-parallel-reachability",
            src(
                "htcsim",
                "crates/htcsim/src/des.rs",
                "pub fn run_epochs() { drain(); }\n\
                 fn drain() {\n\
                 \x20   rayon::join(|| 1, || 2);\n\
                 }\n",
            ),
            src(
                "htcsim",
                "crates/htcsim/src/des.rs",
                "pub fn run_epochs() { drain(); }\n\
                 fn drain() {\n\
                 \x20   // fdwlint::allow(raw-parallelism): epoch halves are disjoint index ranges; merge order is fixed\n\
                 \x20   rayon::join(|| 1, || 2);\n\
                 }\n",
            ),
        ),
    ]
}

#[test]
fn every_rule_has_a_firing_and_a_passing_fixture() {
    for (rule, bad, good) in per_rule_fixtures() {
        let hit = scan(&[bad]);
        assert!(
            hit.findings.iter().any(|f| f.rule == rule),
            "{rule}: violating fixture did not fire ({:?})",
            hit.findings
        );
        assert!(hit.directive_errors.is_empty());
        let clean = scan(&[good]);
        assert!(
            clean.findings.is_empty(),
            "{rule}: passing fixture fired {:?}",
            clean.findings
        );
    }
}

#[test]
fn every_registered_rule_is_covered_by_a_fixture() {
    // per_rule_fixtures() must not silently fall behind the rule set.
    let covered: Vec<&str> = per_rule_fixtures().iter().map(|(r, _, _)| *r).collect();
    for r in fdwlint::rules::RULES {
        assert!(covered.contains(&r.name), "no fixture for rule {}", r.name);
    }
    assert_eq!(covered.len(), fdwlint::rules::RULES.len());
}

#[test]
fn rule_text_in_strings_comments_and_test_regions_never_fires() {
    let text = concat!(
        "//! Mentions Instant::now(), thread_rng(), par_iter and .unwrap()\n",
        "//! in prose, which must not fire.\n",
        "\n",
        "const DOC: &str = \"call Instant::now() then x.unwrap() in par_iter\";\n",
        "const RAW: &str = r#\"thread_rng inside a raw \"string\" literal\"#;\n",
        "const CH: char = '\\\"'; // and panic!(...) in a trailing comment\n",
        "\n",
        "fn ok(m: &BTreeMap<u32, u32>) -> usize { m.len() }\n",
        "\n",
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    #[test]\n",
        "    fn t() {\n",
        "        let t = std::time::Instant::now();\n",
        "        let mut rng = rand::thread_rng();\n",
        "        let m: HashMap<u32, u32> = HashMap::new();\n",
        "        for (k, v) in &m { assert!(k <= v); }\n",
        "        std::thread::spawn(|| {}).join().unwrap();\n",
        "        panic!(\"tests may panic\");\n",
        "    }\n",
        "}\n",
    );
    let out = scan_sources(&[src("htcsim", "crates/htcsim/src/fx.rs", text)]);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
    assert!(
        out.directive_errors.is_empty(),
        "{:?}",
        out.directive_errors
    );
}

#[test]
fn allow_directives_suppress_with_reason_and_error_without() {
    let allowed = src(
        "htcsim",
        "crates/htcsim/src/fx.rs",
        "// fdwlint::allow(wall-clock-in-sim): measuring host-side setup cost only\n\
         fn f() { let _ = std::time::Instant::now(); }\n",
    );
    let out = scan_sources(&[allowed]);
    assert!(out.findings.is_empty());
    assert!(out.directive_errors.is_empty());

    let reasonless = src(
        "htcsim",
        "crates/htcsim/src/fx.rs",
        "// fdwlint::allow(wall-clock-in-sim)\n\
         fn f() { let _ = std::time::Instant::now(); }\n",
    );
    let out = scan_sources(&[reasonless]);
    assert_eq!(out.directive_errors.len(), 1, "reason is mandatory");
    assert_eq!(out.findings.len(), 1, "broken directive must not suppress");

    let unknown = src(
        "htcsim",
        "crates/htcsim/src/fx.rs",
        "// fdwlint::allow(made-up-rule): nope\n",
    );
    let out = scan_sources(&[unknown]);
    assert_eq!(out.directive_errors.len(), 1);
    assert!(out.directive_errors[0].message.contains("unknown rule"));
    // Directive errors alone make the scan dirty even under an empty tree.
    let r = Ratchet::compare(&out, &Baseline::default());
    assert!(!r.is_clean(&out));
}

#[test]
fn ratchet_fails_growth_accepts_status_quo_and_notes_reduction() {
    let two = scan_sources(&[src(
        "eew",
        "crates/eew/src/fx.rs",
        "fn f(a: Option<u32>, b: Option<u32>) -> u32 { a.unwrap() + b.unwrap() }\n",
    )]);
    assert_eq!(two.counts().get("unwrap-in-lib/eew"), Some(&2));

    let mut frozen = Baseline::default();
    frozen.counts.insert("unwrap-in-lib/eew".into(), 2);

    // Status quo is clean; growth is not; reduction is clean + improved.
    let r = Ratchet::compare(&two, &frozen);
    assert!(r.is_clean(&two), "{:?}", r.over_budget);

    let mut tighter = Baseline::default();
    tighter.counts.insert("unwrap-in-lib/eew".into(), 1);
    let r = Ratchet::compare(&two, &tighter);
    assert!(!r.is_clean(&two));
    assert_eq!(r.over_budget.len(), 1);
    assert_eq!(r.over_budget[0].3.len(), 2, "members listed for the bucket");

    let one = scan_sources(&[src(
        "eew",
        "crates/eew/src/fx.rs",
        "fn f(a: Option<u32>) -> u32 { a.unwrap() }\n",
    )]);
    let r = Ratchet::compare(&one, &frozen);
    assert!(r.is_clean(&one));
    assert_eq!(r.improved, vec![("unwrap-in-lib/eew".to_string(), 2, 1)]);
    assert_eq!(r.tightened().count("unwrap-in-lib/eew"), 1);
}

#[test]
fn baseline_json_roundtrips_through_the_obs_dialect() {
    let mut b = Baseline::default();
    b.counts.insert("unwrap-in-lib/eew".into(), 1);
    b.counts.insert("raw-parallelism/fakequakes".into(), 3);
    let text = b.to_json();
    assert!(fdw_obs::json::validate(&text).is_ok(), "{text}");
    let back = Baseline::parse(&text).expect("own output parses");
    assert_eq!(back.counts, b.counts);
    // Corrupt documents are rejected, not half-read; a missing counts
    // object is an empty baseline, not an error.
    assert!(Baseline::parse("{\"version\": 99, \"counts\": {}}").is_err());
    assert!(Baseline::parse("{\"counts\": {}}").is_err());
    assert!(Baseline::parse("not json").is_err());
    assert!(Baseline::parse("{\"version\": 1}")
        .unwrap()
        .counts
        .is_empty());
}
