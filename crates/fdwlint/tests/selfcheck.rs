//! The workspace self-check: scanning the repository this test lives in
//! must come back clean against the committed `fdwlint.baseline.json`.
//! This is the same gate `scripts/ci.sh` runs via the CLI, wired into
//! `cargo test` so a violating edit fails before CI ever sees it.

use std::path::PathBuf;

use fdwlint::{collect_workspace_sources, report, scan_sources, Baseline, Ratchet};

fn workspace_root() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    root.canonicalize().expect("workspace root resolves")
}

#[test]
fn workspace_is_clean_against_committed_baseline() {
    let root = workspace_root();
    let sources = collect_workspace_sources(&root).expect("workspace sources readable");
    assert!(
        sources.len() > 50,
        "suspiciously few sources ({}) — walker broken?",
        sources.len()
    );
    // This very file must be in the walk (tests are scanned for
    // directive errors even though path-scoped rules skip them).
    assert!(sources
        .iter()
        .any(|s| s.rel_path == "crates/fdwlint/tests/selfcheck.rs"));

    let outcome = scan_sources(&sources);
    assert!(
        outcome.directive_errors.is_empty(),
        "broken allow directives:\n{:#?}",
        outcome.directive_errors
    );

    let baseline_text = std::fs::read_to_string(root.join("fdwlint.baseline.json"))
        .expect("committed fdwlint.baseline.json");
    let baseline = Baseline::parse(&baseline_text).expect("committed baseline parses");
    let ratchet = Ratchet::compare(&outcome, &baseline);
    assert!(
        ratchet.is_clean(&outcome),
        "workspace over fdwlint budget — fix the findings, add an allow \
         with a rationale, or (for reductions only) run \
         `cargo run -p fdwlint -- --update-baseline`:\n{}",
        report::human(&outcome, &ratchet)
    );
}

#[test]
fn committed_baseline_is_canonical() {
    // The committed file must be byte-for-byte what fdwlint itself would
    // write: hand-edits that reorder keys or tweak whitespace break the
    // "one canonical artifact" property diffs rely on.
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("fdwlint.baseline.json")).unwrap();
    assert!(fdw_obs::json::validate(&text).is_ok());
    let parsed = Baseline::parse(&text).unwrap();
    assert_eq!(text, parsed.to_json(), "baseline not in canonical form");
}

#[test]
fn json_report_of_the_workspace_validates() {
    let root = workspace_root();
    let sources = collect_workspace_sources(&root).unwrap();
    let outcome = scan_sources(&sources);
    let baseline =
        Baseline::parse(&std::fs::read_to_string(root.join("fdwlint.baseline.json")).unwrap())
            .unwrap();
    let ratchet = Ratchet::compare(&outcome, &baseline);
    let doc = report::json(&outcome, &ratchet, &baseline);
    assert!(
        fdw_obs::json::validate(&doc).is_ok(),
        "fdwlint --json emits invalid JSON"
    );
    assert!(doc.contains("\"tool\": \"fdwlint\""));
    assert!(doc.contains("\"status\": \"clean\""));
}
