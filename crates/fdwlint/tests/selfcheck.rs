//! The workspace self-check: scanning the repository this test lives in
//! must come back clean against the committed `fdwlint.baseline.json`.
//! This is the same gate `scripts/ci.sh` runs via the CLI, wired into
//! `cargo test` so a violating edit fails before CI ever sees it.

use std::path::PathBuf;

use fdwlint::{
    collect_workspace_sources, report, scan_workspace, AnalysisOptions, Baseline, Ratchet,
};

fn workspace_root() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    root.canonicalize().expect("workspace root resolves")
}

#[test]
fn workspace_is_clean_against_committed_baseline() {
    let root = workspace_root();
    let sources = collect_workspace_sources(&root).expect("workspace sources readable");
    assert!(
        sources.len() > 50,
        "suspiciously few sources ({}) — walker broken?",
        sources.len()
    );
    // This very file must be in the walk (tests are scanned for
    // directive errors even though path-scoped rules skip them).
    assert!(sources
        .iter()
        .any(|s| s.rel_path == "crates/fdwlint/tests/selfcheck.rs"));

    let outcome = scan_workspace(&sources, &AnalysisOptions::default());
    assert!(
        outcome.directive_errors.is_empty(),
        "broken allow directives:\n{:#?}",
        outcome.directive_errors
    );

    let baseline_text = std::fs::read_to_string(root.join("fdwlint.baseline.json"))
        .expect("committed fdwlint.baseline.json");
    let baseline = Baseline::parse(&baseline_text).expect("committed baseline parses");
    let ratchet = Ratchet::compare(&outcome, &baseline);
    assert!(
        ratchet.is_clean(&outcome),
        "workspace over fdwlint budget — fix the findings, add an allow \
         with a rationale, or (for reductions only) run \
         `cargo run -p fdwlint -- --write-baseline`:\n{}",
        report::human(&outcome, &ratchet)
    );
}

#[test]
fn real_workspace_call_graph_resolves_95_percent_of_sites() {
    // The taint pass is only as sound as its call resolution. If the
    // item parser or the resolver regresses, unresolved sites silently
    // hide flows — gate on the real workspace's resolution rate.
    let root = workspace_root();
    let sources = collect_workspace_sources(&root).unwrap();
    let outcome = scan_workspace(&sources, &AnalysisOptions::default());
    let g = outcome.graph_stats.expect("graph pass ran");
    assert!(g.total_sites > 5_000, "suspiciously few call sites: {g:?}");
    assert!(
        g.resolution_rate() >= 0.95,
        "call-site resolution regressed below 95%: {g:?}"
    );
}

#[test]
fn the_one_blessed_nondet_flow_is_recorded_not_reported() {
    // The workspace's single justified source->sink flow — live-compute
    // phase timing into fq telemetry (crates/core/src/live.rs `timed`) —
    // must surface as an AllowedFlow with its rationale, so sanitize.sh
    // can cross-reference differing telemetry artifacts against it.
    let root = workspace_root();
    let sources = collect_workspace_sources(&root).unwrap();
    let outcome = scan_workspace(&sources, &AnalysisOptions::default());
    let timed: Vec<_> = outcome
        .allowed_flows
        .iter()
        .filter(|a| a.rel_path == "crates/core/src/live.rs" && a.sink_kind == "telemetry")
        .collect();
    assert_eq!(
        timed.len(),
        1,
        "expected exactly the live.rs timed() flow: {:#?}",
        outcome.allowed_flows
    );
    assert!(timed[0].chain.join("\n").contains("wallclock"));
    assert!(!timed[0].reason.is_empty());
}

#[test]
fn committed_baseline_is_canonical() {
    // The committed file must be byte-for-byte what fdwlint itself would
    // write: hand-edits that reorder keys or tweak whitespace break the
    // "one canonical artifact" property diffs rely on.
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("fdwlint.baseline.json")).unwrap();
    assert!(fdw_obs::json::validate(&text).is_ok());
    let parsed = Baseline::parse(&text).unwrap();
    assert_eq!(text, parsed.to_json(), "baseline not in canonical form");
}

#[test]
fn json_report_of_the_workspace_validates() {
    let root = workspace_root();
    let sources = collect_workspace_sources(&root).unwrap();
    let outcome = scan_workspace(&sources, &AnalysisOptions::default());
    let baseline =
        Baseline::parse(&std::fs::read_to_string(root.join("fdwlint.baseline.json")).unwrap())
            .unwrap();
    let ratchet = Ratchet::compare(&outcome, &baseline);
    let doc = report::json(&outcome, &ratchet, &baseline);
    assert!(
        fdw_obs::json::validate(&doc).is_ok(),
        "fdwlint --json emits invalid JSON"
    );
    assert!(doc.contains("\"tool\": \"fdwlint\""));
    assert!(doc.contains("\"status\": \"clean\""));
}
