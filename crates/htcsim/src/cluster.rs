//! The cluster: a deterministic discrete-event simulation of job execution
//! on the pool, tying together the event queue, matchmaker, transfers and
//! user log. Workloads (DAGMans) plug in through [`WorkloadDriver`].
//!
//! Lifecycle of one job: `Idle → (negotiation match) → TransferringInput →
//! Running → TransferringOutput → Completed`, with `Evicted → Idle`
//! whenever the glidein underneath disappears — exactly the observable
//! state machine of an OSPool job.

use std::collections::{BTreeMap, HashMap, VecDeque};

use fdw_obs::Obs;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::event::{Event, EventQueue, LaneId};
use crate::fault::{
    FaultConfig, FaultPlan, HoldReason, BLACK_HOLE_FAIL_S, EXIT_BLACK_HOLE, EXIT_CORRUPT,
};
use crate::federation::{Checkpoint, Federation, FederationConfig, FederationStats};
use crate::job::{JobEvent, JobEventKind, JobId, JobSpec, JobState, OwnerId, SubmitRequest};
use crate::pool::{MachineId, Pool, PoolConfig};
use crate::rand_util::exponential;
use crate::scoreboard::{DefenseConfig, DefenseStats, Scoreboard};
use crate::time::SimTime;
use crate::transfer::{StashCache, TransferConfig};
use crate::userlog::UserLog;

/// A workload that submits jobs in reaction to cluster events (a DAGMan,
/// a bag of tasks, …).
pub trait WorkloadDriver {
    /// Called once at simulation start and after every event batch.
    /// `events` holds the job events since the previous call. Return new
    /// submissions (possibly empty).
    fn poll(&mut self, now: SimTime, events: &[JobEvent]) -> Vec<SubmitRequest>;

    /// Notification of the id assigned to a submission, in the order the
    /// requests were returned from [`Self::poll`].
    fn on_assigned(&mut self, _job: JobId, _name: &str) {}

    /// True when the workload has nothing more to submit and considers
    /// itself finished.
    fn is_done(&self) -> bool;

    /// Jobs the workload wants removed from the queue (`condor_rm`),
    /// drained after every poll. Used by speculative re-execution to
    /// cancel the losing duplicate; the default workload cancels
    /// nothing.
    fn cancellations(&mut self) -> Vec<JobId> {
        Vec::new()
    }
}

/// Cluster-wide configuration.
#[derive(Debug, Clone, Default)]
pub struct ClusterConfig {
    /// Pool behaviour.
    pub pool: PoolConfig,
    /// Transfer bandwidths.
    pub transfer: TransferConfig,
    /// Whether the Stash cache is active (ablation switch).
    pub cache_enabled: bool,
    /// Remove a job from the queue after this many evictions (HTCondor's
    /// `periodic_remove` guard against crash-looping nodes). 0 = never.
    pub max_evictions_per_job: u32,
    /// Injected fault mix (all-zero by default: a well-behaved pool).
    pub faults: FaultConfig,
    /// Self-healing defense knobs (all off by default).
    pub defense: DefenseConfig,
    /// Federated multi-pool layer (disabled by default: one flat pool).
    pub federation: FederationConfig,
    /// Physical event-queue shards. Lanes (control + one per pool) map
    /// onto shards by `lane % shards`; 0 is treated as 1. The pop order
    /// is pinned by [`crate::event::EventKey`], so every shard count
    /// yields byte-identical runs — this knob only changes heap layout.
    pub shards: usize,
}

impl ClusterConfig {
    /// Default configuration with the cache enabled.
    pub fn with_cache() -> Self {
        Self {
            cache_enabled: true,
            ..Default::default()
        }
    }
}

struct JobRuntime {
    spec: JobSpec,
    owner: OwnerId,
    state: JobState,
    machine: Option<MachineId>,
    /// Serial bumped on every (re)schedule; stale events are ignored.
    serial: u64,
    /// Evictions suffered so far (drives `max_evictions_per_job`).
    evictions: u32,
    /// Submission attempt index of this job's name under this owner
    /// (0 for the first submission, 1 for the first DAGMan retry, …) —
    /// the salt that lets transient faults differ across retries.
    attempt: u64,
    /// Exit code the current execution attempt is fated to fail with
    /// (decided at execute start, delivered at ExecDone).
    pending_exit: Option<i32>,
    /// The last stage-in detected (and quarantined) a corrupted cache
    /// entry: the job must be held with a checksum-mismatch reason.
    corrupt_detected: bool,
    /// The last stage-in silently delivered a corrupted file (checksum
    /// verification off): the attempt is fated to fail.
    poisoned_input: bool,
    /// When the current stage-in started (span bookkeeping).
    stage_in_at: SimTime,
    /// When the current execution attempt started.
    exec_at: SimTime,
    /// When the current stage-out started.
    stage_out_at: SimTime,
    /// Checkpoint saved by the last preemption/outage (federated runs
    /// with checkpointing on; the next attempt resumes here).
    checkpoint: Option<Checkpoint>,
    /// Total work of the current attempt, work-seconds at speed 1.0.
    work_total: f64,
    /// Displaced by a pool fault (preemption, outage, drain); the next
    /// match checks whether it lands in a different pool (= migration).
    displaced: bool,
    /// Pool of the last machine this job matched.
    last_pool: Option<u32>,
    /// The current transfer already emitted its partition-stall event.
    stall_flagged: bool,
}

/// One negotiation-cycle snapshot of pool state — the "OSG's variable
/// resources" the paper's discussion blames for runtime volatility.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolSample {
    /// Cycle time.
    pub time: SimTime,
    /// Total slots in the pool.
    pub total_slots: usize,
    /// Slots running our jobs.
    pub busy_slots: usize,
    /// Background-contention available fraction this cycle.
    pub avail_frac: f64,
    /// Idle jobs waiting in the queue.
    pub idle_jobs: usize,
}

/// Result of a cluster run.
#[derive(Debug)]
pub struct RunReport {
    /// Full event log.
    pub log: UserLog,
    /// Final simulated time.
    pub makespan: SimTime,
    /// Jobs completed.
    pub completed: usize,
    /// Total evictions observed.
    pub evictions: u64,
    /// Total hold (012) events observed.
    pub holds: u64,
    /// Total non-zero-exit terminations observed.
    pub exec_failures: u64,
    /// Stash cache hit rate over the run.
    pub cache_hit_rate: f64,
    /// Job-id to job-name mapping (for phase attribution).
    pub job_names: HashMap<JobId, String>,
    /// True if the run hit the simulated-time safety cap before the
    /// workload finished.
    pub timed_out: bool,
    /// Per-negotiation-cycle pool telemetry.
    pub pool_series: Vec<PoolSample>,
    /// Defense-action totals (blacklists, paroles, quarantines).
    pub defense: DefenseStats,
    /// Federation event totals (all-zero when no federation runs).
    pub federation: FederationStats,
}

impl RunReport {
    /// Convenience: name lookup closure for [`UserLog::jobs_csv`].
    pub fn name_of(&self) -> impl Fn(JobId) -> String + '_ {
        move |j| {
            self.job_names
                .get(&j)
                .cloned()
                .unwrap_or_else(|| "?".into())
        }
    }
}

/// The simulator.
pub struct Cluster {
    config: ClusterConfig,
    rng: StdRng,
    pool: Pool,
    queue: EventQueue,
    log: UserLog,
    cache: StashCache,
    jobs: HashMap<JobId, JobRuntime>,
    job_names: HashMap<JobId, String>,
    /// Idle queues per owner, FIFO.
    idle: HashMap<OwnerId, VecDeque<JobId>>,
    /// Round-robin cursor over owners for fair share.
    owner_order: Vec<OwnerId>,
    next_job: u64,
    now: SimTime,
    pending_events: Vec<JobEvent>,
    evictions: u64,
    /// Rotating index into the free-slot list (spreads jobs over sites).
    slot_cursor: usize,
    /// Origin transfers currently in flight (uplink contention).
    active_origin: usize,
    /// Jobs whose in-flight stage-in used the origin (so eviction and
    /// completion release the counter correctly).
    origin_users: std::collections::HashSet<JobId>,
    pool_series: Vec<PoolSample>,
    /// The realised fault schedule (a no-op unless faults are enabled).
    plan: FaultPlan,
    /// Submission counts per (owner, job name) — the attempt index.
    attempt_counts: HashMap<(OwnerId, String), u64>,
    /// Per-machine reliability scoreboard (inert when defenses are off).
    scoreboard: Scoreboard,
    /// Federated multi-pool layer (None: classic single-pool run).
    federation: Option<Federation>,
    holds: u64,
    exec_failures: u64,
    /// Telemetry handle (disabled by default: zero overhead).
    obs: Obs,
}

impl Cluster {
    /// Create a cluster with the given configuration and seed.
    pub fn new(config: ClusterConfig, seed: u64) -> Self {
        let pool = Pool::new(config.pool.clone());
        let cache = if config.cache_enabled {
            StashCache::new()
        } else {
            StashCache::disabled()
        };
        let plan = FaultPlan::new(config.faults);
        let scoreboard = Scoreboard::new(config.defense);
        let federation = config
            .federation
            .enabled
            .then(|| Federation::new(config.federation));
        let queue = EventQueue::with_shards(config.shards);
        Self {
            config,
            rng: StdRng::seed_from_u64(seed ^ 0x4854_434f_4e44_4f52),
            pool,
            queue,
            log: UserLog::new(),
            cache,
            jobs: HashMap::new(),
            job_names: HashMap::new(),
            idle: HashMap::new(),
            owner_order: Vec::new(),
            next_job: 0,
            now: SimTime::ZERO,
            pending_events: Vec::new(),
            evictions: 0,
            slot_cursor: 0,
            active_origin: 0,
            origin_users: std::collections::HashSet::new(),
            pool_series: Vec::new(),
            plan,
            attempt_counts: HashMap::new(),
            scoreboard,
            federation,
            holds: 0,
            exec_failures: 0,
            obs: Obs::disabled(),
        }
    }

    /// Attach a telemetry handle. Spans land in category `pool`, metrics
    /// under `pool.*` / `xfer.*` / `cache.*`.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Run `driver` to completion (or to the simulated-time cap). Consumes
    /// the cluster and returns the report.
    pub fn run(mut self, driver: &mut dyn WorkloadDriver) -> RunReport {
        self.bootstrap();
        self.drive(driver);
        let mut timed_out = false;
        while let Some((t, ev)) = self.queue.pop() {
            if t.as_secs() > self.config.pool.max_sim_time_s {
                timed_out = true;
                break;
            }
            self.now = t;
            self.handle(ev);
            // Batch events that share this timestamp before polling the
            // driver, so it sees a consistent snapshot.
            while self.queue.peek_time() == Some(self.now) {
                let (_, ev) = self.queue.pop().unwrap();
                self.handle(ev);
            }
            self.drive(driver);
            if driver.is_done() && self.all_jobs_settled() {
                break;
            }
        }
        self.obs.inc("cache.hits", self.cache.hits());
        self.obs.inc("cache.misses", self.cache.misses());
        self.obs.inc("cache.quarantines", self.cache.quarantines());
        // Settle trust state at campaign end: a machine blacklisted right
        // at the end must not read as still-blacklisted in final metrics
        // once its parole timer elapsed.
        let paroles_before = self.scoreboard.stats().paroles;
        self.scoreboard.reckon(self.now.as_secs() as f64);
        let settled = self.scoreboard.stats().paroles - paroles_before;
        if settled > 0 {
            self.obs.inc("pool.defense.paroles", settled);
        }
        let federation = self
            .federation
            .as_ref()
            .map(|f| f.stats())
            .unwrap_or_default();
        if self.federation.is_some() {
            self.obs.inc("pool.federation.outages", federation.outages);
            self.obs
                .inc("pool.federation.preemptions", federation.preemptions);
            self.obs.inc(
                "pool.federation.partition_stalls",
                federation.partition_stalls,
            );
            self.obs
                .inc("pool.federation.migrations", federation.migrations);
            self.obs
                .inc("pool.federation.checkpoints", federation.checkpoints);
            self.obs.inc("pool.federation.resumes", federation.resumes);
            self.obs
                .inc("pool.federation.breaker_opens", federation.breaker_opens);
            self.obs
                .inc("pool.federation.breaker_probes", federation.breaker_probes);
            self.obs
                .inc("pool.federation.breaker_closes", federation.breaker_closes);
            self.obs.inc("pool.federation.drained", federation.drained);
        }
        RunReport {
            makespan: self.log.makespan(),
            completed: self.log.completed_count(),
            evictions: self.evictions,
            holds: self.holds,
            exec_failures: self.exec_failures,
            cache_hit_rate: self.cache.hit_rate(),
            log: self.log,
            job_names: self.job_names,
            timed_out,
            pool_series: self.pool_series,
            defense: self.scoreboard.stats(),
            federation,
        }
    }

    fn bootstrap(&mut self) {
        // Seed the pool at its steady-state size with staggered lifetimes.
        let groups = self.config.pool.target_slots / self.config.pool.glidein_slots;
        for _ in 0..groups.max(1) {
            let (id, life) = self.pool.add_machine(&mut self.rng);
            if let Some(f) = self.federation.as_mut() {
                f.assign_machine(id);
            }
            self.obs.inc("pool.machines_joined", 1);
            self.queue
                .push(self.now + life as u64, Event::MachineDepart(id));
        }
        // Pool-granularity fault windows are scheduled up front: they are
        // part of the (deterministic) world, not reactions to it.
        if self.federation.is_some() {
            let pf = self.config.faults.pool;
            if pf.outage_duration_s > 0.0 {
                self.queue.push(
                    SimTime(pf.outage_start_s as u64),
                    Event::PoolOutageStart(pf.outage_pool),
                );
                self.queue.push(
                    SimTime((pf.outage_start_s + pf.outage_duration_s) as u64),
                    Event::PoolOutageEnd(pf.outage_pool),
                );
            }
            if pf.partition_duration_s > 0.0 {
                self.queue.push(
                    SimTime(pf.partition_start_s as u64),
                    Event::PartitionStart(pf.partition_pool),
                );
                self.queue.push(
                    SimTime((pf.partition_start_s + pf.partition_duration_s) as u64),
                    Event::PartitionEnd(pf.partition_pool),
                );
            }
        }
        let interval = self.pool.config().arrival_interval_s();
        let next = exponential(&mut self.rng, interval) as u64;
        self.queue
            .push(self.now + next.max(1), Event::MachineArrive);
        self.queue.push(
            self.now + self.config.pool.negotiation_period_s,
            Event::Negotiate,
        );
    }

    fn all_jobs_settled(&self) -> bool {
        self.jobs.values().all(|j| {
            matches!(
                j.state,
                JobState::Completed | JobState::Removed | JobState::Failed
            )
        })
    }

    fn drive(&mut self, driver: &mut dyn WorkloadDriver) {
        let events = std::mem::take(&mut self.pending_events);
        let submissions = driver.poll(self.now, &events);
        for req in submissions {
            let id = self.submit(req);
            let name = self.job_names[&id].clone();
            driver.on_assigned(id, &name);
        }
        for job in driver.cancellations() {
            self.remove_job(job);
        }
    }

    /// `condor_rm`: remove a job from the queue wherever it is. A
    /// non-terminal job releases its resources and emits a 009 Removed
    /// event; terminal jobs are left untouched.
    fn remove_job(&mut self, job: JobId) {
        if self.origin_users.remove(&job) {
            self.active_origin = self.active_origin.saturating_sub(1);
        }
        let Some(j) = self.jobs.get_mut(&job) else {
            return;
        };
        if matches!(
            j.state,
            JobState::Completed | JobState::Removed | JobState::Failed
        ) {
            return;
        }
        j.state = JobState::Removed;
        j.serial += 1;
        j.pending_exit = None;
        let owner = j.owner;
        if let Some(m) = j.machine.take() {
            self.pool.release_slot(m);
        }
        self.obs.inc("pool.removals", 1);
        self.obs
            .instant("pool", "remove", job.0, self.now.as_secs());
        self.emit(job, owner, JobEventKind::Removed);
    }

    fn submit(&mut self, req: SubmitRequest) -> JobId {
        let id = JobId(self.next_job);
        self.next_job += 1;
        self.job_names.insert(id, req.spec.name.clone());
        let attempt = {
            let n = self
                .attempt_counts
                .entry((req.owner, req.spec.name.clone()))
                .or_insert(0);
            let a = *n;
            *n += 1;
            a
        };
        self.jobs.insert(
            id,
            JobRuntime {
                spec: req.spec,
                owner: req.owner,
                state: JobState::Idle,
                machine: None,
                serial: 0,
                evictions: 0,
                attempt,
                pending_exit: None,
                corrupt_detected: false,
                poisoned_input: false,
                stage_in_at: SimTime::ZERO,
                exec_at: SimTime::ZERO,
                stage_out_at: SimTime::ZERO,
                checkpoint: None,
                work_total: 0.0,
                displaced: false,
                last_pool: None,
                stall_flagged: false,
            },
        );
        if !self.owner_order.contains(&req.owner) {
            self.owner_order.push(req.owner);
        }
        self.idle.entry(req.owner).or_default().push_back(id);
        self.emit(id, req.owner, JobEventKind::Submitted);
        id
    }

    fn emit(&mut self, job: JobId, owner: OwnerId, kind: JobEventKind) {
        self.emit_event(JobEvent::new(self.now, job, owner, kind));
    }

    fn emit_event(&mut self, ev: JobEvent) {
        self.log.record(ev);
        self.pending_events.push(ev);
    }

    /// Feed one execution outcome into the reliability scoreboard and
    /// surface any resulting blacklist in the telemetry.
    fn record_exec_outcome(&mut self, machine: MachineId, exec_at: SimTime, failed: bool) {
        if !self.config.defense.scoreboard_enabled {
            return;
        }
        let before = self.scoreboard.stats().blacklists;
        self.scoreboard.record_exec(
            machine,
            self.now.as_secs() as f64,
            self.now.since(exec_at) as f64,
            failed,
        );
        if self.scoreboard.stats().blacklists > before {
            self.obs.inc("pool.defense.blacklists", 1);
            self.obs
                .instant("pool", "blacklist", machine.0, self.now.as_secs());
        }
    }

    /// Per-execution-attempt fault salt: distinct across DAGMan retries
    /// (`attempt`) and across in-queue reruns of the same JobId after an
    /// eviction or release (`serial`).
    fn fault_salt(attempt: u64, serial: u64) -> u64 {
        attempt.wrapping_mul(1_000_003).wrapping_add(serial)
    }

    /// Put a job on hold: release its slot, emit a 012 event, and
    /// schedule the automatic release back to Idle.
    fn hold_job(&mut self, job: JobId, reason: HoldReason) {
        let Some(j) = self.jobs.get_mut(&job) else {
            return;
        };
        let machine = j.machine.take();
        j.state = JobState::Held;
        j.serial += 1;
        j.pending_exit = None;
        let serial = j.serial;
        let owner = j.owner;
        if let Some(m) = machine {
            self.pool.release_slot(m);
        }
        self.holds += 1;
        self.obs.inc("pool.holds", 1);
        self.obs.inc(&format!("pool.holds.{}", reason.key()), 1);
        self.obs.instant(
            "pool",
            &format!("hold:{}", reason.key()),
            job.0,
            self.now.as_secs(),
        );
        // Checksum holds are a defense-internal re-queue (release, then
        // re-fetch from origin), far shorter than an operator-scale hold.
        let wait = if reason == HoldReason::ChecksumMismatch {
            (self.config.defense.checksum_requeue_s as u64).max(1)
        } else {
            (self.config.faults.hold_release_s as u64).max(1)
        };
        self.push_job(self.now + wait, job, Event::Release(job, serial));
        self.emit_event(JobEvent::new(self.now, job, owner, JobEventKind::Held).with_hold(reason));
    }

    /// Logical lane for lifecycle events of a job occupying `machine`:
    /// lane `pool + 1` under federation, lane 1 when unmatched or not
    /// federated. Control events (negotiation, glidein churn, pool fault
    /// windows) stay on [`LaneId::CONTROL`]. A pure function of sim
    /// state — never of the shard count — so the event merge order (and
    /// with it every golden fixture) is shard-invariant. Cross-lane
    /// interactions (migration re-matches, federation displacement)
    /// always pass through the sequential k-way merge point, which acts
    /// as the epoch barrier: a lane never observes another lane's state
    /// except through an event popped under the total order.
    fn lane_of(federation: &Option<Federation>, machine: Option<MachineId>) -> LaneId {
        let pool = federation
            .as_ref()
            .zip(machine)
            .and_then(|(f, m)| f.pool_of(m));
        LaneId(pool.map_or(1, |p| p + 1))
    }

    /// Schedule a job-lifecycle event on the lane of the job's current
    /// machine (lane 1 while unmatched).
    fn push_job(&mut self, time: SimTime, job: JobId, ev: Event) {
        let machine = self.jobs.get(&job).and_then(|j| j.machine);
        let lane = Self::lane_of(&self.federation, machine);
        self.queue.push_lane(time, lane, ev);
    }

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::MachineArrive => {
                let (id, life) = self.pool.add_machine(&mut self.rng);
                if let Some(f) = self.federation.as_mut() {
                    f.assign_machine(id);
                }
                self.obs.inc("pool.machines_joined", 1);
                self.obs
                    .instant("pool", "machine_join", id.0, self.now.as_secs());
                self.queue
                    .push(self.now + (life as u64).max(60), Event::MachineDepart(id));
                let interval = self.pool.config().arrival_interval_s();
                let next = exponential(&mut self.rng, interval) as u64;
                self.queue
                    .push(self.now + next.max(1), Event::MachineArrive);
            }
            Event::MachineDepart(mid) => {
                if self.pool.remove_machine(mid).is_some() {
                    if let Some(f) = self.federation.as_mut() {
                        f.forget_machine(mid);
                    }
                    self.obs.inc("pool.machines_departed", 1);
                    self.obs
                        .instant("pool", "machine_depart", mid.0, self.now.as_secs());
                    self.evict_machine_jobs(mid);
                }
            }
            Event::Negotiate => {
                self.negotiate();
                self.queue.push(
                    self.now + self.config.pool.negotiation_period_s,
                    Event::Negotiate,
                );
            }
            Event::StageInDone(job) => {
                if self.origin_users.remove(&job) {
                    self.active_origin = self.active_origin.saturating_sub(1);
                }
                let Some(j) = self.jobs.get_mut(&job) else {
                    return;
                };
                if j.state != JobState::TransferringInput {
                    return;
                }
                // A network partition between this job's pool and the
                // submit node stalls the transfer. With failover on, the
                // burst controller drains the job back to Idle so it can
                // re-match in a healthy pool; without it, the transfer
                // just waits out the partition window on its slot.
                let part_pool = self.federation.as_ref().and_then(|f| {
                    self.jobs[&job]
                        .machine
                        .and_then(|m| f.pool_of(m))
                        .filter(|&p| f.is_partitioned(p))
                });
                if let Some(pool) = part_pool {
                    let j = self.jobs.get_mut(&job).expect("checked above");
                    let owner = j.owner;
                    let flagged = j.stall_flagged;
                    j.stall_flagged = true;
                    if !flagged {
                        let f = self.federation.as_mut().expect("federated");
                        f.record_partition_stall();
                        f.record_failure(pool, self.now.as_secs() as f64);
                        self.obs
                            .instant("pool", "partition_stall", job.0, self.now.as_secs());
                        self.emit(job, owner, JobEventKind::PartitionStalled);
                    }
                    if self.config.federation.failover_enabled {
                        // Drain-and-migrate: give the slot back, requeue.
                        let j = self.jobs.get_mut(&job).expect("checked above");
                        if let Some(m) = j.machine.take() {
                            self.pool.release_slot(m);
                        }
                        j.state = JobState::Idle;
                        j.serial += 1;
                        j.displaced = true;
                        j.stall_flagged = false;
                        self.idle.entry(owner).or_default().push_back(job);
                        self.federation.as_mut().expect("federated").record_drain();
                    } else {
                        let pf = self.config.faults.pool;
                        let end = (pf.partition_start_s + pf.partition_duration_s) as u64 + 1;
                        self.push_job(
                            SimTime(end.max(self.now.as_secs() + 1)),
                            job,
                            Event::StageInDone(job),
                        );
                    }
                    return;
                }
                let j = self.jobs.get_mut(&job).expect("checked above");
                let salt = Self::fault_salt(j.attempt, j.serial);
                if self.plan.any_enabled() {
                    let name = j.spec.name.clone();
                    if self.plan.stage_in_fails(&name, salt) {
                        self.hold_job(job, HoldReason::TransferInputError);
                        return;
                    }
                    if let Some(reason) = self.plan.hold(&name, salt) {
                        self.hold_job(job, reason);
                        return;
                    }
                }
                // Verify-on-read checksum defense: the corrupted cache
                // entry was detected (and quarantined) during transfer;
                // the job is held and its release re-fetches from origin.
                if self.jobs[&job].corrupt_detected {
                    self.hold_job(job, HoldReason::ChecksumMismatch);
                    return;
                }
                let j = self.jobs.get_mut(&job).expect("checked above");
                j.state = JobState::Running;
                j.serial += 1;
                j.exec_at = self.now;
                j.stall_flagged = false;
                let stage_in_at = j.stage_in_at;
                let machine = j.machine;
                let speed = machine
                    .and_then(|m| self.pool.machine(m))
                    .map(|m| m.speed)
                    .unwrap_or(1.0);
                // Always draw the attempt's work from the rng so resumed
                // attempts do not shift the stream other jobs see — both
                // ablation arms consume identical rng sequences.
                let sampled = j.spec.exec.sample(&mut self.rng);
                let checkpointing =
                    self.config.federation.enabled && self.config.federation.checkpoint_enabled;
                let resumed = if checkpointing { j.checkpoint } else { None };
                let (work_total, remaining) = match resumed {
                    Some(ck) => (ck.work_total, (ck.work_total - ck.work_done).max(1.0)),
                    None => (sampled, sampled),
                };
                j.work_total = work_total;
                if resumed.is_some() {
                    if let Some(f) = self.federation.as_mut() {
                        f.record_resume();
                    }
                    self.obs
                        .instant("pool", "resume", job.0, self.now.as_secs());
                }
                let mut dur = (remaining / speed).max(1.0);
                // A black-hole machine kills the job fast; otherwise the
                // attempt's fate is drawn from the fault plan.
                if machine
                    .map(|m| self.scoreboard.black_hole_kills(&self.plan, m))
                    .unwrap_or(false)
                {
                    j.pending_exit = Some(EXIT_BLACK_HOLE);
                    dur = dur.min(BLACK_HOLE_FAIL_S);
                } else if j.poisoned_input {
                    // A silently corrupted input (checksums off): the job
                    // burns its full runtime, then fails when the bad
                    // payload surfaces.
                    j.pending_exit = Some(EXIT_CORRUPT);
                } else {
                    j.pending_exit = self.plan.exec_exit(&j.spec.name, salt);
                }
                if j.pending_exit.is_some() {
                    self.obs.inc("pool.faults_injected", 1);
                }
                let owner = j.owner;
                let serial = j.serial;
                let timeout = j.spec.timeout_s;
                let lane = Self::lane_of(&self.federation, machine);
                if timeout > 0.0 && dur > timeout {
                    // The attempt will not finish in time: the wall-time
                    // policy fires first (periodic_hold → periodic_remove).
                    self.queue.push_lane(
                        self.now + timeout as u64,
                        lane,
                        Event::Timeout(job, serial),
                    );
                } else {
                    self.queue
                        .push_lane(self.now + dur as u64, lane, Event::ExecDone(job));
                }
                // Spot reclamation: attempts on the elastic cloud pool
                // may be preempted partway through. Drawn statelessly so
                // both ablation arms see the identical reclamation.
                if let Some(f) = self.federation.as_ref() {
                    let cloud = machine
                        .and_then(|m| f.pool_of(m))
                        .is_some_and(|p| f.is_cloud(p));
                    if cloud && self.plan.preempts(&j.spec.name, salt) {
                        let delay = (self.plan.preempt_frac(&j.spec.name, salt) * dur).max(1.0);
                        if delay < dur {
                            self.queue.push_lane(
                                self.now + delay as u64,
                                lane,
                                Event::Preempt(job, serial),
                            );
                        }
                    }
                }
                self.obs.span(
                    "pool",
                    "stage_in",
                    job.0,
                    stage_in_at.as_secs(),
                    self.now.as_secs(),
                );
                self.obs
                    .observe("xfer.stage_in_s", self.now.since(stage_in_at) as f64);
                self.emit(job, owner, JobEventKind::ExecuteStarted);
            }
            Event::ExecDone(job) => {
                let Some(j) = self.jobs.get_mut(&job) else {
                    return;
                };
                if j.state != JobState::Running {
                    return;
                }
                let exec_at = j.exec_at;
                let machine = j.machine;
                if let Some(code) = j.pending_exit.take() {
                    // Failed attempts produce no output to stage back.
                    j.state = JobState::Failed;
                    j.serial += 1;
                    let owner = j.owner;
                    if let Some(m) = j.machine.take() {
                        self.pool.release_slot(m);
                    }
                    if let Some(m) = machine {
                        self.record_exec_outcome(m, exec_at, true);
                    }
                    self.exec_failures += 1;
                    self.obs.inc("pool.exec_failures", 1);
                    self.obs
                        .span("pool", "exec", job.0, exec_at.as_secs(), self.now.as_secs());
                    self.emit_event(
                        JobEvent::new(self.now, job, owner, JobEventKind::Failed).with_exit(code),
                    );
                    return;
                }
                j.state = JobState::TransferringOutput;
                j.serial += 1;
                j.stage_out_at = self.now;
                let dur = self.cache.stage_out_secs(&j.spec, &self.config.transfer);
                if let Some(m) = machine {
                    self.record_exec_outcome(m, exec_at, false);
                }
                let lane = Self::lane_of(&self.federation, machine);
                self.queue.push_lane(
                    self.now + (dur as u64).max(1),
                    lane,
                    Event::StageOutDone(job),
                );
                self.obs
                    .span("pool", "exec", job.0, exec_at.as_secs(), self.now.as_secs());
            }
            Event::StageOutDone(job) => {
                let Some(j) = self.jobs.get_mut(&job) else {
                    return;
                };
                if j.state != JobState::TransferringOutput {
                    return;
                }
                // A partition also stalls output transfer, but the work
                // is already done: draining would waste it, so both arms
                // hold the slot and retry once the partition heals.
                let part_pool = self.federation.as_ref().and_then(|f| {
                    self.jobs[&job]
                        .machine
                        .and_then(|m| f.pool_of(m))
                        .filter(|&p| f.is_partitioned(p))
                });
                if let Some(pool) = part_pool {
                    let j = self.jobs.get_mut(&job).expect("checked above");
                    let owner = j.owner;
                    let flagged = j.stall_flagged;
                    j.stall_flagged = true;
                    if !flagged {
                        let f = self.federation.as_mut().expect("federated");
                        f.record_partition_stall();
                        f.record_failure(pool, self.now.as_secs() as f64);
                        self.obs
                            .instant("pool", "partition_stall", job.0, self.now.as_secs());
                        self.emit(job, owner, JobEventKind::PartitionStalled);
                    }
                    let pf = self.config.faults.pool;
                    let end = (pf.partition_start_s + pf.partition_duration_s) as u64 + 1;
                    self.push_job(
                        SimTime(end.max(self.now.as_secs() + 1)),
                        job,
                        Event::StageOutDone(job),
                    );
                    return;
                }
                let j = self.jobs.get_mut(&job).expect("checked above");
                let salt = Self::fault_salt(j.attempt, j.serial);
                if self.plan.any_enabled() {
                    let name = j.spec.name.clone();
                    if self.plan.stage_out_fails(&name, salt) {
                        self.hold_job(job, HoldReason::TransferOutputError);
                        return;
                    }
                }
                let j = self.jobs.get_mut(&job).expect("checked above");
                j.state = JobState::Completed;
                j.stall_flagged = false;
                let owner = j.owner;
                let stage_out_at = j.stage_out_at;
                let machine = j.machine.take();
                if let Some(m) = machine {
                    self.pool.release_slot(m);
                }
                // A completion on a pool closes (or keeps closed) its
                // circuit breaker.
                if let Some(f) = self.federation.as_mut() {
                    if let Some(p) = machine.and_then(|m| f.pool_of(m)) {
                        f.record_success(p);
                    }
                }
                self.obs.span(
                    "pool",
                    "stage_out",
                    job.0,
                    stage_out_at.as_secs(),
                    self.now.as_secs(),
                );
                self.obs
                    .observe("xfer.stage_out_s", self.now.since(stage_out_at) as f64);
                self.obs.inc("pool.completions", 1);
                self.emit_event(
                    JobEvent::new(self.now, job, owner, JobEventKind::Completed).with_exit(0),
                );
            }
            Event::Release(job, serial) => {
                let Some(j) = self.jobs.get_mut(&job) else {
                    return;
                };
                if j.state != JobState::Held || j.serial != serial {
                    return;
                }
                j.state = JobState::Idle;
                j.serial += 1;
                let owner = j.owner;
                self.idle.entry(owner).or_default().push_back(job);
                self.obs.inc("pool.releases", 1);
                self.obs
                    .instant("pool", "release", job.0, self.now.as_secs());
                self.emit(job, owner, JobEventKind::Released);
            }
            Event::Timeout(job, serial) => {
                let Some(j) = self.jobs.get_mut(&job) else {
                    return;
                };
                if j.state != JobState::Running || j.serial != serial {
                    return;
                }
                // periodic_hold fires, then periodic_remove reaps the held
                // job: the queue sees 012 followed by removal, and DAGMan
                // decides whether the node retries.
                j.state = JobState::Removed;
                j.serial += 1;
                j.pending_exit = None;
                let owner = j.owner;
                let exec_at = j.exec_at;
                if let Some(m) = j.machine.take() {
                    self.pool.release_slot(m);
                }
                self.holds += 1;
                self.obs.inc("pool.holds", 1);
                self.obs.inc(
                    &format!("pool.holds.{}", HoldReason::WallTimeExceeded.key()),
                    1,
                );
                self.obs
                    .span("pool", "exec", job.0, exec_at.as_secs(), self.now.as_secs());
                self.obs.instant(
                    "pool",
                    &format!("hold:{}", HoldReason::WallTimeExceeded.key()),
                    job.0,
                    self.now.as_secs(),
                );
                self.emit_event(
                    JobEvent::new(self.now, job, owner, JobEventKind::Held)
                        .with_hold(HoldReason::WallTimeExceeded),
                );
                self.emit(job, owner, JobEventKind::Removed);
            }
            Event::PoolOutageStart(pool) => {
                let Some(f) = self.federation.as_mut() else {
                    return;
                };
                f.set_down(pool, true);
                self.obs
                    .instant("pool", "pool_outage", pool as u64, self.now.as_secs());
                self.displace_pool_jobs(pool);
            }
            Event::PoolOutageEnd(pool) => {
                if let Some(f) = self.federation.as_mut() {
                    f.set_down(pool, false);
                }
            }
            Event::PartitionStart(pool) => {
                if let Some(f) = self.federation.as_mut() {
                    f.set_partitioned(pool, true);
                    self.obs
                        .instant("pool", "partition", pool as u64, self.now.as_secs());
                }
            }
            Event::PartitionEnd(pool) => {
                if let Some(f) = self.federation.as_mut() {
                    f.set_partitioned(pool, false);
                }
            }
            Event::Preempt(job, serial) => {
                if self.federation.is_none() {
                    return;
                }
                let Some(j) = self.jobs.get(&job) else {
                    return;
                };
                if j.state != JobState::Running || j.serial != serial {
                    return;
                }
                // Spot reclamation kills the attempt but consumes neither
                // an eviction credit nor a DAGMan retry: the fault domain
                // is the pool, not the job. Save a checkpoint (when
                // enabled) and requeue for migration.
                self.checkpoint_job(job);
                let j = self.jobs.get_mut(&job).expect("checked above");
                let owner = j.owner;
                let exec_at = j.exec_at;
                let machine = j.machine.take();
                j.state = JobState::Idle;
                j.serial += 1;
                j.pending_exit = None;
                j.displaced = true;
                if let Some(m) = machine {
                    self.pool.release_slot(m);
                }
                self.idle.entry(owner).or_default().push_back(job);
                let pool =
                    machine.and_then(|m| self.federation.as_ref().and_then(|f| f.pool_of(m)));
                let now_s = self.now.as_secs() as f64;
                if let Some(f) = self.federation.as_mut() {
                    f.record_preemption();
                    if let Some(p) = pool {
                        f.record_failure(p, now_s);
                    }
                }
                self.obs
                    .span("pool", "exec", job.0, exec_at.as_secs(), self.now.as_secs());
                self.obs
                    .instant("pool", "preempt", job.0, self.now.as_secs());
                self.emit(job, owner, JobEventKind::Preempted);
            }
        }
    }

    /// Save a phase-aware checkpoint for a running job about to be
    /// displaced. Progress is quantized *down* to the checkpoint interval
    /// (only durably recorded phases survive, mirroring per-rupture-batch
    /// checkpoint files) and never regresses below a prior checkpoint.
    fn checkpoint_job(&mut self, job: JobId) {
        let fcfg = self.config.federation;
        if !(fcfg.enabled && fcfg.checkpoint_enabled) {
            return;
        }
        let Some(j) = self.jobs.get_mut(&job) else {
            return;
        };
        if j.state != JobState::Running {
            return;
        }
        let speed = j
            .machine
            .and_then(|m| self.pool.machine(m))
            .map(|m| m.speed)
            .unwrap_or(1.0);
        let prior = j.checkpoint.map(|c| c.work_done).unwrap_or(0.0);
        let raw = prior + self.now.since(j.exec_at) as f64 * speed;
        let interval = fcfg.checkpoint_interval_s.max(1.0);
        let saved = ((raw / interval).floor() * interval)
            .min(j.work_total)
            .max(prior);
        j.checkpoint = Some(Checkpoint {
            work_total: j.work_total,
            work_done: saved,
        });
        if saved > prior {
            if let Some(f) = self.federation.as_mut() {
                f.record_checkpoint();
            }
            self.obs
                .instant("pool", "checkpoint", job.0, self.now.as_secs());
        }
    }

    /// Displace every in-flight job on `pool`'s machines when its outage
    /// window opens: running jobs checkpoint first (when enabled) and all
    /// victims return to Idle without consuming an eviction credit — the
    /// fault domain is the pool, not the job.
    fn displace_pool_jobs(&mut self, pool: u32) {
        let members: std::collections::BTreeSet<u64> = self
            .federation
            .as_ref()
            .map(|f| f.machines_in(pool).into_iter().map(|m| m.0).collect())
            .unwrap_or_default();
        let mut victims: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|(_, j)| {
                j.machine.is_some_and(|m| members.contains(&m.0))
                    && matches!(
                        j.state,
                        JobState::TransferringInput
                            | JobState::Running
                            | JobState::TransferringOutput
                    )
            })
            .map(|(id, _)| *id)
            .collect();
        victims.sort();
        let now_s = self.now.as_secs() as f64;
        for id in victims {
            if self.origin_users.remove(&id) {
                self.active_origin = self.active_origin.saturating_sub(1);
            }
            self.checkpoint_job(id);
            let j = self.jobs.get_mut(&id).expect("victim exists");
            if let Some(m) = j.machine.take() {
                self.pool.release_slot(m);
            }
            j.state = JobState::Idle;
            j.serial += 1;
            j.pending_exit = None;
            j.displaced = true;
            j.stall_flagged = false;
            let owner = j.owner;
            self.idle.entry(owner).or_default().push_back(id);
            if let Some(f) = self.federation.as_mut() {
                f.record_failure(pool, now_s);
            }
            self.obs
                .instant("pool", "outage_evict", id.0, self.now.as_secs());
            self.emit(id, owner, JobEventKind::PoolOutage);
        }
    }

    /// Evict every non-terminal job assigned to a departed machine.
    fn evict_machine_jobs(&mut self, mid: MachineId) {
        let victims: Vec<(JobId, OwnerId)> = self
            .jobs
            .iter()
            .filter(|(_, j)| {
                j.machine == Some(mid)
                    && matches!(
                        j.state,
                        JobState::TransferringInput
                            | JobState::Running
                            | JobState::TransferringOutput
                    )
            })
            .map(|(id, j)| (*id, j.owner))
            .collect();
        let limit = self.config.max_evictions_per_job;
        for (id, owner) in victims {
            if self.origin_users.remove(&id) {
                self.active_origin = self.active_origin.saturating_sub(1);
            }
            let j = self.jobs.get_mut(&id).expect("victim exists");
            j.machine = None;
            j.serial += 1; // invalidate any in-flight lifecycle event
            j.evictions += 1;
            self.evictions += 1;
            self.obs.inc("pool.evictions", 1);
            self.obs
                .instant("pool", "eviction", id.0, self.now.as_secs());
            let exhausted = limit > 0 && j.evictions >= limit;
            if exhausted {
                j.state = JobState::Removed;
                self.emit(id, owner, JobEventKind::Evicted);
                self.emit(id, owner, JobEventKind::Removed);
            } else {
                j.state = JobState::Idle;
                self.idle.entry(owner).or_default().push_back(id);
                self.emit(id, owner, JobEventKind::Evicted);
            }
        }
    }

    /// One negotiation cycle: advance background contention, then match
    /// idle jobs to free slots round-robin across owners (fair share),
    /// honouring per-slot memory/disk requirements (ClassAd matching).
    fn negotiate(&mut self) {
        self.pool.step_avail(&mut self.rng);
        let idle_jobs: usize = self.idle.values().map(|q| q.len()).sum();
        self.pool_series.push(PoolSample {
            time: self.now,
            total_slots: self.pool.total_slots(),
            busy_slots: self.pool.busy_slots(),
            avail_frac: self.pool.avail_frac(),
            idle_jobs,
        });
        self.obs.inc("pool.negotiation_cycles", 1);
        if self.obs.is_enabled() {
            self.obs
                .gauge("pool.total_slots", self.pool.total_slots() as f64);
            self.obs
                .gauge("pool.busy_slots", self.pool.busy_slots() as f64);
            self.obs.gauge("pool.avail_frac", self.pool.avail_frac());
            self.obs.gauge("pool.idle_jobs", idle_jobs as f64);
        }
        // Federated burst gate: evaluated every cycle (even when the
        // budget is exhausted) so the elastic cloud's spin-up clock
        // advances deterministically with idle pressure.
        let gate = self
            .federation
            .as_mut()
            .map(|f| f.gate(self.now.as_secs() as f64, idle_jobs));
        let capacity = self.pool.user_capacity();
        let busy = self.pool.busy_slots();
        let mut budget = capacity.saturating_sub(busy);
        if budget == 0 {
            return;
        }
        let mut free = self.pool.free_slots();
        // Drop slots on pools the burst controller refuses this cycle
        // (outage, partition, open breaker, cloud not yet spun up).
        if let (Some(gate), Some(f)) = (&gate, self.federation.as_ref()) {
            free.retain(|e| f.pool_of(e.0).map(|p| gate[p as usize]).unwrap_or(true));
        }
        if free.is_empty() {
            return;
        }
        // Scoreboard matchmaking: blacklisted machines are filtered out,
        // suspect machines (paroled or over the EWMA threshold) fall to a
        // second tier matched only when no trusted machine fits. With the
        // scoreboard off this is the identity.
        let paroles_before = self.scoreboard.stats().paroles;
        let (mut good, split) = self
            .scoreboard
            .admit(self.now.as_secs() as f64, free, |e| e.0);
        let paroled = self.scoreboard.stats().paroles - paroles_before;
        if paroled > 0 {
            self.obs.inc("pool.defense.paroles", paroled);
        }
        let mut suspect = good.split_off(split);
        if good.is_empty() && suspect.is_empty() {
            return;
        }
        // Round-robin across owners that have idle jobs. Jobs whose
        // requirements no current slot satisfies go to a hold-back buffer
        // so the cycle terminates; they return to the queue afterwards.
        // BTreeMap, not HashMap: the buffer is drained back into the idle
        // queues below, and that walk must not depend on hasher state
        // (fdwlint `unordered-hash-iteration`).
        let owners: Vec<OwnerId> = self.owner_order.clone();
        let mut held: BTreeMap<OwnerId, Vec<JobId>> = BTreeMap::new();
        let mut progressed = true;
        while budget > 0 && progressed {
            progressed = false;
            for owner in &owners {
                if budget == 0 {
                    break;
                }
                let Some(q) = self.idle.get_mut(owner) else {
                    continue;
                };
                let Some(job) = q.pop_front() else { continue };
                // Stale entries (evicted jobs re-queued twice, removed
                // jobs) are skipped.
                let valid = self
                    .jobs
                    .get(&job)
                    .map(|j| j.state == JobState::Idle)
                    .unwrap_or(false);
                if !valid {
                    progressed = true;
                    continue;
                }
                // Pick the next machine with a free slot satisfying the
                // job's requirements (rotating cursor spreads jobs over
                // sites so the cache model is exercised).
                let (need_mem, need_disk) = {
                    let spec = &self.jobs[&job].spec;
                    (spec.memory_mb, spec.disk_mb)
                };
                let picked = match self.pick_slot(&mut good, need_mem, need_disk) {
                    Some(s) => Some(s),
                    None => self.pick_slot(&mut suspect, need_mem, need_disk),
                };
                let Some(slot) = picked else {
                    // Requirements unmatched this cycle: hold the job back.
                    self.obs.inc("pool.holdbacks", 1);
                    held.entry(*owner).or_default().push(job);
                    progressed = true;
                    continue;
                };
                let (mid, site, _speed, _, _, _) = slot;
                self.pool.claim_slot(mid);
                let j = self.jobs.get_mut(&job).expect("valid job");
                j.state = JobState::TransferringInput;
                j.machine = Some(mid);
                j.serial += 1;
                j.stage_in_at = self.now;
                // A displaced job landing in a different pool than its
                // last attempt is a cross-pool migration.
                let mut migrated_to: Option<u32> = None;
                if let Some(f) = self.federation.as_mut() {
                    if let Some(pool) = f.pool_of(mid) {
                        if j.displaced && j.last_pool.is_some() && j.last_pool != Some(pool) {
                            f.record_migration();
                            migrated_to = Some(pool);
                        }
                        j.last_pool = Some(pool);
                    }
                    j.displaced = false;
                }
                let staged = self.cache.stage_in_verified(
                    site,
                    &j.spec,
                    &self.config.transfer,
                    self.active_origin + 1,
                    &self.plan,
                    self.config.defense.checksum_enabled,
                );
                j.corrupt_detected = staged.quarantined > 0;
                j.poisoned_input = staged.poisoned;
                if staged.used_origin {
                    self.active_origin += 1;
                    self.origin_users.insert(job);
                }
                let owner = j.owner;
                for _ in 0..staged.quarantined {
                    self.scoreboard.record_quarantine();
                }
                if staged.quarantined > 0 {
                    self.obs
                        .inc("pool.defense.quarantines", staged.quarantined as u64);
                    self.obs
                        .instant("pool", "quarantine", job.0, self.now.as_secs());
                }
                let lane = Self::lane_of(&self.federation, Some(mid));
                self.queue.push_lane(
                    self.now + (staged.secs as u64).max(1),
                    lane,
                    Event::StageInDone(job),
                );
                if let Some(pool) = migrated_to {
                    self.obs
                        .instant("pool", "migrate", job.0, self.now.as_secs());
                    self.emit_event(
                        JobEvent::new(self.now, job, owner, JobEventKind::Migrated).with_pool(pool),
                    );
                }
                self.emit(job, owner, JobEventKind::Matched);
                self.obs.inc("pool.matches", 1);
                budget -= 1;
                progressed = true;
            }
        }
        // Held-back jobs return to the front of their queues in owner
        // order, preserving FIFO order within each owner for the next
        // cycle.
        for (owner, held_jobs) in held {
            let q = self.idle.entry(owner).or_default();
            for job in held_jobs.into_iter().rev() {
                q.push_front(job);
            }
        }
    }

    /// Take one free slot from `free` that satisfies the memory/disk
    /// requirements, decrementing its count; rotates the starting machine
    /// between calls.
    fn pick_slot(
        &mut self,
        free: &mut Vec<(MachineId, crate::transfer::SiteId, f64, usize, u32, u32)>,
        need_mem: u32,
        need_disk: u32,
    ) -> Option<(MachineId, crate::transfer::SiteId, f64, usize, u32, u32)> {
        // Drop exhausted entries eagerly.
        free.retain(|e| e.3 > 0);
        if free.is_empty() {
            return None;
        }
        let n = free.len();
        for probe in 0..n {
            let idx = (self.slot_cursor + probe) % n;
            if free[idx].4 >= need_mem && free[idx].5 >= need_disk {
                free[idx].3 -= 1;
                self.slot_cursor = self.slot_cursor.wrapping_add(probe + 1);
                return Some(free[idx]);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bag-of-tasks driver: submit `n` jobs at t=0, done when all
    /// completions observed.
    struct BagDriver {
        to_submit: Vec<JobSpec>,
        completed: usize,
        total: usize,
        assigned: Vec<(JobId, String)>,
    }

    impl BagDriver {
        fn new(specs: Vec<JobSpec>) -> Self {
            let total = specs.len();
            Self {
                to_submit: specs,
                completed: 0,
                total,
                assigned: Vec::new(),
            }
        }
    }

    impl WorkloadDriver for BagDriver {
        fn poll(&mut self, _now: SimTime, events: &[JobEvent]) -> Vec<SubmitRequest> {
            self.completed += events
                .iter()
                .filter(|e| e.kind == JobEventKind::Completed)
                .count();
            std::mem::take(&mut self.to_submit)
                .into_iter()
                .map(|spec| SubmitRequest {
                    owner: OwnerId(0),
                    spec,
                })
                .collect()
        }

        fn on_assigned(&mut self, job: JobId, name: &str) {
            self.assigned.push((job, name.to_string()));
        }

        fn is_done(&self) -> bool {
            self.to_submit.is_empty() && self.completed >= self.total
        }
    }

    fn quick_config() -> ClusterConfig {
        ClusterConfig {
            pool: PoolConfig {
                target_slots: 64,
                glidein_slots: 8,
                avail_mean: 0.9,
                avail_sigma: 0.05,
                ..Default::default()
            },
            ..ClusterConfig::with_cache()
        }
    }

    #[test]
    fn bag_of_tasks_completes() {
        let specs: Vec<JobSpec> = (0..40)
            .map(|i| JobSpec::fixed(format!("task.{i}"), 120.0))
            .collect();
        let mut driver = BagDriver::new(specs);
        let report = Cluster::new(quick_config(), 1).run(&mut driver);
        assert!(!report.timed_out);
        assert_eq!(report.completed, 40);
        assert_eq!(driver.assigned.len(), 40);
        assert_eq!(driver.assigned[0].1, "task.0");
        // Everything completed after t=0 with queueing + transfer overhead.
        assert!(report.makespan.as_secs() > 120);
    }

    #[test]
    fn runs_are_deterministic() {
        let mk = || {
            let specs: Vec<JobSpec> = (0..25)
                .map(|i| JobSpec::fixed(format!("t.{i}"), 200.0))
                .collect();
            let mut d = BagDriver::new(specs);
            Cluster::new(quick_config(), 99).run(&mut d).makespan
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            let specs: Vec<JobSpec> = (0..25)
                .map(|i| {
                    let mut s = JobSpec::fixed(format!("t.{i}"), 200.0);
                    s.exec = crate::job::ExecModel::LogNormalMedian {
                        median_s: 200.0,
                        sigma: 0.3,
                    };
                    s
                })
                .collect();
            let mut d = BagDriver::new(specs);
            Cluster::new(quick_config(), seed).run(&mut d).makespan
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn capacity_limits_parallelism() {
        // 100 jobs of 300 s on a 16-slot pool (avail ~1) takes at least
        // ceil(100/16)*300 s of pure execution.
        let cfg = ClusterConfig {
            pool: PoolConfig {
                target_slots: 16,
                glidein_slots: 8,
                avail_mean: 1.0,
                avail_sigma: 0.0,
                glidein_lifetime_s: 1e9, // no churn
                ..Default::default()
            },
            ..ClusterConfig::with_cache()
        };
        let specs: Vec<JobSpec> = (0..100)
            .map(|i| JobSpec::fixed(format!("t.{i}"), 300.0))
            .collect();
        let mut d = BagDriver::new(specs);
        let report = Cluster::new(cfg, 5).run(&mut d);
        assert_eq!(report.completed, 100);
        assert!(
            report.makespan.as_secs() >= 7 * 300,
            "makespan {} too fast for 16 slots",
            report.makespan
        );
    }

    #[test]
    fn evictions_occur_with_fast_churn_and_jobs_still_finish() {
        let cfg = ClusterConfig {
            pool: PoolConfig {
                target_slots: 32,
                glidein_slots: 4,
                glidein_lifetime_s: 600.0, // 10-minute glideins
                avail_mean: 1.0,
                avail_sigma: 0.0,
                ..Default::default()
            },
            ..ClusterConfig::with_cache()
        };
        let specs: Vec<JobSpec> = (0..60)
            .map(|i| JobSpec::fixed(format!("t.{i}"), 500.0))
            .collect();
        let mut d = BagDriver::new(specs);
        let report = Cluster::new(cfg, 3).run(&mut d);
        assert_eq!(report.completed, 60, "all jobs eventually complete");
        assert!(report.evictions > 0, "short glideins must evict some jobs");
        // Each eviction appears in the log.
        let evs = report
            .log
            .events()
            .iter()
            .filter(|e| e.kind == JobEventKind::Evicted)
            .count() as u64;
        assert_eq!(evs, report.evictions);
    }

    #[test]
    fn cache_hits_accumulate_for_shared_inputs() {
        use crate::job::InputFile;
        let mut specs = Vec::new();
        for i in 0..30 {
            let mut s = JobSpec::fixed(format!("w.{i}"), 60.0);
            s.inputs.push(InputFile {
                name: "gf.mseed".into(),
                size_mb: 900.0,
                cacheable: true,
            });
            specs.push(s);
        }
        let cfg = ClusterConfig {
            pool: PoolConfig {
                target_slots: 32,
                glidein_slots: 8,
                n_sites: 2, // few sites → high hit rate
                avail_mean: 1.0,
                avail_sigma: 0.0,
                glidein_lifetime_s: 1e9,
                ..Default::default()
            },
            ..ClusterConfig::with_cache()
        };
        let mut d = BagDriver::new(specs);
        let report = Cluster::new(cfg, 4).run(&mut d);
        assert!(
            report.cache_hit_rate > 0.5,
            "hit rate {}",
            report.cache_hit_rate
        );
    }

    #[test]
    fn fair_share_across_owners() {
        // Two owners, each with 40 jobs, on a tight pool: completions
        // should interleave rather than run owner 0 to exhaustion first.
        struct TwoOwner {
            submitted: bool,
            done: usize,
            first_30: Vec<OwnerId>,
        }
        impl WorkloadDriver for TwoOwner {
            fn poll(&mut self, _now: SimTime, events: &[JobEvent]) -> Vec<SubmitRequest> {
                for e in events {
                    if e.kind == JobEventKind::Completed {
                        self.done += 1;
                        if self.first_30.len() < 30 {
                            self.first_30.push(e.owner);
                        }
                    }
                }
                if self.submitted {
                    return Vec::new();
                }
                self.submitted = true;
                let mut v = Vec::new();
                for owner in [OwnerId(0), OwnerId(1)] {
                    for i in 0..40 {
                        v.push(SubmitRequest {
                            owner,
                            spec: JobSpec::fixed(format!("o{}.{i}", owner.0), 300.0),
                        });
                    }
                }
                v
            }
            fn is_done(&self) -> bool {
                self.submitted && self.done >= 80
            }
        }
        let cfg = ClusterConfig {
            pool: PoolConfig {
                target_slots: 8,
                glidein_slots: 8,
                avail_mean: 1.0,
                avail_sigma: 0.0,
                glidein_lifetime_s: 1e9,
                ..Default::default()
            },
            ..ClusterConfig::with_cache()
        };
        let mut d = TwoOwner {
            submitted: false,
            done: 0,
            first_30: Vec::new(),
        };
        let report = Cluster::new(cfg, 8).run(&mut d);
        assert_eq!(report.completed, 80);
        let owner1_share = d.first_30.iter().filter(|o| o.0 == 1).count();
        assert!(
            (10..=20).contains(&owner1_share),
            "fair share violated: owner 1 got {owner1_share}/30 of early completions"
        );
    }

    #[test]
    fn requirements_matching_gates_big_jobs() {
        // A 16 GB job can only match big slots; with none in the pool it
        // waits forever, with an all-big pool it completes.
        let mk_cfg = |big: f64| ClusterConfig {
            pool: PoolConfig {
                target_slots: 16,
                glidein_slots: 8,
                avail_mean: 1.0,
                avail_sigma: 0.0,
                glidein_lifetime_s: 1e9,
                big_slot_fraction: big,
                max_sim_time_s: 4 * 3600,
                ..Default::default()
            },
            ..ClusterConfig::with_cache()
        };
        let mk_spec = || {
            let mut s = JobSpec::fixed("matrix.0", 120.0);
            s.memory_mb = 16_384;
            s.disk_mb = 16_384;
            s
        };
        let mut d = BagDriver::new(vec![mk_spec()]);
        let starved = Cluster::new(mk_cfg(0.0), 1).run(&mut d);
        assert!(starved.timed_out, "no slot can ever match a 16 GB request");
        assert_eq!(starved.completed, 0);

        let mut d = BagDriver::new(vec![mk_spec()]);
        let served = Cluster::new(mk_cfg(1.0), 1).run(&mut d);
        assert!(!served.timed_out);
        assert_eq!(served.completed, 1);

        // Small jobs are unaffected by a big-slot-free pool.
        let mut d = BagDriver::new(vec![JobSpec::fixed("w.0", 120.0)]);
        let small = Cluster::new(mk_cfg(0.0), 1).run(&mut d);
        assert_eq!(small.completed, 1);
    }

    #[test]
    fn pool_series_records_cycles() {
        let specs: Vec<JobSpec> = (0..20)
            .map(|i| JobSpec::fixed(format!("t.{i}"), 300.0))
            .collect();
        let mut d = BagDriver::new(specs);
        let report = Cluster::new(quick_config(), 2).run(&mut d);
        assert!(!report.pool_series.is_empty());
        for pair in report.pool_series.windows(2) {
            assert!(pair[1].time > pair[0].time);
        }
        for s in &report.pool_series {
            assert!(s.busy_slots <= s.total_slots);
            assert!((0.0..=1.0).contains(&s.avail_frac));
        }
        // At least one cycle saw our jobs running.
        assert!(report.pool_series.iter().any(|s| s.busy_slots > 0));
    }

    /// Like BagDriver but done when every job reaches *any* terminal
    /// state (completed, failed, or removed) — what a chaos run needs.
    struct ChaosBag {
        to_submit: Vec<JobSpec>,
        settled: usize,
        total: usize,
    }

    impl ChaosBag {
        fn new(specs: Vec<JobSpec>) -> Self {
            let total = specs.len();
            Self {
                to_submit: specs,
                settled: 0,
                total,
            }
        }
    }

    impl WorkloadDriver for ChaosBag {
        fn poll(&mut self, _now: SimTime, events: &[JobEvent]) -> Vec<SubmitRequest> {
            self.settled += events
                .iter()
                .filter(|e| {
                    matches!(
                        e.kind,
                        JobEventKind::Completed | JobEventKind::Failed | JobEventKind::Removed
                    )
                })
                .count();
            std::mem::take(&mut self.to_submit)
                .into_iter()
                .map(|spec| SubmitRequest {
                    owner: OwnerId(0),
                    spec,
                })
                .collect()
        }

        fn is_done(&self) -> bool {
            self.to_submit.is_empty() && self.settled >= self.total
        }
    }

    fn stable_config(faults: crate::fault::FaultConfig) -> ClusterConfig {
        ClusterConfig {
            pool: PoolConfig {
                target_slots: 32,
                glidein_slots: 8,
                avail_mean: 1.0,
                avail_sigma: 0.0,
                glidein_lifetime_s: 1e9,
                ..Default::default()
            },
            faults,
            ..ClusterConfig::with_cache()
        }
    }

    #[test]
    fn transient_faults_surface_as_failed_events() {
        let faults = crate::fault::FaultConfig {
            seed: 11,
            transient_exit_prob: 0.4,
            ..Default::default()
        };
        let specs: Vec<JobSpec> = (0..40)
            .map(|i| JobSpec::fixed(format!("t.{i}"), 120.0))
            .collect();
        let mut d = ChaosBag::new(specs);
        let report = Cluster::new(stable_config(faults), 1).run(&mut d);
        assert!(!report.timed_out);
        assert!(report.exec_failures > 0, "some attempts must fail");
        assert!(report.completed > 0, "some attempts must survive");
        assert_eq!(report.completed as u64 + report.exec_failures, 40);
        // Every Failed event carries the transient exit code.
        for e in report.log.events() {
            if e.kind == JobEventKind::Failed {
                assert_eq!(e.exit_code, Some(crate::fault::EXIT_TRANSIENT));
            }
        }
    }

    #[test]
    fn black_hole_pool_kills_everything_fast() {
        let faults = crate::fault::FaultConfig {
            seed: 5,
            black_hole_fraction: 1.0,
            ..Default::default()
        };
        let specs: Vec<JobSpec> = (0..20)
            .map(|i| JobSpec::fixed(format!("t.{i}"), 3000.0))
            .collect();
        let mut d = ChaosBag::new(specs);
        let report = Cluster::new(stable_config(faults), 2).run(&mut d);
        assert_eq!(report.completed, 0);
        assert_eq!(report.exec_failures, 20);
        for e in report.log.events() {
            if e.kind == JobEventKind::Failed {
                assert_eq!(e.exit_code, Some(EXIT_BLACK_HOLE));
            }
        }
        // Fail-fast: a 3000 s job dies within BLACK_HOLE_FAIL_S of its
        // execute start, so the whole run is much shorter than one job.
        assert!(report.makespan.as_secs() < 3000);
    }

    /// A bag that resubmits failed/removed jobs up to `max_attempts`
    /// times per name (a minimal retrying scheduler for defense tests).
    struct RetryBag {
        to_submit: Vec<JobSpec>,
        specs: HashMap<String, JobSpec>,
        names: HashMap<JobId, String>,
        attempts: HashMap<String, u32>,
        max_attempts: u32,
        settled: usize,
        completed: usize,
        total: usize,
    }

    impl RetryBag {
        fn new(specs: Vec<JobSpec>, max_attempts: u32) -> Self {
            let total = specs.len();
            let by_name = specs.iter().map(|s| (s.name.clone(), s.clone())).collect();
            Self {
                to_submit: specs,
                specs: by_name,
                names: HashMap::new(),
                attempts: HashMap::new(),
                max_attempts,
                settled: 0,
                completed: 0,
                total,
            }
        }
    }

    impl WorkloadDriver for RetryBag {
        fn poll(&mut self, _now: SimTime, events: &[JobEvent]) -> Vec<SubmitRequest> {
            let mut subs: Vec<SubmitRequest> = std::mem::take(&mut self.to_submit)
                .into_iter()
                .map(|spec| SubmitRequest {
                    owner: OwnerId(0),
                    spec,
                })
                .collect();
            for e in events {
                match e.kind {
                    JobEventKind::Completed => {
                        self.completed += 1;
                        self.settled += 1;
                    }
                    JobEventKind::Failed | JobEventKind::Removed => {
                        let name = self.names.get(&e.job).cloned().unwrap_or_default();
                        let tries = self.attempts.entry(name.clone()).or_insert(1);
                        if *tries < self.max_attempts {
                            *tries += 1;
                            subs.push(SubmitRequest {
                                owner: OwnerId(0),
                                spec: self.specs[&name].clone(),
                            });
                        } else {
                            self.settled += 1;
                        }
                    }
                    _ => {}
                }
            }
            subs
        }

        fn on_assigned(&mut self, job: JobId, name: &str) {
            self.names.insert(job, name.to_string());
            self.attempts.entry(name.to_string()).or_insert(1);
        }

        fn is_done(&self) -> bool {
            self.to_submit.is_empty() && self.settled >= self.total
        }
    }

    #[test]
    fn scoreboard_defense_starves_black_holes() {
        let faults = crate::fault::FaultConfig {
            seed: 5,
            black_hole_fraction: 0.3,
            ..Default::default()
        };
        let run = |defense: DefenseConfig| {
            let specs: Vec<JobSpec> = (0..40)
                .map(|i| JobSpec::fixed(format!("t.{i}"), 300.0))
                .collect();
            let mut d = RetryBag::new(specs, 50);
            let mut cfg = stable_config(faults);
            // One slot per glidein: 32 distinct machines, so a 0.3
            // black-hole fraction yields a meaningful offender set.
            cfg.pool.glidein_slots = 1;
            cfg.defense = defense;
            let r = Cluster::new(cfg, 2).run(&mut d);
            assert!(!r.timed_out);
            assert_eq!(d.completed, 40, "every job must eventually complete");
            r
        };
        let off = run(DefenseConfig::default());
        let on = run(DefenseConfig {
            scoreboard_enabled: true,
            ..Default::default()
        });
        assert_eq!(off.defense, DefenseStats::default());
        assert!(on.defense.blacklists > 0, "offenders must be blacklisted");
        assert!(
            on.exec_failures < off.exec_failures,
            "avoidance must cut black-hole kills: {} vs {}",
            on.exec_failures,
            off.exec_failures
        );
    }

    #[test]
    fn checksum_defense_quarantines_and_completes() {
        use crate::job::InputFile;
        let faults = crate::fault::FaultConfig {
            seed: 8,
            corrupt_prob: 1.0,
            ..Default::default()
        };
        let specs: Vec<JobSpec> = (0..20)
            .map(|i| {
                let mut s = JobSpec::fixed(format!("w.{i}"), 120.0);
                s.inputs.push(InputFile {
                    name: "gf.mseed".into(),
                    size_mb: 500.0,
                    cacheable: true,
                });
                s
            })
            .collect();
        let mut d = BagDriver::new(specs);
        let mut cfg = stable_config(faults);
        cfg.defense.checksum_enabled = true;
        let report = Cluster::new(cfg, 4).run(&mut d);
        assert_eq!(report.completed, 20, "verification must save every job");
        assert_eq!(report.exec_failures, 0, "no poisoned run reaches exec");
        assert!(report.defense.quarantines > 0, "p=1 must quarantine");
        let checksum_holds = report
            .log
            .events()
            .iter()
            .filter(|e| e.hold_reason == Some(HoldReason::ChecksumMismatch))
            .count() as u64;
        assert_eq!(checksum_holds, report.defense.quarantines);
    }

    #[test]
    fn unverified_corruption_fails_jobs_with_exit_corrupt() {
        use crate::job::InputFile;
        let faults = crate::fault::FaultConfig {
            seed: 8,
            corrupt_prob: 1.0,
            ..Default::default()
        };
        let specs: Vec<JobSpec> = (0..20)
            .map(|i| {
                let mut s = JobSpec::fixed(format!("w.{i}"), 120.0);
                s.inputs.push(InputFile {
                    name: "gf.mseed".into(),
                    size_mb: 500.0,
                    cacheable: true,
                });
                s
            })
            .collect();
        let mut d = ChaosBag::new(specs);
        let report = Cluster::new(stable_config(faults), 4).run(&mut d);
        assert!(report.exec_failures > 0, "cache hits deliver poison");
        assert!(report.completed > 0, "origin fetchers still succeed");
        assert_eq!(report.defense.quarantines, 0);
        for e in report.log.events() {
            if e.kind == JobEventKind::Failed {
                assert_eq!(e.exit_code, Some(EXIT_CORRUPT));
            }
        }
    }

    #[test]
    fn driver_cancellations_remove_jobs() {
        struct CancelSecond {
            to_submit: Vec<JobSpec>,
            jobs: Vec<JobId>,
            cancel_queued: bool,
            pending_cancel: Vec<JobId>,
            completed: usize,
            removed: usize,
        }
        impl WorkloadDriver for CancelSecond {
            fn poll(&mut self, _now: SimTime, events: &[JobEvent]) -> Vec<SubmitRequest> {
                for e in events {
                    match e.kind {
                        JobEventKind::Completed => self.completed += 1,
                        JobEventKind::Removed => self.removed += 1,
                        // Cancel the second job once the first runs.
                        JobEventKind::ExecuteStarted
                            if !self.cancel_queued && e.job == self.jobs[0] =>
                        {
                            self.cancel_queued = true;
                            self.pending_cancel.push(self.jobs[1]);
                        }
                        _ => {}
                    }
                }
                std::mem::take(&mut self.to_submit)
                    .into_iter()
                    .map(|spec| SubmitRequest {
                        owner: OwnerId(0),
                        spec,
                    })
                    .collect()
            }
            fn on_assigned(&mut self, job: JobId, _name: &str) {
                self.jobs.push(job);
            }
            fn cancellations(&mut self) -> Vec<JobId> {
                std::mem::take(&mut self.pending_cancel)
            }
            fn is_done(&self) -> bool {
                self.to_submit.is_empty() && self.completed + self.removed >= 2
            }
        }
        let mut d = CancelSecond {
            to_submit: vec![JobSpec::fixed("a.0", 300.0), JobSpec::fixed("a.1", 300.0)],
            jobs: Vec::new(),
            cancel_queued: false,
            pending_cancel: Vec::new(),
            completed: 0,
            removed: 0,
        };
        let report = Cluster::new(stable_config(Default::default()), 3).run(&mut d);
        assert!(!report.timed_out);
        assert_eq!(d.completed, 1);
        assert_eq!(d.removed, 1);
        let kinds: Vec<JobEventKind> = report.log.events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&JobEventKind::Removed), "009 must be logged");
    }

    #[test]
    fn held_jobs_are_released_and_eventually_complete() {
        let faults = crate::fault::FaultConfig {
            seed: 9,
            hold_prob: 0.3,
            hold_release_s: 120.0,
            ..Default::default()
        };
        let specs: Vec<JobSpec> = (0..30)
            .map(|i| JobSpec::fixed(format!("t.{i}"), 60.0))
            .collect();
        let mut d = BagDriver::new(specs);
        let report = Cluster::new(stable_config(faults), 3).run(&mut d);
        assert!(!report.timed_out);
        assert_eq!(report.completed, 30, "holds only delay, never lose, jobs");
        assert!(report.holds > 0, "p=0.3 over 30 jobs must hold someone");
        let held = report
            .log
            .events()
            .iter()
            .filter(|e| e.kind == JobEventKind::Held)
            .count() as u64;
        let released = report
            .log
            .events()
            .iter()
            .filter(|e| e.kind == JobEventKind::Released)
            .count() as u64;
        assert_eq!(held, report.holds);
        assert_eq!(held, released, "every hold is followed by a release");
        for e in report.log.events() {
            if e.kind == JobEventKind::Held {
                assert_eq!(e.hold_reason, Some(HoldReason::PolicyHold));
            }
        }
    }

    #[test]
    fn transfer_faults_hold_with_transfer_reasons() {
        let faults = crate::fault::FaultConfig {
            seed: 21,
            transfer_fail_prob: 0.25,
            hold_release_s: 60.0,
            ..Default::default()
        };
        let specs: Vec<JobSpec> = (0..30)
            .map(|i| JobSpec::fixed(format!("t.{i}"), 60.0))
            .collect();
        let mut d = BagDriver::new(specs);
        let report = Cluster::new(stable_config(faults), 4).run(&mut d);
        assert_eq!(report.completed, 30);
        let reasons: Vec<HoldReason> = report
            .log
            .events()
            .iter()
            .filter_map(|e| e.hold_reason)
            .collect();
        assert!(!reasons.is_empty());
        assert!(reasons.iter().all(|r| matches!(
            r,
            HoldReason::TransferInputError | HoldReason::TransferOutputError
        )));
    }

    #[test]
    fn wall_time_limit_holds_then_removes() {
        let mut spec = JobSpec::fixed("slow.0", 500.0);
        spec.timeout_s = 60.0;
        let mut d = ChaosBag::new(vec![spec]);
        let report = Cluster::new(stable_config(Default::default()), 6).run(&mut d);
        assert_eq!(report.completed, 0);
        let kinds: Vec<JobEventKind> = report.log.events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&JobEventKind::Held));
        assert!(kinds.contains(&JobEventKind::Removed));
        let held = report
            .log
            .events()
            .iter()
            .find(|e| e.kind == JobEventKind::Held)
            .unwrap();
        assert_eq!(held.hold_reason, Some(HoldReason::WallTimeExceeded));
        // The limit fires at 60 s of execution, not at the 500 s runtime.
        let exec_start = report
            .log
            .events()
            .iter()
            .find(|e| e.kind == JobEventKind::ExecuteStarted)
            .unwrap()
            .time;
        assert_eq!(held.time.since(exec_start), 60);
    }

    #[test]
    fn fault_runs_replay_identically() {
        let mk = || {
            let faults = crate::fault::FaultConfig {
                seed: 77,
                transient_exit_prob: 0.3,
                hold_prob: 0.1,
                hold_release_s: 90.0,
                ..Default::default()
            };
            let specs: Vec<JobSpec> = (0..30)
                .map(|i| JobSpec::fixed(format!("t.{i}"), 100.0))
                .collect();
            let mut d = ChaosBag::new(specs);
            let r = Cluster::new(stable_config(faults), 13).run(&mut d);
            (
                r.makespan,
                r.completed,
                r.exec_failures,
                r.holds,
                r.log.len(),
            )
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn obs_registry_reconciles_with_run_report() {
        use fdw_obs::Obs;
        let faults = crate::fault::FaultConfig {
            seed: 77,
            transient_exit_prob: 0.3,
            hold_prob: 0.1,
            hold_release_s: 90.0,
            ..Default::default()
        };
        let specs: Vec<JobSpec> = (0..30)
            .map(|i| JobSpec::fixed(format!("t.{i}"), 100.0))
            .collect();
        let mut d = ChaosBag::new(specs);
        let obs = Obs::enabled();
        let report = Cluster::new(stable_config(faults), 13)
            .with_obs(obs.clone())
            .run(&mut d);
        assert_eq!(obs.counter("pool.holds"), report.holds);
        assert_eq!(obs.counter("pool.exec_failures"), report.exec_failures);
        assert_eq!(obs.counter("pool.evictions"), report.evictions);
        assert_eq!(obs.counter("pool.completions"), report.completed as u64);
        assert_eq!(
            obs.counter("pool.releases"),
            report.holds,
            "every policy hold releases"
        );
        assert_eq!(
            obs.counter("pool.negotiation_cycles"),
            report.pool_series.len() as u64
        );
        // Per-reason hold counters partition the total.
        let by_reason: u64 = [
            "transfer_input",
            "transfer_output",
            "walltime",
            "policy",
            "checksum",
        ]
        .iter()
        .map(|k| obs.counter(&format!("pool.holds.{k}")))
        .sum();
        assert_eq!(by_reason, report.holds);
        // Every completed job contributes one stage-in and one exec span.
        let trace = obs.chrome_trace();
        assert!(trace.contains("\"name\":\"stage_in\""));
        assert!(trace.contains("\"name\":\"exec\""));
        assert!(trace.contains("\"name\":\"stage_out\""));
        assert!(fdw_obs::json::validate(&trace).is_ok());
        // Cache totals flow into the registry at run end (these specs
        // carry no cacheable inputs, so both sides must agree on zero).
        let hits = obs.counter("cache.hits");
        let misses = obs.counter("cache.misses");
        if hits + misses > 0 {
            let rate = hits as f64 / (hits + misses) as f64;
            assert!((rate - report.cache_hit_rate).abs() < 1e-9);
        } else {
            assert_eq!(report.cache_hit_rate, 0.0);
        }
    }

    #[test]
    fn obs_cache_counters_match_hit_rate() {
        use crate::job::InputFile;
        use fdw_obs::Obs;
        let mut specs = Vec::new();
        for i in 0..20 {
            let mut s = JobSpec::fixed(format!("w.{i}"), 60.0);
            s.inputs.push(InputFile {
                name: "gf.mseed".into(),
                size_mb: 500.0,
                cacheable: true,
            });
            specs.push(s);
        }
        let mut d = BagDriver::new(specs);
        let obs = Obs::enabled();
        let report = Cluster::new(quick_config(), 4)
            .with_obs(obs.clone())
            .run(&mut d);
        let hits = obs.counter("cache.hits");
        let misses = obs.counter("cache.misses");
        assert!(hits + misses > 0);
        let rate = hits as f64 / (hits + misses) as f64;
        assert!((rate - report.cache_hit_rate).abs() < 1e-9);
    }

    #[test]
    fn obs_instrumentation_does_not_perturb_the_run() {
        let mk = |obs: Obs| {
            let specs: Vec<JobSpec> = (0..25)
                .map(|i| JobSpec::fixed(format!("t.{i}"), 200.0))
                .collect();
            let mut d = BagDriver::new(specs);
            Cluster::new(quick_config(), 99)
                .with_obs(obs)
                .run(&mut d)
                .makespan
        };
        use fdw_obs::Obs;
        assert_eq!(mk(Obs::disabled()), mk(Obs::enabled()));
    }

    #[test]
    fn timeout_reported_when_workload_cannot_finish() {
        let cfg = ClusterConfig {
            pool: PoolConfig {
                target_slots: 8,
                glidein_slots: 8,
                avail_mean: 1.0,
                avail_sigma: 0.0,
                max_sim_time_s: 3600, // 1 simulated hour only
                ..Default::default()
            },
            ..ClusterConfig::with_cache()
        };
        let specs: Vec<JobSpec> = (0..500)
            .map(|i| JobSpec::fixed(format!("t.{i}"), 4000.0))
            .collect();
        let mut d = BagDriver::new(specs);
        let report = Cluster::new(cfg, 9).run(&mut d);
        assert!(report.timed_out);
        assert!(report.completed < 500);
    }

    fn federated_config(
        faults: crate::fault::FaultConfig,
        failover: bool,
        checkpoint: bool,
    ) -> ClusterConfig {
        ClusterConfig {
            federation: crate::federation::FederationConfig {
                enabled: true,
                failover_enabled: failover,
                checkpoint_enabled: checkpoint,
                checkpoint_interval_s: 30.0,
                burst_idle_threshold: 0,
                cloud_spinup_s: 60.0,
                ..Default::default()
            },
            ..stable_config(faults)
        }
    }

    #[test]
    fn spot_preemption_with_checkpoint_completes_everything() {
        let faults = crate::fault::FaultConfig {
            seed: 7,
            pool: crate::fault::PoolFaultConfig {
                preempt_prob: 1.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let specs: Vec<JobSpec> = (0..40)
            .map(|i| JobSpec::fixed(format!("t.{i}"), 300.0))
            .collect();
        let mut d = BagDriver::new(specs);
        let report = Cluster::new(federated_config(faults, true, true), 3).run(&mut d);
        assert!(!report.timed_out);
        assert_eq!(report.completed, 40);
        assert!(
            report.federation.preemptions > 0,
            "cloud attempts reclaimed"
        );
        assert!(
            report.federation.migrations > 0,
            "displaced jobs re-match in another pool"
        );
        // Preemptions consume no eviction credit and surface as 026 events.
        let preempted = report
            .log
            .events()
            .iter()
            .filter(|e| e.kind == JobEventKind::Preempted)
            .count() as u64;
        assert_eq!(preempted, report.federation.preemptions);
        assert_eq!(report.evictions, 0, "spot kills are not glidein evictions");
    }

    #[test]
    fn pool_outage_displaces_and_workload_recovers() {
        let faults = crate::fault::FaultConfig {
            seed: 7,
            pool: crate::fault::PoolFaultConfig {
                outage_pool: 1,
                outage_start_s: 400.0,
                outage_duration_s: 2_000.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let specs: Vec<JobSpec> = (0..60)
            .map(|i| JobSpec::fixed(format!("t.{i}"), 300.0))
            .collect();
        let mut d = BagDriver::new(specs);
        let report = Cluster::new(federated_config(faults, true, true), 3).run(&mut d);
        assert!(!report.timed_out);
        assert_eq!(report.completed, 60);
        assert_eq!(report.federation.outages, 1);
        let displaced = report
            .log
            .events()
            .iter()
            .filter(|e| e.kind == JobEventKind::PoolOutage)
            .count();
        assert!(displaced > 0, "in-flight jobs on the down pool displaced");
    }

    #[test]
    fn partition_drains_under_failover_and_waits_without() {
        let faults = crate::fault::FaultConfig {
            seed: 7,
            pool: crate::fault::PoolFaultConfig {
                partition_pool: 0,
                // First matches land at the t=60 negotiation cycle and
                // their (slow, origin-bound) transfers are still in
                // flight when the partition opens at t=100.
                partition_start_s: 100.0,
                partition_duration_s: 3_000.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let run = |failover: bool| {
            let specs: Vec<JobSpec> = (0..40)
                .map(|i| {
                    let mut s = JobSpec::fixed(format!("t.{i}"), 300.0);
                    s.inputs.push(crate::job::InputFile {
                        name: format!("rupt.{i}.bin"),
                        size_mb: 2_000.0,
                        cacheable: false,
                    });
                    s
                })
                .collect();
            let mut d = BagDriver::new(specs);
            Cluster::new(federated_config(faults, failover, false), 3).run(&mut d)
        };
        let on = run(true);
        let off = run(false);
        assert!(!on.timed_out && !off.timed_out);
        assert_eq!(on.completed, 40);
        assert_eq!(off.completed, 40);
        assert!(
            on.federation.drained > 0,
            "failover drains stalled stage-ins"
        );
        assert_eq!(off.federation.drained, 0, "no-failover arm waits in place");
        assert!(
            on.makespan <= off.makespan,
            "draining around a partition must not be slower: {:?} vs {:?}",
            on.makespan,
            off.makespan
        );
    }

    #[test]
    fn federated_runs_are_deterministic_in_both_arms() {
        let faults = crate::fault::FaultConfig {
            seed: 13,
            pool: crate::fault::PoolFaultConfig {
                preempt_prob: 0.6,
                outage_pool: 1,
                outage_start_s: 500.0,
                outage_duration_s: 1_500.0,
                ..Default::default()
            },
            ..Default::default()
        };
        for failover in [false, true] {
            let mk = || {
                let specs: Vec<JobSpec> = (0..30)
                    .map(|i| JobSpec::fixed(format!("t.{i}"), 250.0))
                    .collect();
                let mut d = BagDriver::new(specs);
                let r = Cluster::new(federated_config(faults, failover, failover), 11).run(&mut d);
                (r.makespan, r.federation, r.log.events().len())
            };
            assert_eq!(mk(), mk(), "failover={failover}");
        }
    }

    #[test]
    fn federation_counters_reconcile_with_obs_registry() {
        use fdw_obs::Obs;
        let faults = crate::fault::FaultConfig {
            seed: 7,
            pool: crate::fault::PoolFaultConfig {
                preempt_prob: 0.8,
                outage_pool: 1,
                outage_start_s: 400.0,
                outage_duration_s: 1_000.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let specs: Vec<JobSpec> = (0..40)
            .map(|i| JobSpec::fixed(format!("t.{i}"), 300.0))
            .collect();
        let mut d = BagDriver::new(specs);
        let obs = Obs::enabled();
        let report = Cluster::new(federated_config(faults, true, true), 3)
            .with_obs(obs.clone())
            .run(&mut d);
        let f = report.federation;
        assert_eq!(obs.counter("pool.federation.outages"), f.outages);
        assert_eq!(obs.counter("pool.federation.preemptions"), f.preemptions);
        assert_eq!(obs.counter("pool.federation.migrations"), f.migrations);
        assert_eq!(obs.counter("pool.federation.checkpoints"), f.checkpoints);
        assert_eq!(obs.counter("pool.federation.resumes"), f.resumes);
        assert_eq!(
            obs.counter("pool.federation.breaker_opens"),
            f.breaker_opens
        );
        assert_eq!(obs.counter("pool.federation.drained"), f.drained);
        assert!(f.preemptions > 0);
    }
}
