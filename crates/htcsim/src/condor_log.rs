//! The HTCondor job-event-log *text* format.
//!
//! The paper's monitoring works by parsing HTCondor log files with shell
//! scripts (§3); this module emits and parses the classic ULOG dialect so
//! a simulated run's log is byte-for-byte greppable the same way:
//!
//! ```text
//! 000 (042.000.000) 01/02 03:04:05 Job submitted from host: <sim>
//! ...
//! 001 (042.000.000) 01/02 03:14:05 Job executing on host: <ospool>
//! ...
//! 005 (042.000.000) 01/02 03:30:00 Job terminated (return value 0).
//! ...
//! ```
//!
//! Event codes used (the observable subset): `000` submitted, `001`
//! executing, `004` evicted, `005` terminated (with its return value —
//! a non-zero value distinguishes a failed attempt), `009` aborted
//! (removed), `012` held (with its hold reason), `013` released, and the
//! federated-layer codes: `022` pool-outage eviction, `023` transfer
//! stalled by a network partition, `026` spot-reclamation preemption,
//! `030` migration to another pool (with the destination pool index).
//! Matchmaking (`Matched`) has no ULOG representation and is omitted, as
//! in real HTCondor logs. Timestamps encode simulated time as
//! `01/DD HH:MM:SS` with day 1 = simulation start.

use crate::fault::HoldReason;
use crate::job::{JobEvent, JobEventKind, JobId, OwnerId};
use crate::service::{ArtifactKind, DegradeMode, RejectReason, ServiceDetail, ShedReason};
use crate::time::SimTime;
use crate::userlog::UserLog;

/// The single registry of ULOG numeric event codes. Every code the
/// writer emits and the parser accepts is named here exactly once;
/// spelling a bare 3-digit literal anywhere else in the ULOG-handling
/// crates is a lint violation (`fdwlint`'s `ulog-code-registry` rule).
pub mod codes {
    /// `000` — job submitted.
    pub const SUBMITTED: &str = "000";
    /// `001` — job executing.
    pub const EXECUTE: &str = "001";
    /// `004` — job evicted.
    pub const EVICTED: &str = "004";
    /// `005` — job terminated (return value decides success/failure).
    pub const TERMINATED: &str = "005";
    /// `009` — job aborted (removed) by the user.
    pub const ABORTED: &str = "009";
    /// `012` — job held.
    pub const HELD: &str = "012";
    /// `013` — job released.
    pub const RELEASED: &str = "013";
    /// `022` — federated layer: evicted by a pool outage.
    pub const POOL_OUTAGE: &str = "022";
    /// `023` — federated layer: transfer stalled by a network partition.
    pub const PARTITION_STALLED: &str = "023";
    /// `026` — federated layer: preempted by spot reclamation.
    pub const PREEMPTED: &str = "026";
    /// `030` — federated layer: migrated to another pool.
    pub const MIGRATED: &str = "030";
    /// `033` — service layer: campaign admitted.
    pub const SERVICE_ADMITTED: &str = "033";
    /// `034` — service layer: campaign rejected by admission control.
    pub const SERVICE_REJECTED: &str = "034";
    /// `035` — service layer: campaign shed under load.
    pub const SERVICE_SHED: &str = "035";
    /// `036` — service layer: campaign started in a degraded mode.
    pub const SERVICE_DEGRADED: &str = "036";
    /// `037` — service layer: artifact served from the shared store.
    pub const ARTIFACT_HIT: &str = "037";
    /// `038` — service layer: artifact quarantined on checksum mismatch.
    pub const ARTIFACT_QUARANTINED: &str = "038";

    /// Every registered code, in numeric order.
    pub const ALL: &[&str] = &[
        SUBMITTED,
        EXECUTE,
        EVICTED,
        TERMINATED,
        ABORTED,
        HELD,
        RELEASED,
        POOL_OUTAGE,
        PARTITION_STALLED,
        PREEMPTED,
        MIGRATED,
        SERVICE_ADMITTED,
        SERVICE_REJECTED,
        SERVICE_SHED,
        SERVICE_DEGRADED,
        ARTIFACT_HIT,
        ARTIFACT_QUARANTINED,
    ];
}

/// Render a simulated timestamp in the ULOG `MM/DD HH:MM:SS` style
/// (month fixed at 01; day 1 = simulation start).
fn format_time(t: SimTime) -> String {
    let s = t.as_secs();
    let day = 1 + s / 86_400;
    let h = (s % 86_400) / 3600;
    let m = (s % 3600) / 60;
    let sec = s % 60;
    format!("01/{day:02} {h:02}:{m:02}:{sec:02}")
}

/// Parse the `01/DD HH:MM:SS` timestamp back to simulated time.
fn parse_time(s: &str) -> Result<SimTime, String> {
    let bad = || format!("bad ULOG timestamp '{s}'");
    let (date, clock) = s.split_once(' ').ok_or_else(bad)?;
    let (_month, day) = date.split_once('/').ok_or_else(bad)?;
    let day: u64 = day.parse().map_err(|_| bad())?;
    let parts: Vec<&str> = clock.split(':').collect();
    if parts.len() != 3 || day == 0 {
        return Err(bad());
    }
    let h: u64 = parts[0].parse().map_err(|_| bad())?;
    let m: u64 = parts[1].parse().map_err(|_| bad())?;
    let sec: u64 = parts[2].parse().map_err(|_| bad())?;
    Ok(SimTime((day - 1) * 86_400 + h * 3600 + m * 60 + sec))
}

/// Whether an event kind appears in a real HTCondor log.
pub fn is_loggable(kind: JobEventKind) -> bool {
    !matches!(kind, JobEventKind::Matched)
}

fn code_and_text(ev: &JobEvent) -> Option<(&'static str, String)> {
    match ev.kind {
        JobEventKind::Submitted => {
            Some((codes::SUBMITTED, "Job submitted from host: <sim>".into()))
        }
        JobEventKind::ExecuteStarted => {
            Some((codes::EXECUTE, "Job executing on host: <ospool>".into()))
        }
        JobEventKind::Evicted => Some((codes::EVICTED, "Job was evicted.".into())),
        JobEventKind::Completed => Some((
            codes::TERMINATED,
            format!(
                "Job terminated (return value {}).",
                ev.exit_code.unwrap_or(0)
            ),
        )),
        JobEventKind::Failed => Some((
            codes::TERMINATED,
            format!(
                "Job terminated (return value {}).",
                ev.exit_code.unwrap_or(1)
            ),
        )),
        JobEventKind::Removed => Some((codes::ABORTED, "Job was aborted by the user.".into())),
        JobEventKind::Held => Some((
            codes::HELD,
            format!(
                "Job was held. Reason: {}",
                ev.hold_reason
                    .map(HoldReason::text)
                    .unwrap_or("Unspecified")
            ),
        )),
        JobEventKind::Released => Some((codes::RELEASED, "Job was released.".into())),
        JobEventKind::PoolOutage => {
            Some((codes::POOL_OUTAGE, "Job was evicted: pool outage.".into()))
        }
        JobEventKind::PartitionStalled => Some((
            codes::PARTITION_STALLED,
            "Job transfer stalled: network partition.".into(),
        )),
        JobEventKind::Preempted => Some((
            codes::PREEMPTED,
            "Job was preempted by spot reclamation.".into(),
        )),
        JobEventKind::Migrated => Some((
            codes::MIGRATED,
            format!("Job migrated to pool {}.", ev.pool.unwrap_or(0)),
        )),
        JobEventKind::ServiceAdmitted => Some((
            codes::SERVICE_ADMITTED,
            "Campaign admitted by the service.".into(),
        )),
        JobEventKind::ServiceRejected => Some((
            codes::SERVICE_REJECTED,
            format!(
                "Campaign rejected by admission control. Reason: {}",
                match ev.service {
                    Some(ServiceDetail::Reject(r)) => r.text(),
                    _ => "Per-tenant quota exceeded",
                }
            ),
        )),
        JobEventKind::ServiceShed => Some((
            codes::SERVICE_SHED,
            format!(
                "Campaign shed under load. Reason: {}",
                match ev.service {
                    Some(ServiceDetail::Shed(r)) => r.text(),
                    _ => "Global backlog overflow",
                }
            ),
        )),
        JobEventKind::ServiceDegraded => Some((
            codes::SERVICE_DEGRADED,
            format!(
                "Campaign degraded. Mode: {}",
                match ev.service {
                    Some(ServiceDetail::Degrade(m)) => m.text(),
                    _ => DegradeMode::TruncatedKl.text(),
                }
            ),
        )),
        JobEventKind::ArtifactHit => Some((
            codes::ARTIFACT_HIT,
            format!(
                "Artifact served from shared store: {}.",
                match ev.service {
                    Some(ServiceDetail::Artifact(a)) => a.text(),
                    _ => ArtifactKind::Factor.text(),
                }
            ),
        )),
        JobEventKind::ArtifactQuarantined => Some((
            codes::ARTIFACT_QUARANTINED,
            format!(
                "Artifact quarantined (checksum mismatch): {}.",
                match ev.service {
                    Some(ServiceDetail::Artifact(a)) => a.text(),
                    _ => ArtifactKind::Factor.text(),
                }
            ),
        )),
        JobEventKind::Matched => None,
    }
}

/// Serialise a user log in the HTCondor ULOG text dialect. The owner id
/// becomes the ClassAd "cluster" field's subcluster (`(job.owner.000)`),
/// and every event is terminated by the canonical `...` separator line.
pub fn to_condor_log(log: &UserLog) -> String {
    let mut out = String::new();
    for ev in log.events() {
        let Some((code, text)) = code_and_text(ev) else {
            continue;
        };
        out.push_str(&format!(
            "{code} ({:03}.{:03}.000) {} {text}\n...\n",
            ev.job.0,
            ev.owner.0,
            format_time(ev.time)
        ));
    }
    out
}

/// Parse the ULOG dialect back into a [`UserLog`] (loggable events only).
pub fn parse_condor_log(text: &str) -> Result<UserLog, String> {
    let mut log = UserLog::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line == "..." {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}", lineno + 1);
        // "CODE (JJJ.OOO.000) MM/DD HH:MM:SS text..."
        let (code, rest) = line.split_once(' ').ok_or_else(|| err("missing code"))?;
        let rest = rest.trim_start();
        if !rest.starts_with('(') {
            return Err(err("missing job id"));
        }
        let close = rest.find(')').ok_or_else(|| err("unterminated job id"))?;
        let id_part = &rest[1..close];
        let mut id_fields = id_part.split('.');
        let job: u64 = id_fields
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err("bad cluster id"))?;
        let owner: u32 = id_fields
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err("bad proc id"))?;
        let after = rest[close + 1..].trim_start();
        // Timestamp is the next 14 characters: "MM/DD HH:MM:SS".
        if after.len() < 14 {
            return Err(err("truncated timestamp"));
        }
        let time = parse_time(&after[..14]).map_err(|e| err(&e))?;
        let (job, owner) = (JobId(job), OwnerId(owner));
        let body = after[14..].trim();
        let ev = match code {
            codes::SUBMITTED => JobEvent::new(time, job, owner, JobEventKind::Submitted),
            codes::EXECUTE => JobEvent::new(time, job, owner, JobEventKind::ExecuteStarted),
            codes::EVICTED => JobEvent::new(time, job, owner, JobEventKind::Evicted),
            codes::TERMINATED => {
                // The return value decides success vs failure.
                let rv: i32 = body
                    .find("return value ")
                    .and_then(|i| {
                        let tail = &body[i + "return value ".len()..];
                        let end = tail.find(')').unwrap_or(tail.len());
                        tail[..end].trim().parse().ok()
                    })
                    .ok_or_else(|| err("005 event missing return value"))?;
                let kind = if rv == 0 {
                    JobEventKind::Completed
                } else {
                    JobEventKind::Failed
                };
                JobEvent::new(time, job, owner, kind).with_exit(rv)
            }
            codes::ABORTED => JobEvent::new(time, job, owner, JobEventKind::Removed),
            codes::HELD => {
                let mut ev = JobEvent::new(time, job, owner, JobEventKind::Held);
                if let Some(i) = body.find("Reason: ") {
                    if let Some(r) = HoldReason::parse(body[i + "Reason: ".len()..].trim()) {
                        ev = ev.with_hold(r);
                    }
                }
                ev
            }
            codes::RELEASED => JobEvent::new(time, job, owner, JobEventKind::Released),
            codes::POOL_OUTAGE => JobEvent::new(time, job, owner, JobEventKind::PoolOutage),
            codes::PARTITION_STALLED => {
                JobEvent::new(time, job, owner, JobEventKind::PartitionStalled)
            }
            codes::PREEMPTED => JobEvent::new(time, job, owner, JobEventKind::Preempted),
            codes::MIGRATED => {
                let pool: u32 = body
                    .find("pool ")
                    .and_then(|i| {
                        let tail = &body[i + "pool ".len()..];
                        let end = tail.find('.').unwrap_or(tail.len());
                        tail[..end].trim().parse().ok()
                    })
                    .ok_or_else(|| err("030 event missing destination pool"))?;
                JobEvent::new(time, job, owner, JobEventKind::Migrated).with_pool(pool)
            }
            codes::SERVICE_ADMITTED => {
                JobEvent::new(time, job, owner, JobEventKind::ServiceAdmitted)
            }
            codes::SERVICE_REJECTED => {
                let reason = body
                    .find("Reason: ")
                    .and_then(|i| RejectReason::parse(&body[i + "Reason: ".len()..]))
                    .ok_or_else(|| err("034 event missing reject reason"))?;
                JobEvent::new(time, job, owner, JobEventKind::ServiceRejected)
                    .with_service(ServiceDetail::Reject(reason))
            }
            codes::SERVICE_SHED => {
                let reason = body
                    .find("Reason: ")
                    .and_then(|i| ShedReason::parse(&body[i + "Reason: ".len()..]))
                    .ok_or_else(|| err("035 event missing shed reason"))?;
                JobEvent::new(time, job, owner, JobEventKind::ServiceShed)
                    .with_service(ServiceDetail::Shed(reason))
            }
            codes::SERVICE_DEGRADED => {
                let mode = body
                    .find("Mode: ")
                    .and_then(|i| DegradeMode::parse(&body[i + "Mode: ".len()..]))
                    .ok_or_else(|| err("036 event missing degrade mode"))?;
                JobEvent::new(time, job, owner, JobEventKind::ServiceDegraded)
                    .with_service(ServiceDetail::Degrade(mode))
            }
            codes::ARTIFACT_HIT | codes::ARTIFACT_QUARANTINED => {
                let kind = body
                    .rfind(": ")
                    .and_then(|i| ArtifactKind::parse(body[i + 2..].trim_end_matches('.')))
                    .ok_or_else(|| err("artifact event missing artifact kind"))?;
                let ev_kind = if code == codes::ARTIFACT_HIT {
                    JobEventKind::ArtifactHit
                } else {
                    JobEventKind::ArtifactQuarantined
                };
                JobEvent::new(time, job, owner, ev_kind).with_service(ServiceDetail::Artifact(kind))
            }
            other => return Err(err(&format!("unknown event code '{other}'"))),
        };
        log.record(ev);
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> UserLog {
        let mut log = UserLog::new();
        let ev =
            |t: u64, j: u64, o: u32, kind| JobEvent::new(SimTime(t), JobId(j), OwnerId(o), kind);
        log.record(ev(0, 1, 0, JobEventKind::Submitted));
        log.record(ev(30, 1, 0, JobEventKind::Matched)); // not loggable
        log.record(ev(95, 1, 0, JobEventKind::ExecuteStarted));
        log.record(ev(200, 1, 0, JobEventKind::Evicted));
        log.record(ev(400, 1, 0, JobEventKind::ExecuteStarted));
        log.record(ev(90_061, 1, 0, JobEventKind::Completed).with_exit(0)); // day 2
        log.record(ev(10, 2, 3, JobEventKind::Submitted));
        log.record(ev(500, 2, 3, JobEventKind::Removed));
        log.record(ev(20, 3, 0, JobEventKind::Submitted));
        log.record(ev(50, 3, 0, JobEventKind::Held).with_hold(HoldReason::TransferInputError));
        log.record(ev(650, 3, 0, JobEventKind::Released));
        log.record(ev(700, 3, 0, JobEventKind::ExecuteStarted));
        log.record(ev(900, 3, 0, JobEventKind::Failed).with_exit(2));
        log
    }

    #[test]
    fn registry_codes_are_unique_and_sorted() {
        for w in codes::ALL.windows(2) {
            assert!(w[0] < w[1], "registry out of order or duplicated: {w:?}");
        }
        assert_eq!(codes::ALL.len(), 17);
    }

    #[test]
    fn format_looks_like_condor() {
        let text = to_condor_log(&sample_log());
        assert!(text.contains("000 (001.000.000) 01/01 00:00:00 Job submitted from host: <sim>"));
        assert!(text.contains("001 (001.000.000) 01/01 00:01:35 Job executing on host: <ospool>"));
        assert!(text.contains("005 (001.000.000) 01/02 01:01:01 Job terminated (return value 0)."));
        assert!(text.contains("009 (002.003.000)"));
        assert!(text.contains(
            "012 (003.000.000) 01/01 00:00:50 Job was held. Reason: Transfer input files failure"
        ));
        assert!(text.contains("013 (003.000.000) 01/01 00:10:50 Job was released."));
        assert!(text.contains("005 (003.000.000) 01/01 00:15:00 Job terminated (return value 2)."));
        // The canonical separator after every event.
        let events = text.matches("\n...\n").count();
        assert_eq!(events, 12, "12 loggable events, each with a separator");
        // Matched never appears.
        assert!(!text.contains("028"));
    }

    #[test]
    fn roundtrip_preserves_loggable_events() {
        let original = sample_log();
        let parsed = parse_condor_log(&to_condor_log(&original)).unwrap();
        let expect: Vec<&JobEvent> = original
            .events()
            .iter()
            .filter(|e| is_loggable(e.kind))
            .collect();
        assert_eq!(parsed.len(), expect.len());
        for (a, b) in parsed.events().iter().zip(expect) {
            assert_eq!(a, b);
        }
        // The paper's statistics survive the text roundtrip.
        assert_eq!(parsed.completed_count(), original.completed_count());
        assert_eq!(parsed.makespan(), original.makespan());
        let jt = parsed.job_times();
        assert_eq!(jt[0].evictions, 1);
        assert_eq!(jt[0].wait_secs(), Some(400));
    }

    #[test]
    fn exit_codes_and_hold_reasons_roundtrip() {
        let parsed = parse_condor_log(&to_condor_log(&sample_log())).unwrap();
        let failed: Vec<&JobEvent> = parsed
            .events()
            .iter()
            .filter(|e| e.kind == JobEventKind::Failed)
            .collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].exit_code, Some(2));
        let held: Vec<&JobEvent> = parsed
            .events()
            .iter()
            .filter(|e| e.kind == JobEventKind::Held)
            .collect();
        assert_eq!(held.len(), 1);
        assert_eq!(held[0].hold_reason, Some(HoldReason::TransferInputError));
    }

    #[test]
    fn federation_event_codes_roundtrip() {
        let mut log = UserLog::new();
        let ev = |t: u64, j: u64, kind| JobEvent::new(SimTime(t), JobId(j), OwnerId(0), kind);
        log.record(ev(0, 1, JobEventKind::Submitted));
        log.record(ev(50, 1, JobEventKind::PoolOutage));
        log.record(ev(60, 1, JobEventKind::PartitionStalled));
        log.record(ev(70, 1, JobEventKind::Preempted));
        log.record(ev(80, 1, JobEventKind::Migrated).with_pool(2));
        log.record(ev(200, 1, JobEventKind::Completed).with_exit(0));
        let text = to_condor_log(&log);
        assert!(text.contains("022 (001.000.000) 01/01 00:00:50 Job was evicted: pool outage."));
        assert!(text
            .contains("023 (001.000.000) 01/01 00:01:00 Job transfer stalled: network partition."));
        assert!(text
            .contains("026 (001.000.000) 01/01 00:01:10 Job was preempted by spot reclamation."));
        assert!(text.contains("030 (001.000.000) 01/01 00:01:20 Job migrated to pool 2."));
        let parsed = parse_condor_log(&text).unwrap();
        assert_eq!(parsed.len(), log.len());
        for (a, b) in parsed.events().iter().zip(log.events()) {
            assert_eq!(a, b);
        }
        assert!(
            parse_condor_log("030 (001.000.000) 01/01 00:00:00 Job migrated.\n").is_err(),
            "030 without a destination pool is rejected"
        );
    }

    #[test]
    fn service_event_codes_roundtrip() {
        let mut log = UserLog::new();
        let ev =
            |t: u64, j: u64, o: u32, kind| JobEvent::new(SimTime(t), JobId(j), OwnerId(o), kind);
        log.record(ev(0, 1, 0, JobEventKind::Submitted));
        log.record(ev(0, 1, 0, JobEventKind::ServiceAdmitted));
        log.record(
            ev(5, 2, 1, JobEventKind::ServiceRejected)
                .with_service(ServiceDetail::Reject(RejectReason::QueueFull)),
        );
        log.record(
            ev(9, 3, 2, JobEventKind::ServiceRejected)
                .with_service(ServiceDetail::Reject(RejectReason::CircuitOpen)),
        );
        log.record(
            ev(12, 4, 0, JobEventKind::ServiceShed)
                .with_service(ServiceDetail::Shed(ShedReason::DeadlineUnreachable)),
        );
        log.record(
            ev(20, 1, 0, JobEventKind::ServiceDegraded)
                .with_service(ServiceDetail::Degrade(DegradeMode::ReducedReplicas)),
        );
        log.record(
            ev(21, 1, 0, JobEventKind::ArtifactHit)
                .with_service(ServiceDetail::Artifact(ArtifactKind::GfLibrary)),
        );
        log.record(
            ev(22, 1, 0, JobEventKind::ArtifactQuarantined)
                .with_service(ServiceDetail::Artifact(ArtifactKind::DistanceMatrix)),
        );
        log.record(ev(90, 1, 0, JobEventKind::Completed).with_exit(0));
        let text = to_condor_log(&log);
        assert!(text.contains("033 (001.000.000) 01/01 00:00:00 Campaign admitted by the service."));
        assert!(text.contains(
            "034 (002.001.000) 01/01 00:00:05 Campaign rejected by admission control. \
             Reason: Tenant queue full"
        ));
        assert!(text.contains("Reason: Tenant circuit breaker open"));
        assert!(text.contains(
            "035 (004.000.000) 01/01 00:00:12 Campaign shed under load. \
             Reason: Deadline unreachable"
        ));
        assert!(text.contains(
            "036 (001.000.000) 01/01 00:00:20 Campaign degraded. Mode: Reduced replica count"
        ));
        assert!(text.contains(
            "037 (001.000.000) 01/01 00:00:21 Artifact served from shared store: gf-library."
        ));
        assert!(text.contains(
            "038 (001.000.000) 01/01 00:00:22 Artifact quarantined (checksum mismatch): \
             distance-matrix."
        ));
        let parsed = parse_condor_log(&text).unwrap();
        assert_eq!(parsed.len(), log.len());
        for (a, b) in parsed.events().iter().zip(log.events()) {
            assert_eq!(a, b);
        }
        // Events whose typed payload is missing or unknown are rejected.
        assert!(
            parse_condor_log("034 (001.000.000) 01/01 00:00:00 Campaign rejected.\n").is_err(),
            "034 without a typed reason is rejected"
        );
        assert!(
            parse_condor_log(
                "035 (001.000.000) 01/01 00:00:00 Campaign shed under load. Reason: tired\n"
            )
            .is_err(),
            "unknown shed reason is rejected"
        );
        assert!(
            parse_condor_log(
                "037 (001.000.000) 01/01 00:00:00 Artifact served from shared store: waveform.\n"
            )
            .is_err(),
            "unknown artifact kind is rejected"
        );
    }

    #[test]
    fn timestamps_roundtrip() {
        for t in [0u64, 59, 3600, 86_399, 86_400, 20 * 86_400 + 86_399] {
            let s = format_time(SimTime(t));
            assert_eq!(parse_time(&s).unwrap(), SimTime(t), "{s}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_condor_log("042 (001.000.000) 01/01 00:00:00 ?\n").is_err());
        assert!(parse_condor_log("000 001.000.000 01/01 00:00:00 x\n").is_err());
        assert!(parse_condor_log("000 (001.000.000 01/01 00:00:00 x\n").is_err());
        assert!(parse_condor_log("000 (abc.000.000) 01/01 00:00:00 x\n").is_err());
        assert!(parse_condor_log("000 (001.000.000) 01/01\n").is_err());
        assert!(
            parse_condor_log("005 (001.000.000) 01/01 00:00:00 Job terminated.\n").is_err(),
            "005 without a return value is rejected"
        );
        assert!(parse_time("13/00 00:00:00").is_err());
        assert!(parse_time("01/01 99:xx:00").is_err());
        // Empty input parses to an empty log.
        assert!(parse_condor_log("").unwrap().is_empty());
    }

    #[test]
    fn grep_style_counting_works() {
        // The paper's shell scripts count completions by grepping for the
        // 005 event code — with exit codes in the log, success vs failure
        // is the return value.
        let text = to_condor_log(&sample_log());
        let terminations = text.lines().filter(|l| l.starts_with("005 ")).count();
        assert_eq!(terminations, 2);
        let successes = text
            .lines()
            .filter(|l| l.contains("return value 0"))
            .count();
        assert_eq!(successes, 1);
        let submissions = text.lines().filter(|l| l.starts_with("000 ")).count();
        assert_eq!(submissions, 3);
        let holds = text.lines().filter(|l| l.starts_with("012 ")).count();
        assert_eq!(holds, 1);
    }
}
