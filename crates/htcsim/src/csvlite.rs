//! A minimal CSV encoder/decoder.
//!
//! The paper's bursting simulator consumes two `.csv` files of DAGMan/job
//! times and emits a per-second throughput `.csv`. Our records contain no
//! embedded commas or quotes, so the implementation intentionally covers
//! only that simple dialect — with quoting support on read for robustness
//! against hand-edited inputs.

/// Encode rows as CSV with a header row.
pub fn encode(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Parse CSV into `(header, rows)`. Handles double-quoted fields and
/// skips blank lines. Rows with a different field count from the header
/// are an error.
pub fn parse(text: &str) -> Result<(Vec<String>, Vec<Vec<String>>), String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header_line = lines.next().ok_or_else(|| "empty CSV".to_string())?;
    let header = split_line(header_line)?;
    let mut rows = Vec::new();
    for (i, line) in lines.enumerate() {
        let row = split_line(line)?;
        if row.len() != header.len() {
            return Err(format!(
                "row {} has {} fields, header has {}",
                i + 2,
                row.len(),
                header.len()
            ));
        }
        rows.push(row);
    }
    Ok((header, rows))
}

/// Split one CSV line respecting double quotes.
fn split_line(line: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    if in_quotes {
        return Err(format!("unterminated quote in line: {line}"));
    }
    fields.push(cur);
    Ok(fields)
}

/// Find the index of a named column in a header (case-insensitive).
pub fn column(header: &[String], name: &str) -> Result<usize, String> {
    header
        .iter()
        .position(|h| h.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("missing column '{name}' in header {header:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let text = encode(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let (h, rows) = parse(&text).unwrap();
        assert_eq!(h, vec!["a", "b"]);
        assert_eq!(rows, vec![vec!["1", "2"], vec!["3", "4"]]);
    }

    #[test]
    fn quoted_fields() {
        let (h, rows) = parse("name,value\n\"hello, world\",3\n\"say \"\"hi\"\"\",4\n").unwrap();
        assert_eq!(h, vec!["name", "value"]);
        assert_eq!(rows[0][0], "hello, world");
        assert_eq!(rows[1][0], "say \"hi\"");
    }

    #[test]
    fn blank_lines_skipped() {
        let (_, rows) = parse("a,b\n\n1,2\n\n3,4\n\n").unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("a,b\n1\n").is_err());
        assert!(parse("a,b\n\"oops,2\n").is_err());
    }

    #[test]
    fn column_lookup() {
        let h = vec!["JobId".to_string(), "SubmitTime".to_string()];
        assert_eq!(column(&h, "submittime").unwrap(), 1);
        assert!(column(&h, "nope").is_err());
    }

    #[test]
    fn empty_fields_preserved() {
        let (_, rows) = parse("a,b,c\n1,,3\n").unwrap();
        assert_eq!(rows[0], vec!["1", "", "3"]);
    }
}
