//! Sharded parallel discrete-event engine with an epoch barrier.
//!
//! [`EventQueue`](crate::event::EventQueue) makes the *ordering* of a
//! sharded run deterministic; this module adds the *execution* side: an
//! engine that drains many event lanes concurrently over the vendored
//! rayon fork-join pool and still produces bitwise-identical results at
//! every thread count — including a purely monolithic single-heap run.
//!
//! ## Model
//!
//! State is partitioned into **lanes** (one [`LaneModel`] each — a pool,
//! a machine group). Each lane owns a private event heap ordered by
//! `(time, per-lane seq)` and a private RNG stream split off the base
//! seed with [`crate::fault::lane_seed`]. Simulated time advances in
//! fixed-width **epochs**:
//!
//! 1. the next epoch is the one containing the globally earliest
//!    pending event (a k-way min over lane heads — the merge point);
//! 2. every lane independently drains its events with `time <
//!    epoch_end`, scheduling lane-local follow-ups immediately and
//!    buffering cross-lane messages in an outbox;
//! 3. at the **barrier**, outboxes are delivered in lane order; a
//!    message sent at `t` arrives no earlier than the epoch boundary
//!    after `t` (a pure function of `t`, never of scheduling), which is
//!    the lookahead that makes step 2 safe to run in parallel.
//!
//! Within a lane, events are handled in exactly the order a global
//! `(time, lane, seq)` merge would handle them; across lanes, the only
//! interaction channel is the barrier. Both facts together give the
//! determinism contract: `run_sharded(threads)` and [`run_monolithic`]
//! (one global heap, no parallelism) fold byte-identical digests.
//!
//! [`run_monolithic`]: ShardedEngine::run_monolithic

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::fault::lane_seed;
use crate::rand_util::lognormal_median;
use crate::time::SimTime;

/// FNV-1a fold of one word into a running digest. Lane models use this
/// to fingerprint every handled event; the engine folds lane digests in
/// lane order, so the combined digest pins the full execution history.
pub fn digest_fold(h: u64, x: u64) -> u64 {
    let mut h = h ^ x;
    h = h.wrapping_mul(0x0000_0100_0000_01b3);
    h ^ (h >> 32)
}

/// Initial digest state (FNV-1a offset basis).
pub const DIGEST_INIT: u64 = 0xcbf2_9ce4_8422_2325;

/// One lane's state machine.
pub trait LaneModel: Send {
    /// Event type carried on this lane.
    type Ev: Send + Clone;

    /// Handle one event at simulated time `now`; follow-ups and
    /// cross-lane messages go through `fx`.
    fn handle(&mut self, now: SimTime, ev: Self::Ev, fx: &mut Effects<Self::Ev>);

    /// Order-sensitive digest of everything this lane has processed.
    fn digest(&self) -> u64;
}

/// A cross-lane message buffered until the epoch barrier.
struct Mail<E> {
    to: u32,
    recv: SimTime,
    ev: E,
}

/// Scheduling effects a handler may emit: lane-local follow-ups (made
/// visible to the lane's own heap immediately) and cross-lane sends
/// (buffered; delivered at the epoch barrier).
pub struct Effects<'a, E> {
    lane: u32,
    now: SimTime,
    epoch_s: u64,
    local: &'a mut Vec<(SimTime, E)>,
    mail: &'a mut Vec<Mail<E>>,
}

impl<E> Effects<'_, E> {
    /// The lane this handler runs on.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Schedule a lane-local follow-up `delay` seconds from now. It may
    /// land inside the current epoch and will be handled there.
    pub fn schedule(&mut self, delay: u64, ev: E) {
        self.local.push((self.now + delay, ev));
    }

    /// Send `ev` to lane `to`. It arrives at
    /// `max(now + delay, next epoch boundary after now)` — a pure
    /// function of the send time, so monolithic and sharded execution
    /// agree on the delivery timestamp. Sending to the own lane is
    /// allowed and still routes through the barrier.
    pub fn send(&mut self, to: u32, delay: u64, ev: E) {
        let boundary = SimTime((self.now.as_secs() / self.epoch_s + 1) * self.epoch_s);
        let recv = SimTime((self.now + delay).as_secs().max(boundary.as_secs()));
        self.mail.push(Mail { to, recv, ev });
    }
}

/// Lane-heap entry ordered by `(time, seq)` — the per-lane restriction
/// of the global `(time, lane, seq)` key.
struct LEntry<E> {
    time: SimTime,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for LEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl<E> Eq for LEntry<E> {}
impl<E> Ord for LEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}
impl<E> PartialOrd for LEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct LaneRt<M: LaneModel> {
    model: M,
    heap: BinaryHeap<Reverse<LEntry<M::Ev>>>,
    /// Per-lane push counter — identical across run modes because only
    /// pushes to *this* lane bump it, and those happen in this lane's
    /// processing order in every mode.
    seq: u64,
    outbox: Vec<Mail<M::Ev>>,
    handled: u64,
    last_time: SimTime,
}

impl<M: LaneModel> LaneRt<M> {
    fn push(&mut self, time: SimTime, ev: M::Ev) {
        self.heap.push(Reverse(LEntry {
            time,
            seq: self.seq,
            ev,
        }));
        self.seq += 1;
    }

    /// Drain every event with `time < epoch_end`, handling lane-local
    /// follow-ups that land inside the epoch in the same pass.
    fn drain_epoch(&mut self, lane: u32, epoch_end: SimTime, epoch_s: u64) {
        let mut local: Vec<(SimTime, M::Ev)> = Vec::new();
        while let Some(Reverse(head)) = self.heap.peek() {
            if head.time >= epoch_end {
                break;
            }
            let Reverse(e) = self.heap.pop().expect("peeked");
            self.handled += 1;
            self.last_time = e.time;
            let mut fx = Effects {
                lane,
                now: e.time,
                epoch_s,
                local: &mut local,
                mail: &mut self.outbox,
            };
            self.model.handle(e.time, e.ev, &mut fx);
            for (t, ev) in local.drain(..) {
                self.push(t, ev);
            }
        }
    }
}

/// Run totals; every field is mode- and thread-invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineReport {
    /// Events handled across all lanes.
    pub events: u64,
    /// Time of the last handled event.
    pub makespan: SimTime,
    /// Combined digest (per-lane digests + counters folded in lane
    /// order) — the byte-identity gate between run modes.
    pub digest: u64,
}

/// The epoch-barrier engine over a set of lanes.
pub struct ShardedEngine<M: LaneModel> {
    lanes: Vec<LaneRt<M>>,
    epoch_s: u64,
}

impl<M: LaneModel> ShardedEngine<M> {
    /// Build an engine over `models` (lane index = position) with the
    /// given epoch width in seconds (clamped to at least 1).
    pub fn new(models: Vec<M>, epoch_s: u64) -> Self {
        ShardedEngine {
            lanes: models
                .into_iter()
                .map(|model| LaneRt {
                    model,
                    heap: BinaryHeap::new(),
                    seq: 0,
                    outbox: Vec::new(),
                    handled: 0,
                    last_time: SimTime::ZERO,
                })
                .collect(),
            epoch_s: epoch_s.max(1),
        }
    }

    /// Number of lanes.
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Seed an initial event onto `lane` at absolute `time`.
    pub fn seed_event(&mut self, lane: u32, time: SimTime, ev: M::Ev) {
        self.lanes[lane as usize].push(time, ev);
    }

    /// Iterate the lane models (for post-run statistics).
    pub fn models(&self) -> impl Iterator<Item = &M> {
        self.lanes.iter().map(|l| &l.model)
    }

    fn report(&self) -> EngineReport {
        let mut events = 0;
        let mut makespan = SimTime::ZERO;
        let mut digest = DIGEST_INIT;
        for l in &self.lanes {
            events += l.handled;
            makespan = makespan.max(l.last_time);
            digest = digest_fold(digest, l.model.digest());
            digest = digest_fold(digest, l.handled);
            digest = digest_fold(digest, l.last_time.as_secs());
        }
        EngineReport {
            events,
            makespan,
            digest,
        }
    }

    /// Deliver every buffered cross-lane message, iterating source lanes
    /// in index order (each outbox is already in its lane's processing
    /// order — the same order in every run mode, so target-lane seq
    /// assignment is mode-invariant).
    fn deliver_mail(&mut self) {
        let mut pending: Vec<Mail<M::Ev>> = Vec::new();
        for l in &mut self.lanes {
            pending.append(&mut l.outbox);
        }
        for m in pending {
            self.lanes[m.to as usize].push(m.recv, m.ev);
        }
    }

    /// Earliest pending event time across all lanes (the k-way merge).
    fn next_time(&self) -> Option<SimTime> {
        self.lanes
            .iter()
            .filter_map(|l| l.heap.peek().map(|Reverse(e)| e.time))
            .min()
    }

    /// Run to completion, draining lanes in parallel over a fork-join
    /// budget of `threads` (1 = sequential). Returns mode-invariant
    /// totals.
    pub fn run_sharded(&mut self, threads: usize) -> EngineReport {
        let epoch_s = self.epoch_s;
        while let Some(next) = self.next_time() {
            let epoch_end = SimTime((next.as_secs() / epoch_s + 1) * epoch_s);
            Self::drain_all(&mut self.lanes, threads.max(1), epoch_end, epoch_s);
            self.deliver_mail();
        }
        self.report()
    }

    /// Recursive fork-join drain over the lane slice with an explicit
    /// thread budget: `threads = 1` is exactly the sequential loop, and
    /// larger budgets split deterministically down the middle — the
    /// split points never depend on scheduling, and each half carries
    /// its base lane index so handlers know their lane.
    fn drain_all(lanes: &mut [LaneRt<M>], threads: usize, epoch_end: SimTime, epoch_s: u64) {
        fn rec<M: LaneModel>(
            base: u32,
            lanes: &mut [LaneRt<M>],
            threads: usize,
            epoch_end: SimTime,
            epoch_s: u64,
        ) {
            if threads <= 1 || lanes.len() <= 1 {
                for (i, l) in lanes.iter_mut().enumerate() {
                    l.drain_epoch(base + i as u32, epoch_end, epoch_s);
                }
                return;
            }
            let mid = lanes.len() / 2;
            let (a, b) = lanes.split_at_mut(mid);
            let ta = threads.div_ceil(2);
            let tb = (threads / 2).max(1);
            // fdwlint::allow(raw-parallelism): lanes within an epoch are data-independent (cross-lane mail buffers in per-lane outboxes until the barrier), so any fork-join split produces the same per-lane state bitwise
            rayon::join(
                || rec(base, a, ta, epoch_end, epoch_s),
                || rec(base + mid as u32, b, tb, epoch_end, epoch_s),
            );
        }
        rec(0, lanes, threads, epoch_end, epoch_s);
    }

    /// Run to completion on **one global heap** keyed by the full
    /// `(time, lane, seq)` order — the classic monolithic DES loop, with
    /// the same epoch-barrier mail semantics. This is both the perf
    /// baseline for `des_scaling` and the reference the sharded digest
    /// must match bit-for-bit.
    pub fn run_monolithic(&mut self) -> EngineReport {
        struct GEntry<E> {
            time: SimTime,
            lane: u32,
            seq: u64,
            ev: E,
        }
        impl<E> PartialEq for GEntry<E> {
            fn eq(&self, other: &Self) -> bool {
                (self.time, self.lane, self.seq) == (other.time, other.lane, other.seq)
            }
        }
        impl<E> Eq for GEntry<E> {}
        impl<E> Ord for GEntry<E> {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                (self.time, self.lane, self.seq).cmp(&(other.time, other.lane, other.seq))
            }
        }
        impl<E> PartialOrd for GEntry<E> {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let epoch_s = self.epoch_s;
        let mut heap: BinaryHeap<Reverse<GEntry<M::Ev>>> = BinaryHeap::new();
        for (i, l) in self.lanes.iter_mut().enumerate() {
            while let Some(Reverse(e)) = l.heap.pop() {
                heap.push(Reverse(GEntry {
                    time: e.time,
                    lane: i as u32,
                    seq: e.seq,
                    ev: e.ev,
                }));
            }
        }
        let mut local: Vec<(SimTime, M::Ev)> = Vec::new();
        while let Some(Reverse(head)) = heap.peek() {
            let epoch_end = SimTime((head.time.as_secs() / epoch_s + 1) * epoch_s);
            while let Some(Reverse(head)) = heap.peek() {
                if head.time >= epoch_end {
                    break;
                }
                let Reverse(e) = heap.pop().expect("peeked");
                let l = &mut self.lanes[e.lane as usize];
                l.handled += 1;
                l.last_time = e.time;
                let mut fx = Effects {
                    lane: e.lane,
                    now: e.time,
                    epoch_s,
                    local: &mut local,
                    mail: &mut l.outbox,
                };
                l.model.handle(e.time, e.ev, &mut fx);
                for (t, ev) in local.drain(..) {
                    heap.push(Reverse(GEntry {
                        time: t,
                        lane: e.lane,
                        seq: l.seq,
                        ev,
                    }));
                    l.seq += 1;
                }
            }
            // Barrier: deliver outboxes in lane order, assigning target
            // lane seqs exactly as `deliver_mail` does.
            let mut pending: Vec<Mail<M::Ev>> = Vec::new();
            for l in &mut self.lanes {
                pending.append(&mut l.outbox);
            }
            for m in pending {
                let l = &mut self.lanes[m.to as usize];
                heap.push(Reverse(GEntry {
                    time: m.recv,
                    lane: m.to,
                    seq: l.seq,
                    ev: m.ev,
                }));
                l.seq += 1;
            }
        }
        self.report()
    }
}

/// Configuration of the synthetic federated pool used by the
/// `des_scaling` bench and the differential tests: `lanes` machine
/// groups with `slots_per_lane` slots each, `jobs_per_lane` jobs whose
/// arrivals spread over `arrival_horizon_s`.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Machine-group lanes.
    pub lanes: u32,
    /// Execution slots per lane.
    pub slots_per_lane: u32,
    /// Jobs arriving per lane.
    pub jobs_per_lane: u32,
    /// Arrival window in seconds.
    pub arrival_horizon_s: u64,
    /// Median job runtime in seconds.
    pub median_runtime_s: f64,
    /// Epoch width in seconds (also the minimum cross-lane latency).
    pub epoch_s: u64,
    /// RNG base seed (lane streams split via [`lane_seed`]).
    pub seed: u64,
    /// Queue depth beyond which a lane sheds arriving jobs to a
    /// neighbour lane (cross-shard migration traffic). 0 = never.
    pub shed_depth: usize,
}

impl SynthConfig {
    /// The reduced-scale smoke shape (CI-friendly).
    pub fn smoke() -> Self {
        SynthConfig {
            lanes: 16,
            slots_per_lane: 64,
            jobs_per_lane: 500,
            arrival_horizon_s: 2_000,
            median_runtime_s: 300.0,
            epoch_s: 60,
            seed: 7,
            shed_depth: 32,
        }
    }

    /// The paper-scale shape: 10^5 slots, 10^6 jobs.
    pub fn full() -> Self {
        SynthConfig {
            lanes: 64,
            slots_per_lane: 1_563, // 64 × 1563 ≈ 10^5 slots
            jobs_per_lane: 15_625, // 64 × 15625 = 10^6 jobs
            arrival_horizon_s: 4_000,
            median_runtime_s: 600.0,
            epoch_s: 60,
            seed: 7,
            shed_depth: 256,
        }
    }
}

/// Synthetic pool events.
#[derive(Debug, Clone, Copy)]
pub enum SynthEv {
    /// A job (with `work` seconds of runtime) arrives on the lane.
    Arrive {
        /// Runtime in seconds.
        work: u32,
    },
    /// A running job finishes, freeing a slot.
    Done,
    /// Stale wall-time guard (usually a no-op by the time it fires) —
    /// kept in the heap to model the timeout-event pressure a real
    /// HTCondor queue carries.
    Stale,
}

/// One synthetic machine-group lane.
pub struct SynthLane {
    lane: u32,
    n_lanes: u32,
    slots_free: u32,
    idle: VecDeque<u32>,
    rng: StdRng,
    digest: u64,
    shed_depth: usize,
    /// Jobs completed on this lane.
    pub completed: u64,
    /// Jobs shed to a neighbour lane (cross-shard migrations).
    pub migrated_out: u64,
}

impl SynthLane {
    fn start(&mut self, now: SimTime, work: u32, fx: &mut Effects<SynthEv>) {
        self.slots_free -= 1;
        fx.schedule(u64::from(work).max(1), SynthEv::Done);
        // The wall-time guard outlives the job by 4x: by the time it
        // fires the attempt is long gone, but it sat in the heap the
        // whole while — the stale-event pressure of a real queue.
        fx.schedule((u64::from(work) * 4).max(4), SynthEv::Stale);
        self.digest = digest_fold(self.digest, now.as_secs() ^ (u64::from(work) << 32));
    }
}

impl LaneModel for SynthLane {
    type Ev = SynthEv;

    fn handle(&mut self, now: SimTime, ev: SynthEv, fx: &mut Effects<SynthEv>) {
        match ev {
            SynthEv::Arrive { work } => {
                self.digest = digest_fold(self.digest, 0xA55 ^ u64::from(work));
                if self.slots_free > 0 {
                    self.start(now, work, fx);
                } else if self.shed_depth > 0
                    && self.n_lanes > 1
                    && self.idle.len() >= self.shed_depth
                {
                    // Load-shed to a pseudo-random neighbour: the draw
                    // comes from the lane-local stream, so the choice is
                    // identical in every run mode.
                    let span = u64::from(self.n_lanes - 1);
                    let pick = (lognormal_median(&mut self.rng, 1.0, 0.5) * 1e6) as u64 % span;
                    let to = (self.lane + 1 + pick as u32) % self.n_lanes;
                    self.migrated_out += 1;
                    self.digest = digest_fold(self.digest, 0x316 ^ u64::from(to));
                    fx.send(to, 30, SynthEv::Arrive { work });
                } else {
                    self.idle.push_back(work);
                }
            }
            SynthEv::Done => {
                self.completed += 1;
                self.slots_free += 1;
                self.digest = digest_fold(self.digest, 0xD00E ^ now.as_secs());
                if let Some(work) = self.idle.pop_front() {
                    self.start(now, work, fx);
                }
            }
            SynthEv::Stale => {
                self.digest = digest_fold(self.digest, 0x57A1E);
            }
        }
    }

    fn digest(&self) -> u64 {
        digest_fold(digest_fold(self.digest, self.completed), self.migrated_out)
    }
}

/// Build the synthetic engine: one lane per machine group, per-lane RNG
/// streams split from `cfg.seed`, arrivals pre-scheduled over the
/// horizon. Identical construction every call — the bench builds one
/// engine per run mode and compares digests.
pub fn synth_engine(cfg: &SynthConfig) -> ShardedEngine<SynthLane> {
    let models = (0..cfg.lanes)
        .map(|lane| SynthLane {
            lane,
            n_lanes: cfg.lanes,
            slots_free: cfg.slots_per_lane,
            idle: VecDeque::new(),
            rng: StdRng::seed_from_u64(lane_seed(cfg.seed, lane)),
            digest: DIGEST_INIT,
            shed_depth: cfg.shed_depth,
            completed: 0,
            migrated_out: 0,
        })
        .collect();
    let mut engine = ShardedEngine::new(models, cfg.epoch_s);
    for lane in 0..cfg.lanes {
        // A separate arrival stream per lane, split from the same base
        // seed, so seeding order inside a lane is fixed forever.
        let mut rng = StdRng::seed_from_u64(lane_seed(cfg.seed ^ 0x0A11_1BA1, lane));
        for _ in 0..cfg.jobs_per_lane {
            let t = (lognormal_median(&mut rng, cfg.arrival_horizon_s as f64 / 2.0, 0.8) as u64)
                .min(cfg.arrival_horizon_s);
            let work = lognormal_median(&mut rng, cfg.median_runtime_s, 0.6).max(1.0) as u32;
            engine.seed_event(lane, SimTime(t), SynthEv::Arrive { work });
        }
    }
    engine
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SynthConfig {
        SynthConfig {
            lanes: 8,
            slots_per_lane: 4,
            jobs_per_lane: 120,
            arrival_horizon_s: 600,
            median_runtime_s: 90.0,
            epoch_s: 30,
            seed: 11,
            shed_depth: 6,
        }
    }

    #[test]
    fn monolithic_equals_sharded_at_every_thread_count() {
        let cfg = small();
        let mono = synth_engine(&cfg).run_monolithic();
        assert!(mono.events > 0);
        for threads in [1, 2, 4, 8] {
            let got = synth_engine(&cfg).run_sharded(threads);
            assert_eq!(got, mono, "threads={threads}");
        }
    }

    #[test]
    fn all_jobs_complete_and_migrations_happen() {
        let cfg = small();
        let mut engine = synth_engine(&cfg);
        engine.run_sharded(2);
        let completed: u64 = engine.models().map(|m| m.completed).sum();
        let migrated: u64 = engine.models().map(|m| m.migrated_out).sum();
        assert_eq!(
            completed,
            u64::from(cfg.lanes) * u64::from(cfg.jobs_per_lane),
            "every arrival must eventually complete (migrations included)"
        );
        assert!(migrated > 0, "the shed path must be exercised");
    }

    #[test]
    fn lane_count_changes_the_workload_but_each_is_internally_deterministic() {
        let a = synth_engine(&small()).run_sharded(1);
        let b = synth_engine(&small()).run_sharded(1);
        assert_eq!(a, b);
        let mut wider = small();
        wider.lanes = 16;
        let c = synth_engine(&wider).run_sharded(1);
        assert_ne!(a.digest, c.digest, "lanes are part of the scenario");
    }

    #[test]
    fn cross_lane_sends_respect_the_epoch_boundary() {
        // A message sent at t lands at >= the next multiple of epoch_s.
        struct Echo {
            lane: u32,
            recv_times: Vec<u64>,
        }
        #[derive(Clone, Copy)]
        enum Ev {
            Ping,
            Pong,
        }
        impl LaneModel for Echo {
            type Ev = Ev;
            fn handle(&mut self, now: SimTime, ev: Ev, fx: &mut Effects<Ev>) {
                match ev {
                    Ev::Ping => fx.send(1 - self.lane, 5, Ev::Pong),
                    Ev::Pong => self.recv_times.push(now.as_secs()),
                }
            }
            fn digest(&self) -> u64 {
                self.recv_times
                    .iter()
                    .fold(DIGEST_INIT, |h, &t| digest_fold(h, t))
            }
        }
        let models = vec![
            Echo {
                lane: 0,
                recv_times: vec![],
            },
            Echo {
                lane: 1,
                recv_times: vec![],
            },
        ];
        let mut engine = ShardedEngine::new(models, 100);
        engine.seed_event(0, SimTime(10), Ev::Ping);
        engine.seed_event(1, SimTime(150), Ev::Ping);
        engine.run_sharded(2);
        let lanes: Vec<&Echo> = engine.models().collect();
        // Ping at t=10 (epoch [0,100)): pong clamps to the boundary 100.
        assert_eq!(lanes[1].recv_times, vec![100]);
        // Ping at t=150 (epoch [100,200)): 150+5 clamps to 200.
        assert_eq!(lanes[0].recv_times, vec![200]);
    }
}
