//! The discrete-event queue: a time-ordered heap with a deterministic
//! tie-break sequence number, so identical seeds replay identical runs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::job::JobId;
use crate::pool::MachineId;
use crate::time::SimTime;

/// Everything that can happen in the cluster simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A glidein group joins the pool.
    MachineArrive,
    /// Glidein `0` leaves the pool (evicting its jobs).
    MachineDepart(MachineId),
    /// The negotiator runs a matchmaking cycle.
    Negotiate,
    /// Input staging for a job finished; it starts executing.
    StageInDone(JobId),
    /// A job's executable finished; output staging starts.
    ExecDone(JobId),
    /// Output staging finished; the job is complete.
    StageOutDone(JobId),
    /// A held job's hold period expired; release it back to Idle. The
    /// `u64` is the job serial at hold time — a stale release (the job
    /// moved on) is ignored.
    Release(JobId, u64),
    /// A running job hit its wall-time limit; hold then remove it. The
    /// `u64` is the job serial at execute time — stale timeouts (the
    /// attempt already ended) are ignored.
    Timeout(JobId, u64),
    /// A whole-pool outage window opens for the given pool index.
    PoolOutageStart(u32),
    /// The outage window for the given pool index closes.
    PoolOutageEnd(u32),
    /// A network partition cuts the given pool off from the submit node.
    PartitionStart(u32),
    /// The partition for the given pool index heals.
    PartitionEnd(u32),
    /// Spot reclamation kills a running cloud-pool job mid-attempt. The
    /// `u64` is the job serial at execute time — stale preemptions (the
    /// attempt already ended) are ignored.
    Preempt(JobId, u64),
}

#[derive(Debug, PartialEq, Eq)]
struct Entry {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Entry>>,
    seq: u64,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), Event::Negotiate);
        q.push(SimTime(10), Event::MachineArrive);
        q.push(SimTime(20), Event::ExecDone(JobId(1)));
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(SimTime(10)));
        assert_eq!(q.pop().unwrap().0, SimTime(10));
        assert_eq!(q.pop().unwrap().0, SimTime(20));
        assert_eq!(q.pop().unwrap().0, SimTime(30));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), Event::StageInDone(JobId(1)));
        q.push(SimTime(5), Event::StageInDone(JobId(2)));
        q.push(SimTime(5), Event::StageInDone(JobId(3)));
        let order: Vec<Event> = std::iter::from_fn(|| q.pop().map(|p| p.1)).collect();
        assert_eq!(
            order,
            vec![
                Event::StageInDone(JobId(1)),
                Event::StageInDone(JobId(2)),
                Event::StageInDone(JobId(3)),
            ]
        );
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), Event::Negotiate);
        assert_eq!(q.pop().unwrap().0, SimTime(10));
        q.push(SimTime(4), Event::Negotiate);
        q.push(SimTime(2), Event::MachineArrive);
        assert_eq!(q.pop().unwrap().1, Event::MachineArrive);
        assert_eq!(q.pop().unwrap().1, Event::Negotiate);
    }
}
