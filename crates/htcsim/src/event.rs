//! The discrete-event queue: sharded, lane-aware, and deterministic.
//!
//! Events live on **logical lanes** (one per federated pool plus a
//! control lane, see [`LaneId`]); lanes are stored across one or more
//! **physical shards** (per-lane binary heaps grouped by `lane % shards`)
//! and popped through a k-way merge on the explicit total order
//!
//! ```text
//!   (timestamp, lane_id, per-lane sequence number)
//! ```
//!
//! That key — [`EventKey`] — is the determinism contract of the whole
//! simulator: same pushes, same pops, *regardless of the shard count*,
//! because the key never mentions shards. Same-timestamp ties break by
//! lane, then by per-lane insertion order; nothing is left to heap
//! internals or hasher state. The golden ULOG fixtures are pinned by
//! this contract, not by accident of `BinaryHeap` sift order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::job::JobId;
use crate::pool::MachineId;
use crate::time::SimTime;

/// A logical event lane. Lane 0 is the control lane (matchmaker,
/// glidein churn, pool-level fault windows); federated runs place each
/// pool's job-lifecycle events on lane `pool + 1`, single-pool runs use
/// lane 1 for every job event. Lanes are a property of the *scenario*,
/// never of the shard count, so the merge order is shard-invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LaneId(pub u32);

impl LaneId {
    /// The control lane: negotiation cycles, machine churn and
    /// pool-granularity fault windows.
    pub const CONTROL: LaneId = LaneId(0);
}

/// The explicit total-order key of one scheduled event.
///
/// Keys are unique within a queue (the `seq` counter is per-lane and
/// never reused), so `cmp` is a *strict* total order: for any two
/// distinct scheduled events one strictly precedes the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey {
    /// Absolute simulation time of the event.
    pub time: SimTime,
    /// Logical lane the event belongs to.
    pub lane: LaneId,
    /// Per-lane insertion sequence number.
    pub seq: u64,
}

impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.lane, self.seq).cmp(&(other.time, other.lane, other.seq))
    }
}

impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Everything that can happen in the cluster simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A glidein group joins the pool.
    MachineArrive,
    /// Glidein `0` leaves the pool (evicting its jobs).
    MachineDepart(MachineId),
    /// The negotiator runs a matchmaking cycle.
    Negotiate,
    /// Input staging for a job finished; it starts executing.
    StageInDone(JobId),
    /// A job's executable finished; output staging starts.
    ExecDone(JobId),
    /// Output staging finished; the job is complete.
    StageOutDone(JobId),
    /// A held job's hold period expired; release it back to Idle. The
    /// `u64` is the job serial at hold time — a stale release (the job
    /// moved on) is ignored.
    Release(JobId, u64),
    /// A running job hit its wall-time limit; hold then remove it. The
    /// `u64` is the job serial at execute time — stale timeouts (the
    /// attempt already ended) are ignored.
    Timeout(JobId, u64),
    /// A whole-pool outage window opens for the given pool index.
    PoolOutageStart(u32),
    /// The outage window for the given pool index closes.
    PoolOutageEnd(u32),
    /// A network partition cuts the given pool off from the submit node.
    PartitionStart(u32),
    /// The partition for the given pool index heals.
    PartitionEnd(u32),
    /// Spot reclamation kills a running cloud-pool job mid-attempt. The
    /// `u64` is the job serial at execute time — stale preemptions (the
    /// attempt already ended) are ignored.
    Preempt(JobId, u64),
}

#[derive(Debug)]
struct Entry {
    key: EventKey,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic sharded event queue.
///
/// One binary heap per shard; lanes map onto shards by `lane % shards`.
/// Pops perform a k-way merge across shard heads under the full
/// [`EventKey`] order, so the pop sequence is a pure function of the
/// push sequence — independent of how many shards store it.
#[derive(Debug)]
pub struct EventQueue {
    shards: Vec<BinaryHeap<Reverse<Entry>>>,
    /// Per-lane sequence counters, indexed by lane id (grown on demand).
    lane_seq: Vec<u64>,
    len: usize,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::with_shards(1)
    }
}

impl EventQueue {
    /// Create an empty single-shard queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty queue spread over `shards` physical heaps
    /// (clamped to at least one).
    pub fn with_shards(shards: usize) -> Self {
        EventQueue {
            shards: (0..shards.max(1)).map(|_| BinaryHeap::new()).collect(),
            lane_seq: Vec::new(),
            len: 0,
        }
    }

    /// Number of physical shards backing the queue.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, lane: LaneId) -> usize {
        lane.0 as usize % self.shards.len()
    }

    /// Schedule `event` at absolute time `time` on the control lane.
    pub fn push(&mut self, time: SimTime, event: Event) -> EventKey {
        self.push_lane(time, LaneId::CONTROL, event)
    }

    /// Schedule `event` at absolute time `time` on `lane`, returning the
    /// total-order key it was assigned.
    pub fn push_lane(&mut self, time: SimTime, lane: LaneId, event: Event) -> EventKey {
        let idx = lane.0 as usize;
        if idx >= self.lane_seq.len() {
            self.lane_seq.resize(idx + 1, 0);
        }
        let seq = self.lane_seq[idx];
        self.lane_seq[idx] += 1;
        let key = EventKey { time, lane, seq };
        let shard = self.shard_of(lane);
        self.shards[shard].push(Reverse(Entry { key, event }));
        self.len += 1;
        key
    }

    /// Index of the shard holding the globally smallest key, if any.
    fn min_shard(&self) -> Option<usize> {
        let mut best: Option<(usize, EventKey)> = None;
        for (i, heap) in self.shards.iter().enumerate() {
            if let Some(Reverse(e)) = heap.peek() {
                if best.map(|(_, k)| e.key < k).unwrap_or(true) {
                    best = Some((i, e.key));
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Pop the earliest event together with its key.
    pub fn pop_keyed(&mut self) -> Option<(EventKey, Event)> {
        let shard = self.min_shard()?;
        let Reverse(e) = self.shards[shard].pop().expect("peeked shard is non-empty");
        self.len -= 1;
        Some((e.key, e.event))
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.pop_keyed().map(|(k, ev)| (k.time, ev))
    }

    /// Key of the earliest pending event.
    pub fn peek_key(&self) -> Option<EventKey> {
        self.min_shard()
            .and_then(|s| self.shards[s].peek().map(|Reverse(e)| e.key))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.peek_key().map(|k| k.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), Event::Negotiate);
        q.push(SimTime(10), Event::MachineArrive);
        q.push(SimTime(20), Event::ExecDone(JobId(1)));
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(SimTime(10)));
        assert_eq!(q.pop().unwrap().0, SimTime(10));
        assert_eq!(q.pop().unwrap().0, SimTime(20));
        assert_eq!(q.pop().unwrap().0, SimTime(30));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_lane_then_insertion_order() {
        // The explicit contract: same-time events pop by (lane, seq),
        // not by heap sift order or global insertion order.
        let mut q = EventQueue::new();
        q.push_lane(SimTime(5), LaneId(2), Event::StageInDone(JobId(20)));
        q.push_lane(SimTime(5), LaneId(1), Event::StageInDone(JobId(10)));
        q.push_lane(SimTime(5), LaneId(1), Event::StageInDone(JobId(11)));
        q.push_lane(SimTime(5), LaneId(0), Event::Negotiate);
        let order: Vec<Event> = std::iter::from_fn(|| q.pop().map(|p| p.1)).collect();
        assert_eq!(
            order,
            vec![
                Event::Negotiate,
                Event::StageInDone(JobId(10)),
                Event::StageInDone(JobId(11)),
                Event::StageInDone(JobId(20)),
            ]
        );
    }

    #[test]
    fn same_lane_ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), Event::StageInDone(JobId(1)));
        q.push(SimTime(5), Event::StageInDone(JobId(2)));
        q.push(SimTime(5), Event::StageInDone(JobId(3)));
        let order: Vec<Event> = std::iter::from_fn(|| q.pop().map(|p| p.1)).collect();
        assert_eq!(
            order,
            vec![
                Event::StageInDone(JobId(1)),
                Event::StageInDone(JobId(2)),
                Event::StageInDone(JobId(3)),
            ]
        );
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), Event::Negotiate);
        assert_eq!(q.pop().unwrap().0, SimTime(10));
        q.push(SimTime(4), Event::Negotiate);
        q.push(SimTime(2), Event::MachineArrive);
        assert_eq!(q.pop().unwrap().1, Event::MachineArrive);
        assert_eq!(q.pop().unwrap().1, Event::Negotiate);
    }

    #[test]
    fn pop_order_is_invariant_to_shard_count() {
        // The same push sequence, spread over 1/2/4/16 shards, must pop
        // identically: the key never mentions shards.
        let pushes: Vec<(u64, u32, Event)> = (0..200)
            .map(|i| {
                let t = (i * 7) % 23;
                let lane = (i * 13) % 5;
                (t, lane as u32, Event::StageInDone(JobId(i)))
            })
            .collect();
        let run = |shards: usize| -> Vec<(EventKey, Event)> {
            let mut q = EventQueue::with_shards(shards);
            for &(t, lane, ev) in &pushes {
                q.push_lane(SimTime(t), LaneId(lane), ev);
            }
            std::iter::from_fn(|| q.pop_keyed()).collect()
        };
        let baseline = run(1);
        for shards in [2, 4, 16] {
            assert_eq!(run(shards), baseline, "shards={shards}");
        }
        // And the merged stream really is sorted by the full key.
        assert!(baseline.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn lane_seq_counters_are_independent() {
        let mut q = EventQueue::with_shards(3);
        let a = q.push_lane(SimTime(1), LaneId(4), Event::Negotiate);
        let b = q.push_lane(SimTime(1), LaneId(9), Event::Negotiate);
        let c = q.push_lane(SimTime(1), LaneId(4), Event::Negotiate);
        assert_eq!(a.seq, 0);
        assert_eq!(b.seq, 0);
        assert_eq!(c.seq, 1);
        assert_eq!(q.num_shards(), 3);
    }
}
