//! Deterministic fault injection for the simulated pool.
//!
//! Real OSPool campaigns fail in recognisable ways: jobs exit non-zero
//! (transiently or every time), "black hole" machines match quickly and
//! kill everything they run, file transfers to/from the origin break,
//! and the schedd puts jobs on hold. The FDW paper's workflows survive
//! these through DAGMan retries and rescue DAGs; this module gives the
//! simulator the same adversities so that machinery can be exercised.
//!
//! All decisions come from a stateless counter-free hash of
//! `(seed, domain, key, salt)`, so a [`FaultPlan`] is a pure function:
//! the same plan asked the same question always gives the same answer,
//! regardless of event ordering. That is what makes chaos campaigns
//! replayable — and what lets a rescue-DAG re-run see the *same* world.

/// Exit code used for transient (retry-curable) job failures.
pub const EXIT_TRANSIENT: i32 = 1;
/// Exit code used for permanent (every-attempt) job failures.
pub const EXIT_PERMANENT: i32 = 2;
/// Exit code used when a black-hole machine kills a job.
pub const EXIT_BLACK_HOLE: i32 = 3;
/// Exit code used when a job consumed a silently corrupted cache entry
/// (only reachable with checksum verification disabled — the defense
/// detects the corruption at stage-in instead).
pub const EXIT_CORRUPT: i32 = 4;

/// Seconds a black-hole machine takes to kill a job: they fail *fast*,
/// which is exactly why they eat a disproportionate share of matches.
pub const BLACK_HOLE_FAIL_S: f64 = 30.0;

/// Why a job was put on hold (the `HoldReason` in a real 012 event).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HoldReason {
    /// Transfer of input files from the origin failed.
    TransferInputError,
    /// Transfer of output files back to the origin failed.
    TransferOutputError,
    /// The job exceeded its allowed wall time (`periodic_hold`).
    WallTimeExceeded,
    /// Administrative/policy hold (the catch-all bucket).
    PolicyHold,
    /// A staged-in file failed checksum verification (corrupted cache
    /// entry detected by the verify-on-read defense).
    ChecksumMismatch,
}

impl HoldReason {
    /// The reason string written into the 012 log event.
    pub fn text(self) -> &'static str {
        match self {
            HoldReason::TransferInputError => "Transfer input files failure",
            HoldReason::TransferOutputError => "Transfer output files failure",
            HoldReason::WallTimeExceeded => "Job exceeded allowed walltime",
            HoldReason::PolicyHold => "Policy hold",
            HoldReason::ChecksumMismatch => "Transfer checksum validation failed",
        }
    }

    /// Snake-case label used in metric names (`pool.holds.<key>`).
    pub fn key(self) -> &'static str {
        match self {
            HoldReason::TransferInputError => "transfer_input",
            HoldReason::TransferOutputError => "transfer_output",
            HoldReason::WallTimeExceeded => "walltime",
            HoldReason::PolicyHold => "policy",
            HoldReason::ChecksumMismatch => "checksum",
        }
    }

    /// Inverse of [`HoldReason::text`].
    pub fn parse(text: &str) -> Option<HoldReason> {
        match text {
            "Transfer input files failure" => Some(HoldReason::TransferInputError),
            "Transfer output files failure" => Some(HoldReason::TransferOutputError),
            "Job exceeded allowed walltime" => Some(HoldReason::WallTimeExceeded),
            "Policy hold" => Some(HoldReason::PolicyHold),
            "Transfer checksum validation failed" => Some(HoldReason::ChecksumMismatch),
            _ => None,
        }
    }
}

/// Knobs for the injected fault mix. All probabilities are per-decision
/// and in `[0, 1]`; everything defaults to zero (no faults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault schedule. Independent of the cluster seed, so
    /// the same fault world can be replayed under different pools.
    pub seed: u64,
    /// Probability that any single execution attempt exits non-zero
    /// with [`EXIT_TRANSIENT`] (succeeds when retried elsewhere/later).
    pub transient_exit_prob: f64,
    /// Fraction of job *names* that fail with [`EXIT_PERMANENT`] on
    /// every attempt — the bug-in-the-code failure retries cannot cure.
    pub permanent_job_fraction: f64,
    /// Fraction of machines that are black holes: matched jobs die
    /// after [`BLACK_HOLE_FAIL_S`] with [`EXIT_BLACK_HOLE`].
    pub black_hole_fraction: f64,
    /// Probability that a stage-in or stage-out transfer fails, putting
    /// the job on hold with a transfer hold reason.
    pub transfer_fail_prob: f64,
    /// Probability that a matched job is held at execute time for
    /// policy reasons ([`HoldReason::PolicyHold`]).
    pub hold_prob: f64,
    /// Probability that a cacheable file lands in a site cache silently
    /// corrupted. Each (site, file, insert-generation) rolls once, so a
    /// re-fetch after quarantine rolls fresh.
    pub corrupt_prob: f64,
    /// Seconds a held job waits before it is automatically released
    /// back to the idle queue.
    pub hold_release_s: f64,
    /// Pool-granularity fault classes (outage windows, partitions, spot
    /// preemption); only active when the cluster runs a federation.
    pub pool: PoolFaultConfig,
}

/// Pool-granularity fault classes: whole-pool outage windows, network
/// partitions between a pool and the submit node, and spot-reclamation
/// preemption in the cloud pool. Everything defaults to zero/off.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PoolFaultConfig {
    /// Pool index hit by the outage window.
    pub outage_pool: u32,
    /// Sim-time the outage starts, seconds.
    pub outage_start_s: f64,
    /// Outage length, seconds (0 disables the outage).
    pub outage_duration_s: f64,
    /// Pool index cut off by the network partition.
    pub partition_pool: u32,
    /// Sim-time the partition starts, seconds.
    pub partition_start_s: f64,
    /// Partition length, seconds (0 disables the partition).
    pub partition_duration_s: f64,
    /// Probability that one execution attempt in the cloud pool is
    /// reclaimed mid-run (spot preemption).
    pub preempt_prob: f64,
}

impl PoolFaultConfig {
    /// True when any pool-level fault class is live.
    pub fn any_enabled(&self) -> bool {
        self.outage_duration_s > 0.0 || self.partition_duration_s > 0.0 || self.preempt_prob > 0.0
    }

    /// Validate ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.preempt_prob) {
            return Err(format!(
                "preempt_prob must be in [0, 1], got {}",
                self.preempt_prob
            ));
        }
        for (name, v) in [
            ("outage_start_s", self.outage_start_s),
            ("outage_duration_s", self.outage_duration_s),
            ("partition_start_s", self.partition_start_s),
            ("partition_duration_s", self.partition_duration_s),
        ] {
            if v < 0.0 {
                return Err(format!("{name} must be non-negative, got {v}"));
            }
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            transient_exit_prob: 0.0,
            permanent_job_fraction: 0.0,
            black_hole_fraction: 0.0,
            transfer_fail_prob: 0.0,
            hold_prob: 0.0,
            corrupt_prob: 0.0,
            hold_release_s: 600.0,
            pool: PoolFaultConfig::default(),
        }
    }
}

impl FaultConfig {
    /// True when any fault class has a non-zero probability.
    pub fn any_enabled(&self) -> bool {
        self.transient_exit_prob > 0.0
            || self.permanent_job_fraction > 0.0
            || self.black_hole_fraction > 0.0
            || self.transfer_fail_prob > 0.0
            || self.hold_prob > 0.0
            || self.corrupt_prob > 0.0
            || self.pool.any_enabled()
    }

    /// Validate the probability ranges.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("transient_exit_prob", self.transient_exit_prob),
            ("permanent_job_fraction", self.permanent_job_fraction),
            ("black_hole_fraction", self.black_hole_fraction),
            ("transfer_fail_prob", self.transfer_fail_prob),
            ("hold_prob", self.hold_prob),
            ("corrupt_prob", self.corrupt_prob),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        if self.hold_prob > 0.0 && self.hold_release_s <= 0.0 {
            return Err("hold_release_s must be positive when hold_prob > 0".into());
        }
        self.pool.validate()
    }
}

/// The realised fault schedule: answers "does fault X hit decision Y?"
/// deterministically from the config seed.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

/// FNV-1a over a byte slice, folded into a running state.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finaliser: turns the structured FNV state into
/// well-mixed bits suitable for a uniform draw.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Split an independent per-lane RNG seed off a base seed.
///
/// Sharded event lanes each carry their own random stream; splitting
/// them through splitmix64 (rather than `seed + lane`) keeps streams
/// statistically independent, and deriving them from the *base* seed
/// (never the shard count) means re-sharding a run does not change a
/// single draw — the determinism contract of the sharded engine.
pub fn lane_seed(seed: u64, lane: u32) -> u64 {
    let h = fnv1a(0xcbf2_9ce4_8422_2325u64 ^ seed, b"lane");
    mix(fnv1a(h, &u64::from(lane).to_le_bytes()))
}

impl FaultPlan {
    /// Build the plan for a fault configuration.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan { cfg }
    }

    /// Per-lane RNG seed split from this plan's fault seed (see
    /// [`lane_seed`]). Lane-local state machines (the sharded DES
    /// engine, per-pool noise sources) seed their streams here so the
    /// draw sequence is a function of `(fault seed, lane)` only.
    pub fn lane_seed(&self, lane: u32) -> u64 {
        lane_seed(self.cfg.seed, lane)
    }

    /// The configuration this plan realises.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// True when the plan can inject anything at all (fast-path guard).
    pub fn any_enabled(&self) -> bool {
        self.cfg.any_enabled()
    }

    /// Uniform `[0, 1)` draw for `(domain, key, salt)` under this seed.
    fn draw(&self, domain: &str, key: &str, salt: u64) -> f64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.cfg.seed;
        h = fnv1a(h, domain.as_bytes());
        h = fnv1a(h, &[0xff]);
        h = fnv1a(h, key.as_bytes());
        h = fnv1a(h, &salt.to_le_bytes());
        // 53 high-quality bits → uniform double in [0, 1).
        (mix(h) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn chance(&self, domain: &str, key: &str, salt: u64, p: f64) -> bool {
        p > 0.0 && self.draw(domain, key, salt) < p
    }

    /// Is this machine a black hole?
    pub fn is_black_hole(&self, machine: u64) -> bool {
        self.chance("black-hole", "", machine, self.cfg.black_hole_fraction)
    }

    /// Exit code (if any) for one execution attempt of job `name`.
    ///
    /// Permanent failures key on the name alone so every attempt fails;
    /// transient failures key on `(name, attempt salt)` so a retry can
    /// land differently.
    pub fn exec_exit(&self, name: &str, salt: u64) -> Option<i32> {
        if self.chance("permanent", name, 0, self.cfg.permanent_job_fraction) {
            return Some(EXIT_PERMANENT);
        }
        if self.chance("transient", name, salt, self.cfg.transient_exit_prob) {
            return Some(EXIT_TRANSIENT);
        }
        None
    }

    /// Does the stage-in transfer for this attempt fail?
    pub fn stage_in_fails(&self, name: &str, salt: u64) -> bool {
        self.chance("stage-in", name, salt, self.cfg.transfer_fail_prob)
    }

    /// Does the stage-out transfer for this attempt fail?
    pub fn stage_out_fails(&self, name: &str, salt: u64) -> bool {
        self.chance("stage-out", name, salt, self.cfg.transfer_fail_prob)
    }

    /// Is the copy of `file` inserted into `site`'s cache at this insert
    /// `generation` silently corrupted? Keyed per insertion, so a fresh
    /// origin re-fetch after a quarantine rolls a new (usually clean)
    /// copy.
    pub fn cache_corrupts(&self, site: u32, file: &str, generation: u64) -> bool {
        let salt = (site as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(generation);
        self.chance("corrupt", file, salt, self.cfg.corrupt_prob)
    }

    /// Is this execution attempt in the cloud pool reclaimed mid-run?
    pub fn preempts(&self, name: &str, salt: u64) -> bool {
        self.chance("preempt", name, salt, self.cfg.pool.preempt_prob)
    }

    /// Fraction of the attempt's runtime that elapses before the
    /// reclamation lands, in `[0.1, 0.9)` — late enough that work is
    /// lost, early enough that the job never finishes.
    pub fn preempt_frac(&self, name: &str, salt: u64) -> f64 {
        0.1 + 0.8 * self.draw("preempt-frac", name, salt)
    }

    /// Policy hold (if any) for this attempt.
    pub fn hold(&self, name: &str, salt: u64) -> Option<HoldReason> {
        if self.chance("hold", name, salt, self.cfg.hold_prob) {
            Some(HoldReason::PolicyHold)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(mutate: impl FnOnce(&mut FaultConfig)) -> FaultPlan {
        let mut cfg = FaultConfig {
            seed: 42,
            ..Default::default()
        };
        mutate(&mut cfg);
        FaultPlan::new(cfg)
    }

    #[test]
    fn default_config_injects_nothing() {
        let p = FaultPlan::new(FaultConfig::default());
        assert!(!p.any_enabled());
        for i in 0..100 {
            assert!(!p.is_black_hole(i));
            assert_eq!(p.exec_exit("waveform.3", i), None);
            assert!(!p.stage_in_fails("waveform.3", i));
            assert!(!p.stage_out_fails("waveform.3", i));
            assert_eq!(p.hold("waveform.3", i), None);
            assert!(!p.cache_corrupts(3, "gf.mseed", i));
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = plan(|c| c.transient_exit_prob = 0.5);
        let b = plan(|c| c.transient_exit_prob = 0.5);
        let other = FaultPlan::new(FaultConfig {
            seed: 43,
            transient_exit_prob: 0.5,
            ..Default::default()
        });
        let answers: Vec<bool> = (0..64)
            .map(|i| a.exec_exit("rupture.0", i).is_some())
            .collect();
        let again: Vec<bool> = (0..64)
            .map(|i| b.exec_exit("rupture.0", i).is_some())
            .collect();
        let differently: Vec<bool> = (0..64)
            .map(|i| other.exec_exit("rupture.0", i).is_some())
            .collect();
        assert_eq!(answers, again);
        assert_ne!(answers, differently, "a new seed must reshuffle faults");
    }

    #[test]
    fn probabilities_are_roughly_honoured() {
        let p = plan(|c| c.transient_exit_prob = 0.3);
        let hits = (0..2000)
            .filter(|&i| p.exec_exit(&format!("job.{i}"), 0).is_some())
            .count();
        assert!((400..800).contains(&hits), "expected ~600 hits, got {hits}");
    }

    #[test]
    fn permanent_failures_ignore_the_attempt() {
        let p = plan(|c| c.permanent_job_fraction = 0.5);
        let doomed: Vec<&str> = ["a", "b", "c", "d", "e", "f", "g", "h"]
            .into_iter()
            .filter(|n| p.exec_exit(n, 0) == Some(EXIT_PERMANENT))
            .collect();
        assert!(!doomed.is_empty(), "half the names should be doomed");
        for name in doomed {
            for attempt in 0..32 {
                assert_eq!(p.exec_exit(name, attempt), Some(EXIT_PERMANENT));
            }
        }
    }

    #[test]
    fn fault_domains_are_independent() {
        // A plan with every class at p=1 must report all of them; a plan
        // with only transfers enabled must not leak into exec failures.
        let all = plan(|c| {
            c.transient_exit_prob = 1.0;
            c.transfer_fail_prob = 1.0;
            c.hold_prob = 1.0;
            c.black_hole_fraction = 1.0;
            c.corrupt_prob = 1.0;
        });
        assert!(all.is_black_hole(7));
        assert!(all.stage_in_fails("x", 0) && all.stage_out_fails("x", 0));
        assert_eq!(all.hold("x", 0), Some(HoldReason::PolicyHold));
        assert!(all.cache_corrupts(0, "x", 0));
        let only_transfer = plan(|c| c.transfer_fail_prob = 1.0);
        assert_eq!(only_transfer.exec_exit("x", 0), None);
        assert!(!only_transfer.is_black_hole(7));
        assert!(!only_transfer.cache_corrupts(0, "x", 0));
    }

    #[test]
    fn corruption_rolls_fresh_per_generation() {
        let p = plan(|c| c.corrupt_prob = 0.5);
        let rolls: Vec<bool> = (0..64)
            .map(|g| p.cache_corrupts(1, "gf.mseed", g))
            .collect();
        assert!(rolls.iter().any(|&c| c), "p=0.5 must corrupt sometimes");
        assert!(!rolls.iter().all(|&c| c), "p=0.5 must stay clean sometimes");
        // Same (site, file, generation) is a pure function.
        for (g, &r) in rolls.iter().enumerate() {
            assert_eq!(p.cache_corrupts(1, "gf.mseed", g as u64), r);
        }
        // Sites are independent.
        let other: Vec<bool> = (0..64)
            .map(|g| p.cache_corrupts(2, "gf.mseed", g))
            .collect();
        assert_ne!(rolls, other);
    }

    #[test]
    fn preemption_draws_are_deterministic_and_bounded() {
        let p = plan(|c| c.pool.preempt_prob = 0.5);
        assert!(p.any_enabled());
        let rolls: Vec<bool> = (0..64).map(|s| p.preempts("rupture.0", s)).collect();
        assert!(rolls.iter().any(|&r| r), "p=0.5 must preempt sometimes");
        assert!(!rolls.iter().all(|&r| r), "p=0.5 must spare sometimes");
        for (s, &r) in rolls.iter().enumerate() {
            assert_eq!(p.preempts("rupture.0", s as u64), r);
            let f = p.preempt_frac("rupture.0", s as u64);
            assert!((0.1..0.9).contains(&f), "preempt_frac out of range: {f}");
        }
        let off = FaultPlan::new(FaultConfig::default());
        assert!(!off.preempts("rupture.0", 0));
    }

    #[test]
    fn pool_fault_validate_rejects_bad_knobs() {
        let mut cfg = PoolFaultConfig::default();
        cfg.validate().unwrap();
        assert!(!cfg.any_enabled());
        cfg.preempt_prob = 1.5;
        assert!(cfg.validate().is_err());
        cfg.preempt_prob = 0.2;
        assert!(cfg.any_enabled());
        cfg.outage_start_s = -1.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn hold_reason_text_roundtrip() {
        for r in [
            HoldReason::TransferInputError,
            HoldReason::TransferOutputError,
            HoldReason::WallTimeExceeded,
            HoldReason::PolicyHold,
            HoldReason::ChecksumMismatch,
        ] {
            assert_eq!(HoldReason::parse(r.text()), Some(r));
        }
        assert_eq!(HoldReason::parse("gremlins"), None);
    }

    #[test]
    fn lane_seeds_are_stable_and_pairwise_distinct() {
        // Function of (seed, lane) only — shard count never appears.
        assert_eq!(lane_seed(9, 0), lane_seed(9, 0));
        let seeds: Vec<u64> = (0..64).map(|l| lane_seed(9, l)).collect();
        for (i, &a) in seeds.iter().enumerate() {
            for &b in &seeds[i + 1..] {
                assert_ne!(a, b, "lane streams must not collide");
            }
        }
        assert_ne!(lane_seed(9, 3), lane_seed(10, 3), "seed must matter");
        let p = plan(|c| c.seed = 9);
        assert_eq!(p.lane_seed(3), lane_seed(9, 3));
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        let mut cfg = FaultConfig::default();
        cfg.validate().unwrap();
        cfg.transient_exit_prob = 1.5;
        assert!(cfg.validate().is_err());
        cfg.transient_exit_prob = 0.0;
        cfg.hold_prob = 0.1;
        cfg.hold_release_s = 0.0;
        assert!(cfg.validate().is_err());
    }
}
