//! Federated multi-pool layer: pool-level fault domains and the
//! health-gated burst controller.
//!
//! The paper's VDC-bursting policies assume every pool stays healthy for
//! the whole campaign; this module drops that assumption. A
//! [`Federation`] groups the cluster's glidein machines into 2–4 named
//! pools — an OSPool-like shared pool, a dedicated VDC, and an elastic
//! cloud pool with spin-up latency and spot preemption — and owns the
//! per-pool health machinery the negotiator consults before matching:
//!
//! * a **circuit breaker** per pool (closed → open → half-open with a
//!   timed probe), generalizing the per-machine scoreboard of the
//!   self-healing layer to the pool level;
//! * **fault-domain state**: whole-pool outage windows and network
//!   partitions that stall transfers between a pool and the submit node;
//! * a **burst gate** for the cloud pool: it only joins matchmaking once
//!   idle pressure crosses a threshold, and then only after its
//!   spin-up latency has elapsed.
//!
//! Everything here is sim-time deterministic: pool membership is a
//! deficit-round-robin over machine arrival order, breaker transitions
//! are pure functions of recorded outcomes and sim time, and all state
//! lives in `BTreeMap`s.

use std::collections::BTreeMap;

use crate::pool::MachineId;

/// Identifier of a pool inside a federation (index into the pool list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PoolId(pub u32);

/// Broad class of a federated pool; drives burst gating and preemption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolClass {
    /// Opportunistic shared pool (OSPool-like): always matchable.
    Shared,
    /// Dedicated allocation (the paper's VDC): always matchable.
    Dedicated,
    /// Elastic cloud: joins matchmaking only under idle pressure, after
    /// a spin-up delay, and its jobs are exposed to spot reclamation.
    Cloud,
}

/// Static description of one pool in the federation.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSpec {
    /// Human-readable pool name (appears in logs and reports).
    pub name: &'static str,
    /// Pool class.
    pub class: PoolClass,
    /// Fraction of arriving machines assigned to this pool.
    pub slot_share: f64,
}

/// Knobs for the federated layer. Defaults to *disabled* so a default
/// cluster behaves exactly as the single-pool simulator always has.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FederationConfig {
    /// Master switch: when off, no pools exist and nothing else here
    /// applies.
    pub enabled: bool,
    /// When on, the burst controller reacts to pool health: circuit
    /// breakers gate matchmaking, partitioned pools are drained, and
    /// displaced jobs migrate. When off (the ablation baseline), pools
    /// and pool faults still exist but nothing routes around them.
    pub failover_enabled: bool,
    /// Idle jobs required before the cloud pool is asked to spin up.
    pub burst_idle_threshold: usize,
    /// Consecutive pool-level failures that open a pool's breaker
    /// (0 disables the breaker even when failover is on).
    pub breaker_failure_threshold: u32,
    /// Seconds an open breaker waits before letting one probe match
    /// through (half-open).
    pub breaker_probe_s: f64,
    /// Master switch for checkpoint/restart of preempted jobs.
    pub checkpoint_enabled: bool,
    /// Work-seconds between checkpoint records (per-rupture-batch
    /// progress granularity).
    pub checkpoint_interval_s: f64,
    /// Spin-up latency of the cloud pool, seconds.
    pub cloud_spinup_s: f64,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            enabled: false,
            failover_enabled: false,
            burst_idle_threshold: 4,
            breaker_failure_threshold: 3,
            breaker_probe_s: 600.0,
            checkpoint_enabled: false,
            checkpoint_interval_s: 120.0,
            cloud_spinup_s: 300.0,
        }
    }
}

impl FederationConfig {
    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled {
            return Ok(());
        }
        if self.breaker_probe_s <= 0.0 {
            return Err("breaker_probe_s must be positive".into());
        }
        if self.checkpoint_enabled && self.checkpoint_interval_s <= 0.0 {
            return Err("checkpoint_interval_s must be positive".into());
        }
        if self.cloud_spinup_s < 0.0 {
            return Err("cloud_spinup_s must be non-negative".into());
        }
        Ok(())
    }
}

/// The fixed pool trio modelled by this federation: a shared OSPool-like
/// pool, the dedicated VDC, and an elastic cloud pool.
pub fn pool_specs() -> Vec<PoolSpec> {
    vec![
        PoolSpec {
            name: "ospool",
            class: PoolClass::Shared,
            slot_share: 0.5,
        },
        PoolSpec {
            name: "vdc",
            class: PoolClass::Dedicated,
            slot_share: 0.3,
        },
        PoolSpec {
            name: "cloud",
            class: PoolClass::Cloud,
            slot_share: 0.2,
        },
    ]
}

/// Circuit-breaker state of one pool.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Breaker {
    /// Healthy: jobs match freely.
    Closed,
    /// Tripped: no matches until the stored sim-time.
    Open { until: f64 },
    /// Probing: one negotiation cycle of matches allowed; the next
    /// recorded outcome decides between Closed and Open.
    HalfOpen,
}

#[derive(Debug, Clone)]
struct PoolState {
    spec: PoolSpec,
    /// Whole-pool outage in effect (fault-domain state, not health
    /// inference).
    down: bool,
    /// Network partition between this pool and the submit node.
    partitioned: bool,
    breaker: Breaker,
    consecutive_failures: u32,
    /// Machines currently assigned here (deficit round-robin counter).
    assigned: u64,
}

/// Running totals of federation events, for `RunReport` and telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FederationStats {
    /// Whole-pool outage windows that started.
    pub outages: u64,
    /// Jobs killed by spot reclamation in the cloud pool.
    pub preemptions: u64,
    /// Transfers caught by a network partition.
    pub partition_stalls: u64,
    /// Displaced jobs that restarted in a different pool.
    pub migrations: u64,
    /// Checkpoint records written for preempted/evicted jobs.
    pub checkpoints: u64,
    /// Jobs that resumed from a checkpoint instead of from scratch.
    pub resumes: u64,
    /// Circuit breakers that tripped open.
    pub breaker_opens: u64,
    /// Half-open probe windows granted.
    pub breaker_probes: u64,
    /// Breakers that closed again after a successful probe.
    pub breaker_closes: u64,
    /// Queued/transferring jobs drained away from an unhealthy pool.
    pub drained: u64,
}

/// Phase-aware checkpoint record of one preempted job: how much of its
/// total work was durably saved, in work-seconds (machine-speed 1.0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Checkpoint {
    /// Total work the job represents, work-seconds.
    pub work_total: f64,
    /// Work completed and saved at the last checkpoint boundary.
    pub work_done: f64,
}

/// Runtime state of the federated layer: pool membership, fault-domain
/// flags, circuit breakers, and the cloud burst gate.
#[derive(Debug, Clone)]
pub struct Federation {
    cfg: FederationConfig,
    pools: Vec<PoolState>,
    /// Machine → pool index. BTreeMap: iterated for outage eviction.
    machine_pool: BTreeMap<u64, u32>,
    /// Sim-time the cloud pool becomes usable (None: not yet engaged).
    cloud_ready_at: Option<f64>,
    stats: FederationStats,
}

impl Federation {
    /// Build a federation over the fixed pool trio.
    pub fn new(cfg: FederationConfig) -> Self {
        let pools = pool_specs()
            .into_iter()
            .map(|spec| PoolState {
                spec,
                down: false,
                partitioned: false,
                breaker: Breaker::Closed,
                consecutive_failures: 0,
                assigned: 0,
            })
            .collect();
        Federation {
            cfg,
            pools,
            machine_pool: BTreeMap::new(),
            cloud_ready_at: None,
            stats: FederationStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &FederationConfig {
        &self.cfg
    }

    /// Federation event totals so far.
    pub fn stats(&self) -> FederationStats {
        self.stats
    }

    /// Number of pools.
    pub fn pool_count(&self) -> u32 {
        self.pools.len() as u32
    }

    /// Name of a pool (for logs and reports).
    pub fn pool_name(&self, pool: u32) -> &'static str {
        self.pools[pool as usize].spec.name
    }

    /// Assign an arriving machine to a pool by deficit round-robin:
    /// the pool whose assigned count is furthest below its slot share
    /// gets the machine. Deterministic in machine arrival order.
    pub fn assign_machine(&mut self, machine: MachineId) -> u32 {
        let total: u64 = self.pools.iter().map(|p| p.assigned).sum();
        let mut best = 0usize;
        let mut best_deficit = f64::NEG_INFINITY;
        for (i, p) in self.pools.iter().enumerate() {
            let deficit = p.spec.slot_share * (total + 1) as f64 - p.assigned as f64;
            if deficit > best_deficit {
                best_deficit = deficit;
                best = i;
            }
        }
        self.pools[best].assigned += 1;
        self.machine_pool.insert(machine.0, best as u32);
        best as u32
    }

    /// Pool of a machine (None for machines that predate the federation
    /// or departed).
    pub fn pool_of(&self, machine: MachineId) -> Option<u32> {
        self.machine_pool.get(&machine.0).copied()
    }

    /// Forget a departed machine (its pool keeps the deficit credit so
    /// shares stay proportional over churn).
    pub fn forget_machine(&mut self, machine: MachineId) {
        self.machine_pool.remove(&machine.0);
    }

    /// Machines currently assigned to `pool`, in id order.
    pub fn machines_in(&self, pool: u32) -> Vec<MachineId> {
        self.machine_pool
            .iter()
            .filter(|(_, &p)| p == pool)
            .map(|(&m, _)| MachineId(m))
            .collect()
    }

    /// Is this the cloud (preemptible) pool?
    pub fn is_cloud(&self, pool: u32) -> bool {
        self.pools[pool as usize].spec.class == PoolClass::Cloud
    }

    /// Start or end a whole-pool outage window.
    pub fn set_down(&mut self, pool: u32, down: bool) {
        let p = &mut self.pools[pool as usize];
        if down && !p.down {
            self.stats.outages += 1;
        }
        p.down = down;
    }

    /// True while `pool` is inside an outage window.
    pub fn is_down(&self, pool: u32) -> bool {
        self.pools[pool as usize].down
    }

    /// Start or end a network partition between `pool` and the submit
    /// node.
    pub fn set_partitioned(&mut self, pool: u32, partitioned: bool) {
        self.pools[pool as usize].partitioned = partitioned;
    }

    /// True while transfers between `pool` and the submit node stall.
    pub fn is_partitioned(&self, pool: u32) -> bool {
        self.pools[pool as usize].partitioned
    }

    /// Count one transfer caught by a partition.
    pub fn record_partition_stall(&mut self) {
        self.stats.partition_stalls += 1;
    }

    /// Count one spot reclamation.
    pub fn record_preemption(&mut self) {
        self.stats.preemptions += 1;
    }

    /// Count one checkpoint record written.
    pub fn record_checkpoint(&mut self) {
        self.stats.checkpoints += 1;
    }

    /// Count one resume-from-checkpoint.
    pub fn record_resume(&mut self) {
        self.stats.resumes += 1;
    }

    /// Count one migration (a displaced job restarting in a new pool).
    pub fn record_migration(&mut self) {
        self.stats.migrations += 1;
    }

    /// Count one job drained away from an unhealthy pool.
    pub fn record_drain(&mut self) {
        self.stats.drained += 1;
    }

    /// Record a pool-level failure (preemption, outage eviction, or
    /// partition stall) against `pool`'s circuit breaker. Only failover
    /// mode acts on breaker state, but failures are tracked regardless
    /// so both ablation arms observe the same inputs.
    pub fn record_failure(&mut self, pool: u32, now_s: f64) {
        let threshold = self.cfg.breaker_failure_threshold;
        let p = &mut self.pools[pool as usize];
        p.consecutive_failures += 1;
        let tripped = threshold > 0
            && p.consecutive_failures >= threshold
            && !matches!(p.breaker, Breaker::Open { .. });
        let relapse = p.breaker == Breaker::HalfOpen;
        if tripped || relapse {
            p.breaker = Breaker::Open {
                until: now_s + self.cfg.breaker_probe_s,
            };
            self.stats.breaker_opens += 1;
        }
    }

    /// Record a successful completion on `pool`; a half-open breaker
    /// closes again.
    pub fn record_success(&mut self, pool: u32) {
        let p = &mut self.pools[pool as usize];
        p.consecutive_failures = 0;
        if p.breaker == Breaker::HalfOpen {
            p.breaker = Breaker::Closed;
            self.stats.breaker_closes += 1;
        }
    }

    /// Compute per-pool matchability for one negotiation cycle.
    ///
    /// A pool is unmatchable while it is *down* (physical — applies in
    /// both ablation arms). With failover on, the burst controller also
    /// refuses partitioned pools and pools whose breaker is open; an
    /// open breaker past its probe time transitions to half-open here
    /// and admits one probe cycle. The cloud pool additionally gates on
    /// the burst threshold and spin-up latency (both arms).
    pub fn gate(&mut self, now_s: f64, idle_depth: usize) -> Vec<bool> {
        // Engage the cloud pool once idle pressure crosses the
        // threshold; spin-up starts then and is paid exactly once.
        if self.cloud_ready_at.is_none() && idle_depth > self.cfg.burst_idle_threshold {
            self.cloud_ready_at = Some(now_s + self.cfg.cloud_spinup_s);
        }
        let failover = self.cfg.failover_enabled;
        let cloud_ready = self.cloud_ready_at.is_some_and(|t| now_s >= t);
        let mut probes = 0u64;
        let out = self
            .pools
            .iter_mut()
            .map(|p| {
                if p.down {
                    return false;
                }
                if p.spec.class == PoolClass::Cloud && !cloud_ready {
                    return false;
                }
                if !failover {
                    return true;
                }
                if p.partitioned {
                    return false;
                }
                match p.breaker {
                    Breaker::Closed | Breaker::HalfOpen => true,
                    Breaker::Open { until } => {
                        if now_s < until {
                            false
                        } else {
                            p.breaker = Breaker::HalfOpen;
                            probes += 1;
                            true
                        }
                    }
                }
            })
            .collect();
        self.stats.breaker_probes += probes;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fed(cfg: FederationConfig) -> Federation {
        Federation::new(FederationConfig {
            enabled: true,
            ..cfg
        })
    }

    #[test]
    fn deficit_round_robin_tracks_shares() {
        let mut f = fed(FederationConfig::default());
        let mut counts = [0u64; 3];
        for m in 0..100 {
            counts[f.assign_machine(MachineId(m)) as usize] += 1;
        }
        assert_eq!(counts, [50, 30, 20]);
        // Deterministic: same arrival order, same assignment.
        let mut g = fed(FederationConfig::default());
        for m in 0..100 {
            assert_eq!(
                g.assign_machine(MachineId(m)),
                f.pool_of(MachineId(m)).unwrap()
            );
        }
    }

    #[test]
    fn down_pool_is_unmatchable_in_both_arms() {
        for failover in [false, true] {
            let mut f = fed(FederationConfig {
                failover_enabled: failover,
                ..Default::default()
            });
            f.set_down(1, true);
            assert!(!f.gate(0.0, 0)[1]);
            f.set_down(1, false);
            assert!(f.gate(0.0, 0)[1]);
        }
    }

    #[test]
    fn partition_gates_only_under_failover() {
        let mut off = fed(FederationConfig::default());
        off.set_partitioned(0, true);
        assert!(off.gate(0.0, 0)[0], "no-failover arm keeps matching");
        let mut on = fed(FederationConfig {
            failover_enabled: true,
            ..Default::default()
        });
        on.set_partitioned(0, true);
        assert!(!on.gate(0.0, 0)[0]);
    }

    #[test]
    fn breaker_opens_probes_and_closes() {
        let mut f = fed(FederationConfig {
            failover_enabled: true,
            breaker_failure_threshold: 2,
            breaker_probe_s: 100.0,
            ..Default::default()
        });
        f.record_failure(1, 10.0);
        assert_eq!(f.stats().breaker_opens, 0, "below threshold");
        f.record_failure(1, 20.0);
        assert_eq!(f.stats().breaker_opens, 1);
        assert!(!f.gate(50.0, 0)[1], "open breaker blocks matches");
        // Past the probe time: half-open admits one probe window.
        assert!(f.gate(130.0, 0)[1]);
        assert_eq!(f.stats().breaker_probes, 1);
        // Success closes it; failure would re-open.
        f.record_success(1);
        assert_eq!(f.stats().breaker_closes, 1);
        assert!(f.gate(140.0, 0)[1]);
    }

    #[test]
    fn half_open_relapse_reopens() {
        let mut f = fed(FederationConfig {
            failover_enabled: true,
            breaker_failure_threshold: 1,
            breaker_probe_s: 100.0,
            ..Default::default()
        });
        f.record_failure(0, 0.0);
        assert_eq!(f.stats().breaker_opens, 1);
        assert!(f.gate(200.0, 0)[0], "probe admitted");
        f.record_failure(0, 210.0);
        assert_eq!(f.stats().breaker_opens, 2, "relapse re-opens");
        assert!(!f.gate(250.0, 0)[0]);
    }

    #[test]
    fn cloud_gates_on_idle_pressure_then_spinup() {
        let mut f = fed(FederationConfig {
            burst_idle_threshold: 4,
            cloud_spinup_s: 300.0,
            ..Default::default()
        });
        // Below threshold: never engages.
        assert!(!f.gate(0.0, 4)[2]);
        // Crossing the threshold starts the spin-up clock once.
        assert!(!f.gate(100.0, 10)[2], "still spinning up");
        assert!(!f.gate(350.0, 0)[2], "spin-up anchored at engagement");
        assert!(f.gate(400.0, 0)[2], "ready after spin-up");
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        FederationConfig::default().validate().unwrap();
        let mut cfg = FederationConfig {
            enabled: true,
            ..Default::default()
        };
        cfg.validate().unwrap();
        cfg.breaker_probe_s = 0.0;
        assert!(cfg.validate().is_err());
        cfg.breaker_probe_s = 60.0;
        cfg.checkpoint_enabled = true;
        cfg.checkpoint_interval_s = 0.0;
        assert!(cfg.validate().is_err());
    }
}
