//! Job descriptions and lifecycle records — the simulator's analogue of
//! HTCondor submit description files and job ClassAds.

use crate::fault::HoldReason;
use crate::service::ServiceDetail;
use crate::time::SimTime;

/// Identifier of a submitted job, unique within one cluster run
/// (HTCondor's `ClusterId.ProcId` collapsed to one counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

/// Identifier of a submitter (one DAGMan instance = one owner for
/// fair-share purposes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OwnerId(pub u32);

/// How a job's execution time is drawn when it lands on a slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecModel {
    /// Fixed duration in seconds.
    Fixed(f64),
    /// Lognormal with the given median (seconds) and log-sigma — the
    /// canonical heavy-ish tail of real OSG jobs.
    LogNormalMedian {
        /// Median execution time in seconds.
        median_s: f64,
        /// Sigma of the underlying normal.
        sigma: f64,
    },
}

impl ExecModel {
    /// Sample a duration in seconds (>= 1).
    pub fn sample(&self, rng: &mut rand::rngs::StdRng) -> f64 {
        let raw = match self {
            ExecModel::Fixed(s) => *s,
            ExecModel::LogNormalMedian { median_s, sigma } => {
                crate::rand_util::lognormal_median(rng, *median_s, *sigma)
            }
        };
        raw.max(1.0)
    }

    /// The distribution's median in seconds (used by capacity planning).
    pub fn median_s(&self) -> f64 {
        match self {
            ExecModel::Fixed(s) => *s,
            ExecModel::LogNormalMedian { median_s, .. } => *median_s,
        }
    }
}

/// A named input file a job must stage in before executing. Files with the
/// same name are identical across jobs (the FDW's recycled `.npy` and
/// `.mseed` artifacts), which is what makes the Stash cache effective.
#[derive(Debug, Clone, PartialEq)]
pub struct InputFile {
    /// Logical file name, e.g. `gf_chile_121.mseed`.
    pub name: String,
    /// Size in megabytes.
    pub size_mb: f64,
    /// Whether the file may be served from the Stash/OSDF cache.
    pub cacheable: bool,
}

/// The resources and behaviour of one job — the submit description file.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Human-readable label, e.g. `rupture.0042` (the DAG node name).
    pub name: String,
    /// CPU cores requested (FDW jobs request 4).
    pub cpus: u32,
    /// Memory requested, MB (FDW requests up to 16 GB dynamically).
    pub memory_mb: u32,
    /// Disk requested, MB.
    pub disk_mb: u32,
    /// Input files to stage in.
    pub inputs: Vec<InputFile>,
    /// Output size to stage out, MB.
    pub output_mb: f64,
    /// Execution-time model.
    pub exec: ExecModel,
    /// Allowed wall time in seconds; an execution attempt that would run
    /// longer is held then removed (HTCondor `periodic_hold` →
    /// `periodic_remove`). `0.0` disables the limit.
    pub timeout_s: f64,
}

impl JobSpec {
    /// A minimal 4-core job with the given name and fixed runtime —
    /// convenient for tests.
    pub fn fixed(name: impl Into<String>, secs: f64) -> Self {
        Self {
            name: name.into(),
            cpus: 4,
            memory_mb: 8192,
            disk_mb: 8192,
            inputs: Vec::new(),
            output_mb: 10.0,
            exec: ExecModel::Fixed(secs),
            timeout_s: 0.0,
        }
    }

    /// Total input megabytes.
    pub fn total_input_mb(&self) -> f64 {
        self.inputs.iter().map(|f| f.size_mb).sum()
    }
}

/// A request handed to the cluster by a workload driver.
#[derive(Debug, Clone)]
pub struct SubmitRequest {
    /// Submitting owner (DAGMan).
    pub owner: OwnerId,
    /// The job to run.
    pub spec: JobSpec,
}

/// Job lifecycle states, mirroring the HTCondor job state machine at the
/// granularity the paper's scripts observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// In the queue, waiting for a match.
    Idle,
    /// Staging input to the execute node.
    TransferringInput,
    /// Executing.
    Running,
    /// Staging output back.
    TransferringOutput,
    /// Finished successfully.
    Completed,
    /// Evicted (glidein vanished); will return to Idle and retry.
    Evicted,
    /// Removed from the queue (e.g. bursted away by a policy).
    Removed,
    /// On hold; will be released back to Idle after the hold period.
    Held,
    /// Terminated with a non-zero exit code (terminal for this job;
    /// whether the *node* retries is DAGMan's decision).
    Failed,
}

/// Events reported to workload drivers and recorded in the user log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobEventKind {
    /// Job entered the queue.
    Submitted,
    /// Job matched a slot and began input transfer.
    Matched,
    /// Job began executing.
    ExecuteStarted,
    /// Job was evicted from a dying glidein.
    Evicted,
    /// Job finished and its output is back.
    Completed,
    /// Job was removed from the queue without completing.
    Removed,
    /// Job terminated with a non-zero exit code (ULOG 005 with a
    /// non-zero return value).
    Failed,
    /// Job was put on hold (ULOG 012).
    Held,
    /// Job was released from hold back to the idle queue (ULOG 013).
    Released,
    /// Job was killed by spot reclamation in the cloud pool; it returns
    /// to Idle (resuming from its checkpoint when one exists).
    Preempted,
    /// Job was displaced by a whole-pool outage window; it returns to
    /// Idle like an eviction, but the cause is the pool fault domain.
    PoolOutage,
    /// Job's transfer stalled on a network partition between its pool
    /// and the submit node.
    PartitionStalled,
    /// A displaced job restarted in a different pool than its last
    /// attempt (the federation's drain-and-migrate path).
    Migrated,
    /// Service layer: a campaign request passed admission control
    /// (quota, queue depth and breaker checks) and entered its tenant's
    /// queue.
    ServiceAdmitted,
    /// Service layer: admission control refused the request; the
    /// event carries a typed [`crate::service::RejectReason`].
    ServiceRejected,
    /// Service layer: an admitted request was dropped by the load
    /// shedder; the event carries a typed [`crate::service::ShedReason`].
    ServiceShed,
    /// Service layer: the campaign was started in a degraded mode under
    /// overload; the event carries a [`crate::service::DegradeMode`].
    ServiceDegraded,
    /// Service layer: a campaign artifact was served from the shared
    /// content-addressed store instead of being recomputed.
    ArtifactHit,
    /// Service layer: a stored artifact failed its verify-on-read
    /// checksum and was quarantined (evicted and recomputed).
    ArtifactQuarantined,
}

/// One timestamped job event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobEvent {
    /// Time of the event.
    pub time: SimTime,
    /// The job this event concerns.
    pub job: JobId,
    /// Owning submitter.
    pub owner: OwnerId,
    /// What happened.
    pub kind: JobEventKind,
    /// Exit code, for terminated jobs: `Some(0)` on [`JobEventKind::Completed`],
    /// the failing code on [`JobEventKind::Failed`], `None` elsewhere.
    pub exit_code: Option<i32>,
    /// Hold reason, on [`JobEventKind::Held`] events.
    pub hold_reason: Option<HoldReason>,
    /// Destination pool index, on [`JobEventKind::Migrated`] events.
    pub pool: Option<u32>,
    /// Typed service-layer payload, on the `Service*`/`Artifact*` events.
    pub service: Option<ServiceDetail>,
}

impl JobEvent {
    /// An event with no exit code or hold reason attached.
    pub fn new(time: SimTime, job: JobId, owner: OwnerId, kind: JobEventKind) -> Self {
        JobEvent {
            time,
            job,
            owner,
            kind,
            exit_code: None,
            hold_reason: None,
            pool: None,
            service: None,
        }
    }

    /// Attach an exit code (005 events).
    pub fn with_exit(mut self, code: i32) -> Self {
        self.exit_code = Some(code);
        self
    }

    /// Attach a hold reason (012 events).
    pub fn with_hold(mut self, reason: HoldReason) -> Self {
        self.hold_reason = Some(reason);
        self
    }

    /// Attach the destination pool (migration events).
    pub fn with_pool(mut self, pool: u32) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Attach a typed service-layer payload (033–038 events).
    pub fn with_service(mut self, detail: ServiceDetail) -> Self {
        self.service = Some(detail);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_exec_model_samples_exactly() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = ExecModel::Fixed(150.0);
        assert_eq!(m.sample(&mut rng), 150.0);
        assert_eq!(m.median_s(), 150.0);
    }

    #[test]
    fn exec_sample_floor_is_one_second() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(ExecModel::Fixed(0.01).sample(&mut rng), 1.0);
    }

    #[test]
    fn lognormal_median_accessor() {
        let m = ExecModel::LogNormalMedian {
            median_s: 900.0,
            sigma: 0.25,
        };
        assert_eq!(m.median_s(), 900.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut xs: Vec<f64> = (0..10_001).map(|_| m.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((xs[xs.len() / 2] / 900.0 - 1.0).abs() < 0.06);
    }

    #[test]
    fn jobspec_fixed_helper() {
        let j = JobSpec::fixed("rupture.0", 60.0);
        assert_eq!(j.cpus, 4);
        assert_eq!(j.total_input_mb(), 0.0);
        assert_eq!(j.exec.median_s(), 60.0);
    }

    #[test]
    fn event_builders_attach_metadata() {
        let base = JobEvent::new(SimTime(5), JobId(1), OwnerId(0), JobEventKind::Completed);
        assert_eq!(base.exit_code, None);
        assert_eq!(base.with_exit(0).exit_code, Some(0));
        let held = JobEvent::new(SimTime(9), JobId(2), OwnerId(0), JobEventKind::Held)
            .with_hold(HoldReason::PolicyHold);
        assert_eq!(held.hold_reason, Some(HoldReason::PolicyHold));
    }

    #[test]
    fn total_input_mb_sums() {
        let mut j = JobSpec::fixed("w", 1.0);
        j.inputs.push(InputFile {
            name: "a.npy".into(),
            size_mb: 100.0,
            cacheable: true,
        });
        j.inputs.push(InputFile {
            name: "b.mseed".into(),
            size_mb: 900.0,
            cacheable: true,
        });
        assert_eq!(j.total_input_mb(), 1000.0);
    }
}
