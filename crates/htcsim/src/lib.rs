//! # htcsim — a discrete-event simulator of an HTCondor-style HTC pool
//!
//! Substitute for the Open Science Pool (OSPool) substrate of Adair et
//! al., SC-W 2023. The production OSG cannot be embedded in a library, so
//! this crate reproduces the mechanisms that drive the paper's
//! observations:
//!
//! * **pilot (glidein) churn** — machines join and leave the pool,
//!   evicting jobs mid-flight ([`pool`]);
//! * **negotiation-cycle matchmaking with fair share** across submitters
//!   ([`cluster`]), which is what throttles concurrent DAGMans;
//! * **background contention** — a stochastic available-capacity process
//!   standing in for the rest of the pool's users ([`pool`]);
//! * **file staging through a Stash/OSDF-style site cache** ([`transfer`]);
//! * **deterministic fault injection** — transient/permanent exit codes,
//!   black-hole machines, transfer failures, holds and wall-time limits
//!   ([`fault`]), so retry and rescue machinery can be exercised;
//! * a **federated multi-pool layer** ([`federation`]) with pool-level
//!   fault domains (outage windows, network partitions, spot
//!   preemption), per-pool circuit breakers, an elastic cloud burst
//!   gate, and checkpoint/restart migration of displaced jobs;
//! * **HTCondor-style user logs** and the statistics the paper's shell
//!   scripts derive from them ([`userlog`]), exportable as the CSV pair
//!   the VDC bursting simulator consumes;
//! * a **single-machine baseline** runner ([`single`]) standing in for the
//!   paper's AWS comparison instance.
//!
//! Workloads plug in through [`cluster::WorkloadDriver`]; the `dagman`
//! crate implements DAGMan on top of it.
//!
//! ## Example: a 10-job bag of tasks
//!
//! ```
//! use htcsim::prelude::*;
//!
//! struct Bag(Vec<JobSpec>, usize, usize);
//! impl WorkloadDriver for Bag {
//!     fn poll(&mut self, _now: SimTime, events: &[JobEvent]) -> Vec<SubmitRequest> {
//!         self.1 += events.iter().filter(|e| e.kind == JobEventKind::Completed).count();
//!         std::mem::take(&mut self.0)
//!             .into_iter()
//!             .map(|spec| SubmitRequest { owner: OwnerId(0), spec })
//!             .collect()
//!     }
//!     fn is_done(&self) -> bool { self.0.is_empty() && self.1 >= self.2 }
//! }
//!
//! let jobs: Vec<JobSpec> = (0..10).map(|i| JobSpec::fixed(format!("j{i}"), 60.0)).collect();
//! let mut driver = Bag(jobs, 0, 10);
//! let report = Cluster::new(ClusterConfig::with_cache(), 42).run(&mut driver);
//! assert_eq!(report.completed, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod condor_log;
pub mod csvlite;
pub mod des;
pub mod event;
pub mod fault;
pub mod federation;
pub mod job;
pub mod pool;
pub mod rand_util;
pub mod scenarios;
pub mod scoreboard;
pub mod service;
pub mod single;
pub mod time;
pub mod transfer;
pub mod userlog;

/// Glob import of the most-used types.
pub mod prelude {
    pub use crate::cluster::{Cluster, ClusterConfig, PoolSample, RunReport, WorkloadDriver};
    pub use crate::condor_log::{parse_condor_log, to_condor_log};
    pub use crate::des::{EngineReport, LaneModel, ShardedEngine, SynthConfig};
    pub use crate::event::{Event, EventKey, EventQueue, LaneId};
    pub use crate::fault::{FaultConfig, FaultPlan, HoldReason, PoolFaultConfig};
    pub use crate::federation::{
        Federation, FederationConfig, FederationStats, PoolClass, PoolId, PoolSpec,
    };
    pub use crate::job::{
        ExecModel, InputFile, JobEvent, JobEventKind, JobId, JobSpec, JobState, OwnerId,
        SubmitRequest,
    };
    pub use crate::pool::{MachineId, Pool, PoolConfig};
    pub use crate::scoreboard::{DefenseConfig, DefenseStats, Scoreboard};
    pub use crate::service::{ArtifactKind, DegradeMode, RejectReason, ServiceDetail, ShedReason};
    pub use crate::single::{SingleMachine, SingleRunReport};
    pub use crate::time::SimTime;
    pub use crate::transfer::{SiteId, StashCache, TransferConfig};
    pub use crate::userlog::{JobTimes, UserLog};
}
