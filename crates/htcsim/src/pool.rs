//! The OSPool model: glidein machines that come and go, heterogeneous
//! speeds, sites, and background contention from other pool users.
//!
//! OSG capacity is *pilot-based*: sites contribute glideins that join the
//! pool, serve jobs for a while, and vanish (taking any running job with
//! them). Capacity available to one user also fluctuates because the pool
//! is shared; we model that as a slowly-varying AR(1) "available fraction"
//! the matchmaker enforces, which is what produces the erratic running-job
//! footprints and long wait tails of Fig. 4 without tracking every other
//! user's jobs.

use rand::rngs::StdRng;
use rand::Rng;

use crate::rand_util::{exponential, lognormal_median, normal};
use crate::transfer::SiteId;

/// Identifier of a glidein machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId(pub u64);

/// Pool behaviour parameters. Defaults are calibrated so the FDW
/// experiments land in the paper's regime (hundreds of concurrently
/// running jobs, multi-hour waits under load).
#[derive(Debug, Clone, PartialEq)]
pub struct PoolConfig {
    /// Steady-state number of 4-core execution slots the pool offers.
    pub target_slots: usize,
    /// Slots per arriving glidein.
    pub glidein_slots: usize,
    /// Mean glidein lifetime, seconds (exponential).
    pub glidein_lifetime_s: f64,
    /// Number of sites contributing glideins (controls cache locality).
    pub n_sites: u32,
    /// Negotiation cycle period, seconds.
    pub negotiation_period_s: u64,
    /// Mean of the available-fraction process (share of pool our user(s)
    /// can hold at once).
    pub avail_mean: f64,
    /// Standard deviation of the stationary available-fraction process.
    pub avail_sigma: f64,
    /// AR(1) mean-reversion per negotiation cycle (0 = frozen, 1 = white).
    pub avail_theta: f64,
    /// Sigma of machine speed lognormal (heterogeneity of execute nodes).
    pub speed_sigma: f64,
    /// Fraction of glideins that offer big slots (32 GB memory/disk);
    /// the rest offer standard 8 GB slots. FDW matrix/GF jobs request
    /// 16 GB and can only match big slots.
    pub big_slot_fraction: f64,
    /// Hard cap on simulated time, seconds (safety net).
    pub max_sim_time_s: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            target_slots: 420,
            glidein_slots: 8,
            glidein_lifetime_s: 4.0 * 3600.0,
            n_sites: 30,
            negotiation_period_s: 60,
            avail_mean: 0.55,
            avail_sigma: 0.18,
            avail_theta: 0.05,
            speed_sigma: 0.15,
            big_slot_fraction: 0.35,
            max_sim_time_s: 14 * 24 * 3600,
        }
    }
}

impl PoolConfig {
    /// Mean seconds between glidein-group arrivals that sustains
    /// `target_slots` given the configured lifetime and group size.
    pub fn arrival_interval_s(&self) -> f64 {
        let groups = self.target_slots as f64 / self.glidein_slots as f64;
        (self.glidein_lifetime_s / groups).max(1.0)
    }
}

/// A glidein machine: a batch of slots at one site with one speed factor.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Machine id.
    pub id: MachineId,
    /// Site this glidein runs at.
    pub site: SiteId,
    /// Number of 4-core slots.
    pub slots: usize,
    /// Relative speed (execution times divide by this).
    pub speed: f64,
    /// Memory available per slot, MB (jobs ClassAd-match against this).
    pub slot_memory_mb: u32,
    /// Disk available per slot, MB.
    pub slot_disk_mb: u32,
    /// Slots currently running a job.
    pub busy: usize,
}

impl Machine {
    /// Free slots on this machine.
    pub fn free(&self) -> usize {
        self.slots - self.busy
    }
}

/// Live pool state: machines plus the background-contention process.
#[derive(Debug)]
pub struct Pool {
    machines: Vec<Machine>,
    next_machine: u64,
    avail_frac: f64,
    config: PoolConfig,
}

impl Pool {
    /// Create an empty pool with the given config.
    pub fn new(config: PoolConfig) -> Self {
        Self {
            machines: Vec::new(),
            next_machine: 0,
            avail_frac: config.avail_mean,
            config,
        }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Add a glidein; returns its id and sampled lifetime in seconds.
    pub fn add_machine(&mut self, rng: &mut StdRng) -> (MachineId, f64) {
        let id = MachineId(self.next_machine);
        self.next_machine += 1;
        let site = SiteId(rng.gen_range(0..self.config.n_sites));
        let speed = lognormal_median(rng, 1.0, self.config.speed_sigma);
        let big = rng.gen::<f64>() < self.config.big_slot_fraction;
        let (mem, disk) = if big {
            (32_768, 32_768)
        } else {
            (8_192, 8_192)
        };
        self.machines.push(Machine {
            id,
            site,
            slots: self.config.glidein_slots,
            speed,
            slot_memory_mb: mem,
            slot_disk_mb: disk,
            busy: 0,
        });
        let lifetime = exponential(rng, self.config.glidein_lifetime_s);
        (id, lifetime)
    }

    /// Remove a machine (glidein departure). Returns the machine if it was
    /// still present.
    pub fn remove_machine(&mut self, id: MachineId) -> Option<Machine> {
        let idx = self.machines.iter().position(|m| m.id == id)?;
        Some(self.machines.swap_remove(idx))
    }

    /// Look up a machine.
    pub fn machine(&self, id: MachineId) -> Option<&Machine> {
        self.machines.iter().find(|m| m.id == id)
    }

    /// Mark one slot busy on `id`. Panics if no free slot (caller bug).
    pub fn claim_slot(&mut self, id: MachineId) {
        let m = self
            .machines
            .iter_mut()
            .find(|m| m.id == id)
            .expect("claim on unknown machine");
        assert!(m.busy < m.slots, "claim on full machine");
        m.busy += 1;
    }

    /// Release one slot on `id`; no-op if the machine already departed.
    pub fn release_slot(&mut self, id: MachineId) {
        if let Some(m) = self.machines.iter_mut().find(|m| m.id == id) {
            m.busy = m.busy.saturating_sub(1);
        }
    }

    /// Total slots currently in the pool.
    pub fn total_slots(&self) -> usize {
        self.machines.iter().map(|m| m.slots).sum()
    }

    /// Slots currently running our jobs.
    pub fn busy_slots(&self) -> usize {
        self.machines.iter().map(|m| m.busy).sum()
    }

    /// Advance the background-contention AR(1) process one negotiation
    /// cycle and return the current available fraction.
    pub fn step_avail(&mut self, rng: &mut StdRng) -> f64 {
        let c = &self.config;
        // Stationary AR(1): x' = x + theta (mu - x) + sigma sqrt(2 theta) eps.
        self.avail_frac += c.avail_theta * (c.avail_mean - self.avail_frac)
            + c.avail_sigma * (2.0 * c.avail_theta).sqrt() * normal(rng);
        self.avail_frac = self.avail_frac.clamp(0.05, 1.0);
        self.avail_frac
    }

    /// Current available fraction without advancing the process.
    pub fn avail_frac(&self) -> f64 {
        self.avail_frac
    }

    /// Number of slots our user(s) may hold this cycle.
    pub fn user_capacity(&self) -> usize {
        (self.total_slots() as f64 * self.avail_frac).floor() as usize
    }

    /// Machines with at least one free slot, as
    /// `(id, site, speed, free, slot_memory_mb, slot_disk_mb)`, in stable
    /// id order for determinism.
    pub fn free_slots(&self) -> Vec<(MachineId, SiteId, f64, usize, u32, u32)> {
        let mut v: Vec<_> = self
            .machines
            .iter()
            .filter(|m| m.free() > 0)
            .map(|m| {
                (
                    m.id,
                    m.site,
                    m.speed,
                    m.free(),
                    m.slot_memory_mb,
                    m.slot_disk_mb,
                )
            })
            .collect();
        v.sort_by_key(|e| e.0);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn pool() -> (Pool, StdRng) {
        (Pool::new(PoolConfig::default()), StdRng::seed_from_u64(7))
    }

    #[test]
    fn add_and_remove_machines() {
        let (mut p, mut rng) = pool();
        let (id, life) = p.add_machine(&mut rng);
        assert!(life > 0.0);
        assert_eq!(p.total_slots(), 8);
        assert!(p.machine(id).is_some());
        let m = p.remove_machine(id).unwrap();
        assert_eq!(m.id, id);
        assert_eq!(p.total_slots(), 0);
        assert!(p.remove_machine(id).is_none());
    }

    #[test]
    fn claim_and_release() {
        let (mut p, mut rng) = pool();
        let (id, _) = p.add_machine(&mut rng);
        p.claim_slot(id);
        assert_eq!(p.busy_slots(), 1);
        assert_eq!(p.machine(id).unwrap().free(), 7);
        p.release_slot(id);
        assert_eq!(p.busy_slots(), 0);
        // Releasing on a departed machine is a no-op.
        p.remove_machine(id);
        p.release_slot(id);
    }

    #[test]
    #[should_panic(expected = "claim on full machine")]
    fn overclaim_panics() {
        let (mut p, mut rng) = pool();
        let (id, _) = p.add_machine(&mut rng);
        for _ in 0..9 {
            p.claim_slot(id);
        }
    }

    #[test]
    fn avail_process_stays_bounded_and_reverts() {
        let (mut p, mut rng) = pool();
        let mut sum = 0.0;
        let n = 5_000;
        for _ in 0..n {
            let f = p.step_avail(&mut rng);
            assert!((0.05..=1.0).contains(&f));
            sum += f;
        }
        let mean = sum / n as f64;
        assert!(
            (mean - p.config().avail_mean).abs() < 0.08,
            "process mean {mean} vs configured {}",
            p.config().avail_mean
        );
    }

    #[test]
    fn user_capacity_tracks_avail() {
        let (mut p, mut rng) = pool();
        for _ in 0..10 {
            p.add_machine(&mut rng);
        }
        let cap = p.user_capacity();
        assert!(cap <= p.total_slots());
        assert_eq!(cap, (80.0 * p.avail_frac()).floor() as usize);
    }

    #[test]
    fn free_slots_sorted_and_filtered() {
        let (mut p, mut rng) = pool();
        let (a, _) = p.add_machine(&mut rng);
        let (b, _) = p.add_machine(&mut rng);
        for _ in 0..8 {
            p.claim_slot(a);
        }
        let free = p.free_slots();
        assert_eq!(free.len(), 1);
        assert_eq!(free[0].0, b);
        assert_eq!(free[0].3, 8);
    }

    #[test]
    fn arrival_interval_sustains_target() {
        let c = PoolConfig::default();
        let groups_alive = c.glidein_lifetime_s / c.arrival_interval_s();
        let slots = groups_alive * c.glidein_slots as f64;
        assert!((slots / c.target_slots as f64 - 1.0).abs() < 0.01);
    }

    #[test]
    fn machine_speeds_are_heterogeneous() {
        let (mut p, mut rng) = pool();
        for _ in 0..50 {
            p.add_machine(&mut rng);
        }
        let speeds: Vec<f64> = p.free_slots().iter().map(|s| s.2).collect();
        let min = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = speeds.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > min, "speeds should differ");
        assert!(min > 0.4 && max < 2.5, "speeds within sane range");
    }
}
