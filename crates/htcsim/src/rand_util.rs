//! Sampling helpers for the pool's stochastic processes.
//!
//! Kept dependency-light: only `rand`'s uniform source is used; the
//! exponential and lognormal transforms are implemented directly.

use rand::rngs::StdRng;
use rand::Rng;

/// Draw a standard normal via Box–Muller.
pub fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draw an exponential with the given mean (inverse-CDF transform).
pub fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -mean * u.ln()
}

/// Draw a lognormal specified by its *median* and the sigma of the
/// underlying normal. Medians are how operators think about job runtimes
/// ("typically 15–20 minutes"), so this is the natural parameterisation.
pub fn lognormal_median(rng: &mut StdRng, median: f64, sigma: f64) -> f64 {
    median * (sigma * normal(rng)).exp()
}

/// Draw a Poisson count with the given mean (Knuth's method for small
/// means; normal approximation above 30 where Knuth's loop gets long).
pub fn poisson(rng: &mut StdRng, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 30.0 {
        let x = mean + mean.sqrt() * normal(rng);
        return x.round().max(0.0) as u64;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| exponential(&mut r, 42.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean / 42.0 - 1.0).abs() < 0.05, "mean {mean}");
        assert!(xs.iter().all(|x| *x >= 0.0));
    }

    #[test]
    fn lognormal_median_is_median() {
        let mut r = rng();
        let mut xs: Vec<f64> = (0..20_001)
            .map(|_| lognormal_median(&mut r, 900.0, 0.3))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        assert!((med / 900.0 - 1.0).abs() < 0.05, "median {med}");
        assert!(xs.iter().all(|x| *x > 0.0));
    }

    #[test]
    fn lognormal_zero_sigma_is_constant() {
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(lognormal_median(&mut r, 100.0, 0.0), 100.0);
        }
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut r = rng();
        for target in [0.5, 5.0, 80.0] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| poisson(&mut r, target)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean / target - 1.0).abs() < 0.06,
                "target {target}: mean {mean}"
            );
        }
        assert_eq!(poisson(&mut r, 0.0), 0);
        assert_eq!(poisson(&mut r, -1.0), 0);
    }
}
