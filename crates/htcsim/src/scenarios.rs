//! Canonical cluster scenarios shared by the golden-fixture tests, the
//! differential-determinism harness, and the benches.
//!
//! Each builder runs a fully-specified workload on a fixed seed and
//! returns the [`RunReport`]; the only free parameter is the event-queue
//! **shard count**, which the determinism contract says must never
//! change a byte of output. `tests/golden_ulog.rs` pins each scenario's
//! ULOG bytes at `shards = 1`; `tests/des_differential.rs` re-runs the
//! same builders across the {threads} × {shards} matrix and asserts
//! byte-identity against those very fixtures.

use fdw_obs::Obs;

use crate::cluster::{Cluster, ClusterConfig, RunReport, WorkloadDriver};
use crate::fault::{FaultConfig, PoolFaultConfig};
use crate::federation::FederationConfig;
use crate::job::{InputFile, JobEvent, JobEventKind, JobId, JobSpec, OwnerId, SubmitRequest};
use crate::pool::PoolConfig;
use crate::scoreboard::DefenseConfig;
use crate::time::SimTime;

/// A fixed bag of jobs submitted at t=0 — the smallest workload driver
/// that exercises the cluster end to end.
pub struct Bag {
    pending: Vec<SubmitRequest>,
    outstanding: usize,
}

impl Bag {
    /// `n` identical 300-second jobs under one owner.
    pub fn new(n: usize) -> Self {
        Bag::from_requests(
            (0..n)
                .map(|i| SubmitRequest {
                    owner: OwnerId(0),
                    spec: JobSpec::fixed(format!("job.{i}"), 300.0),
                })
                .collect(),
        )
    }

    /// A bag over explicit submissions.
    pub fn from_requests(pending: Vec<SubmitRequest>) -> Self {
        let outstanding = pending.len();
        Bag {
            pending,
            outstanding,
        }
    }
}

impl WorkloadDriver for Bag {
    fn poll(&mut self, _now: SimTime, events: &[JobEvent]) -> Vec<SubmitRequest> {
        self.outstanding -= events
            .iter()
            .filter(|e| e.kind == JobEventKind::Completed)
            .count();
        std::mem::take(&mut self.pending)
    }

    fn is_done(&self) -> bool {
        self.outstanding == 0
    }
}

/// A bag of jobs that resubmits failures up to a per-name attempt cap —
/// the minimal driver that survives black holes and poisoned inputs.
pub struct RetryBag {
    to_submit: Vec<JobSpec>,
    specs: std::collections::BTreeMap<String, JobSpec>,
    names: std::collections::BTreeMap<JobId, String>,
    attempts: std::collections::BTreeMap<String, u32>,
    settled: usize,
    total: usize,
}

impl RetryBag {
    /// Retry each of `specs` (keyed by job name) up to 20 attempts.
    pub fn new(specs: Vec<JobSpec>) -> Self {
        let total = specs.len();
        let by_name = specs.iter().map(|s| (s.name.clone(), s.clone())).collect();
        RetryBag {
            to_submit: specs,
            specs: by_name,
            names: Default::default(),
            attempts: Default::default(),
            settled: 0,
            total,
        }
    }
}

impl WorkloadDriver for RetryBag {
    fn poll(&mut self, _now: SimTime, events: &[JobEvent]) -> Vec<SubmitRequest> {
        let mut subs: Vec<SubmitRequest> = std::mem::take(&mut self.to_submit)
            .into_iter()
            .map(|spec| SubmitRequest {
                owner: OwnerId(0),
                spec,
            })
            .collect();
        for e in events {
            match e.kind {
                JobEventKind::Completed => self.settled += 1,
                JobEventKind::Failed | JobEventKind::Removed => {
                    let name = self.names.get(&e.job).cloned().unwrap_or_default();
                    let tries = self.attempts.entry(name.clone()).or_insert(1);
                    if *tries < 20 {
                        *tries += 1;
                        subs.push(SubmitRequest {
                            owner: OwnerId(0),
                            spec: self.specs[&name].clone(),
                        });
                    } else {
                        self.settled += 1;
                    }
                }
                _ => {}
            }
        }
        subs
    }

    fn on_assigned(&mut self, job: JobId, name: &str) {
        self.names.insert(job, name.to_string());
    }

    fn is_done(&self) -> bool {
        self.settled == self.total
    }
}

/// A small always-on pool: full availability, no churn.
fn quiet_pool(target_slots: usize, glidein_slots: usize) -> PoolConfig {
    PoolConfig {
        target_slots,
        glidein_slots,
        avail_mean: 1.0,
        avail_sigma: 0.0,
        glidein_lifetime_s: 1e9,
        ..Default::default()
    }
}

/// Transient transfer failures and policy holds under a fixed fault
/// seed: the scenario behind `faulty_run.log`.
pub fn faulty_run(shards: usize, obs: Obs) -> RunReport {
    let cfg = ClusterConfig {
        pool: quiet_pool(4, 2),
        faults: FaultConfig {
            seed: 9,
            transfer_fail_prob: 0.25,
            hold_prob: 0.25,
            hold_release_s: 120.0,
            ..Default::default()
        },
        shards,
        ..ClusterConfig::with_cache()
    };
    Cluster::new(cfg, 11).with_obs(obs).run(&mut Bag::new(6))
}

/// Two owners mixing big (16 GB) and small jobs in a half-big pool,
/// exercising the negotiation hold-back buffer: the scenario behind
/// `holdback_run.log`.
pub fn holdback_run(shards: usize, obs: Obs) -> RunReport {
    let cfg = ClusterConfig {
        pool: PoolConfig {
            big_slot_fraction: 0.5,
            ..quiet_pool(8, 2)
        },
        shards,
        ..ClusterConfig::with_cache()
    };
    let mut pending = Vec::new();
    for owner in [0u32, 1, 2] {
        for i in 0..3u32 {
            let mut spec = JobSpec::fixed(format!("big.{owner}.{i}"), 250.0);
            spec.memory_mb = 16_384;
            spec.disk_mb = 16_384;
            pending.push(SubmitRequest {
                owner: OwnerId(owner),
                spec,
            });
            pending.push(SubmitRequest {
                owner: OwnerId(owner),
                spec: JobSpec::fixed(format!("small.{owner}.{i}"), 200.0),
            });
        }
    }
    Cluster::new(cfg, 23)
        .with_obs(obs)
        .run(&mut Bag::from_requests(pending))
}

/// Black holes plus silent cache corruption with the scoreboard and
/// checksum defenses on, under a retrying driver: the scenario behind
/// `defended_run.log`.
pub fn defended_run(shards: usize, obs: Obs) -> RunReport {
    let cfg = ClusterConfig {
        pool: quiet_pool(8, 1),
        faults: FaultConfig {
            seed: 9,
            black_hole_fraction: 0.3,
            corrupt_prob: 0.5,
            ..Default::default()
        },
        defense: DefenseConfig {
            scoreboard_enabled: true,
            checksum_enabled: true,
            ..Default::default()
        },
        shards,
        ..ClusterConfig::with_cache()
    };
    let specs: Vec<JobSpec> = (0..10)
        .map(|i| {
            let mut s = JobSpec::fixed(format!("job.{i}"), 300.0);
            s.inputs.push(InputFile {
                name: "gf.mseed".to_string(),
                size_mb: 500.0,
                cacheable: true,
            });
            s
        })
        .collect();
    Cluster::new(cfg, 7)
        .with_obs(obs)
        .run(&mut RetryBag::new(specs))
}

/// The full federated fault menu — a mid-run outage of the dedicated
/// pool, a network partition stalling ospool stage-ins, and cloud spot
/// reclamation — with failover and checkpointing on: the scenario
/// behind `failover_run.log`.
pub fn failover_run(shards: usize, obs: Obs) -> RunReport {
    let cfg = ClusterConfig {
        pool: quiet_pool(24, 4),
        federation: FederationConfig {
            enabled: true,
            failover_enabled: true,
            checkpoint_enabled: true,
            checkpoint_interval_s: 30.0,
            burst_idle_threshold: 0,
            cloud_spinup_s: 60.0,
            ..Default::default()
        },
        faults: FaultConfig {
            seed: 7,
            pool: PoolFaultConfig {
                outage_pool: 1,
                outage_start_s: 400.0,
                outage_duration_s: 2_000.0,
                partition_pool: 0,
                // First matches land at the t=60 negotiation cycle; their
                // slow origin-bound transfers are still in flight when the
                // partition opens.
                partition_start_s: 100.0,
                partition_duration_s: 1_500.0,
                preempt_prob: 0.9,
            },
            ..Default::default()
        },
        shards,
        ..ClusterConfig::with_cache()
    };
    let specs: Vec<JobSpec> = (0..40)
        .map(|i| {
            let mut s = JobSpec::fixed(format!("t.{i}"), 300.0);
            s.inputs.push(InputFile {
                name: format!("rupt.{i}.bin"),
                size_mb: 2_000.0,
                cacheable: false,
            });
            s
        })
        .collect();
    let pending = specs
        .into_iter()
        .map(|spec| SubmitRequest {
            owner: OwnerId(0),
            spec,
        })
        .collect();
    Cluster::new(cfg, 3)
        .with_obs(obs)
        .run(&mut Bag::from_requests(pending))
}

/// A compact federated run built to push job events *across the shard
/// boundary*: an early outage of the dedicated pool displaces running
/// jobs whose next match lands in a different pool — a different lane,
/// and (at `shards > 1`) a different physical heap — emitting ULOG 030
/// migration lines. The scenario behind `sharded_run.log`, whose
/// fixture is regenerated at `shards = 4` and must byte-match every
/// other shard count.
pub fn sharded_run(shards: usize, obs: Obs) -> RunReport {
    let cfg = ClusterConfig {
        pool: quiet_pool(12, 2),
        federation: FederationConfig {
            enabled: true,
            failover_enabled: true,
            checkpoint_enabled: true,
            checkpoint_interval_s: 30.0,
            burst_idle_threshold: 0,
            cloud_spinup_s: 30.0,
            ..Default::default()
        },
        faults: FaultConfig {
            seed: 5,
            pool: PoolFaultConfig {
                outage_pool: 1,
                outage_start_s: 200.0,
                outage_duration_s: 3_000.0,
                ..Default::default()
            },
            ..Default::default()
        },
        shards,
        ..ClusterConfig::with_cache()
    };
    let specs: Vec<JobSpec> = (0..12)
        .map(|i| {
            let mut s = JobSpec::fixed(format!("m.{i}"), 400.0);
            s.inputs.push(InputFile {
                name: format!("wave.{i}.bin"),
                size_mb: 800.0,
                cacheable: false,
            });
            s
        })
        .collect();
    let pending = specs
        .into_iter()
        .map(|spec| SubmitRequest {
            owner: OwnerId(0),
            spec,
        })
        .collect();
    Cluster::new(cfg, 5)
        .with_obs(obs)
        .run(&mut Bag::from_requests(pending))
}
