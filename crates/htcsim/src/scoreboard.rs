//! Per-machine reliability scoreboard: the pool-side half of the
//! self-healing defenses.
//!
//! Real OSPool users defend against "black hole" machines (nodes that
//! match fast and kill everything they run) by tracking per-machine job
//! history (`JobMachineAttrs`) and steering rematches away from repeat
//! offenders. This module reproduces that loop deterministically: every
//! execution outcome is recorded into a fast-failure EWMA per machine;
//! machines over the deprioritization threshold sort to the back of the
//! matchmaking order, and machines with enough *consecutive* fast
//! failures are blacklisted outright for a timed parole window. A
//! paroled machine that proves itself with one successful execution is
//! fully trusted again; one that fast-fails on parole goes straight back
//! on the blacklist.
//!
//! The scoreboard also owns the single black-hole *injection* site:
//! [`Scoreboard::black_hole_kills`] is the only place the simulator asks
//! the fault plan whether a machine eats jobs, so injection and defense
//! share one code path. The defense itself never reads the plan — it
//! observes failures exactly as a real negotiator would.

use std::collections::BTreeMap;

use crate::fault::FaultPlan;
use crate::pool::MachineId;

/// Knobs for the pool-side defenses. Everything defaults to *off* so a
/// default cluster behaves exactly as before this layer existed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefenseConfig {
    /// Master switch for the reliability scoreboard (deprioritization +
    /// blacklist/parole).
    pub scoreboard_enabled: bool,
    /// EWMA smoothing factor in `(0, 1]`; higher weights recent outcomes
    /// more.
    pub ewma_alpha: f64,
    /// An execution failure at or under this many seconds counts as a
    /// *fast* failure (the black-hole signature).
    pub fast_fail_s: f64,
    /// Machines with a fast-failure EWMA at or above this are matched
    /// only when no cleaner machine fits.
    pub deprioritize_threshold: f64,
    /// Consecutive fast failures that trigger a blacklist (0 disables
    /// blacklisting even when the scoreboard is on).
    pub blacklist_after: u32,
    /// Seconds a blacklisted machine sits out before parole.
    pub parole_s: f64,
    /// Master switch for verify-on-read transfer checksums.
    pub checksum_enabled: bool,
    /// Seconds a checksum-held job waits before automatic release (a
    /// re-fetch retry, much shorter than an operator-scale hold).
    pub checksum_requeue_s: f64,
}

impl Default for DefenseConfig {
    fn default() -> Self {
        DefenseConfig {
            scoreboard_enabled: false,
            ewma_alpha: 0.4,
            fast_fail_s: 60.0,
            deprioritize_threshold: 0.5,
            blacklist_after: 2,
            parole_s: 1800.0,
            checksum_enabled: false,
            checksum_requeue_s: 30.0,
        }
    }
}

impl DefenseConfig {
    /// True when any defense is switched on.
    pub fn any_enabled(&self) -> bool {
        self.scoreboard_enabled || self.checksum_enabled
    }

    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.scoreboard_enabled {
            if !(0.0 < self.ewma_alpha && self.ewma_alpha <= 1.0) {
                return Err(format!(
                    "ewma_alpha must be in (0, 1], got {}",
                    self.ewma_alpha
                ));
            }
            if !(0.0..=1.0).contains(&self.deprioritize_threshold) {
                return Err(format!(
                    "deprioritize_threshold must be in [0, 1], got {}",
                    self.deprioritize_threshold
                ));
            }
            if self.fast_fail_s < 0.0 {
                return Err("fast_fail_s must be non-negative".into());
            }
            if self.blacklist_after > 0 && self.parole_s <= 0.0 {
                return Err("parole_s must be positive when blacklisting is on".into());
            }
        }
        if self.checksum_enabled && self.checksum_requeue_s <= 0.0 {
            return Err("checksum_requeue_s must be positive".into());
        }
        Ok(())
    }
}

/// Trust state of one machine.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Trust {
    /// Normal standing (may still be deprioritized by EWMA).
    Trusted,
    /// Removed from matchmaking until the stored sim-time.
    Blacklisted { until: f64 },
    /// Served the blacklist term; one success restores trust, one fast
    /// failure re-blacklists.
    Parole,
}

#[derive(Debug, Clone, Copy)]
struct MachineScore {
    /// EWMA of the fast-failure indicator (1 = every recent exec was a
    /// fast failure).
    ewma: f64,
    /// Current run of consecutive fast failures.
    consecutive_fast: u32,
    trust: Trust,
}

impl Default for MachineScore {
    fn default() -> Self {
        MachineScore {
            ewma: 0.0,
            consecutive_fast: 0,
            trust: Trust::Trusted,
        }
    }
}

/// Running totals of defense actions, for `RunReport` and telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefenseStats {
    /// Machines placed on the blacklist (re-blacklists count again).
    pub blacklists: u64,
    /// Blacklist terms that expired into parole.
    pub paroles: u64,
    /// Corrupted cache entries detected and quarantined.
    pub quarantines: u64,
}

/// The per-machine reliability scoreboard.
#[derive(Debug, Clone, Default)]
pub struct Scoreboard {
    cfg: DefenseConfig,
    // BTreeMap: iterated when splitting the match order, so ordering
    // must be deterministic.
    scores: BTreeMap<u64, MachineScore>,
    stats: DefenseStats,
}

impl Scoreboard {
    /// Build a scoreboard for a defense configuration.
    pub fn new(cfg: DefenseConfig) -> Self {
        Scoreboard {
            cfg,
            ..Default::default()
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DefenseConfig {
        &self.cfg
    }

    /// Defense action totals so far.
    pub fn stats(&self) -> DefenseStats {
        self.stats
    }

    /// Count one quarantined cache entry (recorded here so every defense
    /// total lives on the scoreboard).
    pub fn record_quarantine(&mut self) {
        self.stats.quarantines += 1;
    }

    /// The single black-hole injection site: does `machine` kill the jobs
    /// it runs? Delegates to the fault plan; the defense half of the
    /// scoreboard never consults this, it only observes outcomes.
    pub fn black_hole_kills(&self, plan: &FaultPlan, machine: MachineId) -> bool {
        plan.is_black_hole(machine.0)
    }

    /// Record the outcome of one execution attempt on `machine`:
    /// `failed` with `exec_secs` at or under the fast-fail threshold is
    /// the black-hole signature. A new blacklisting shows up as a bump
    /// in [`Scoreboard::stats`].
    pub fn record_exec(&mut self, machine: MachineId, now_s: f64, exec_secs: f64, failed: bool) {
        if !self.cfg.scoreboard_enabled {
            return;
        }
        let fast_fail = failed && exec_secs <= self.cfg.fast_fail_s;
        let alpha = self.cfg.ewma_alpha;
        let entry = self.scores.entry(machine.0).or_default();
        entry.ewma = alpha * if fast_fail { 1.0 } else { 0.0 } + (1.0 - alpha) * entry.ewma;
        if fast_fail {
            entry.consecutive_fast += 1;
        } else {
            entry.consecutive_fast = 0;
            if !failed && entry.trust == Trust::Parole {
                // Parole served cleanly: fully trusted again.
                entry.trust = Trust::Trusted;
            }
        }
        let relapse = fast_fail && entry.trust == Trust::Parole;
        let threshold_hit = self.cfg.blacklist_after > 0
            && entry.consecutive_fast >= self.cfg.blacklist_after
            && !matches!(entry.trust, Trust::Blacklisted { .. });
        if relapse || threshold_hit {
            entry.trust = Trust::Blacklisted {
                until: now_s + self.cfg.parole_s,
            };
            self.stats.blacklists += 1;
        }
    }

    /// True when the machine is deprioritized: matched only after every
    /// machine in good standing.
    fn suspect(&self, score: &MachineScore) -> bool {
        score.trust == Trust::Parole || score.ewma >= self.cfg.deprioritize_threshold
    }

    /// Filter and order candidate machines for one negotiation cycle.
    ///
    /// Expired blacklist terms transition to parole here (time advances
    /// only at negotiation). Still-blacklisted machines are dropped;
    /// machines in good standing keep their relative order, followed by
    /// the suspect tier (paroled or EWMA over threshold) in theirs.
    /// Returns the split point: entries `[0, split)` are the good tier.
    pub fn admit<T>(
        &mut self,
        now_s: f64,
        slots: Vec<T>,
        id_of: impl Fn(&T) -> MachineId,
    ) -> (Vec<T>, usize) {
        if !self.cfg.scoreboard_enabled {
            let n = slots.len();
            return (slots, n);
        }
        let mut good = Vec::with_capacity(slots.len());
        let mut suspect = Vec::new();
        for entry in slots {
            match self.scores.get_mut(&id_of(&entry).0) {
                Some(score) => {
                    if let Trust::Blacklisted { until } = score.trust {
                        if now_s < until {
                            continue;
                        }
                        score.trust = Trust::Parole;
                        self.stats.paroles += 1;
                    }
                    let score = *score;
                    if self.suspect(&score) {
                        suspect.push(entry);
                    } else {
                        good.push(entry);
                    }
                }
                None => good.push(entry),
            }
        }
        let split = good.len();
        good.extend(suspect);
        (good, split)
    }

    /// Settle trust state at a point in time without a negotiation
    /// cycle: blacklist terms that have expired by `now_s` transition to
    /// parole (counted in [`Scoreboard::stats`]).
    ///
    /// Called at end of run so final metrics don't report a machine as
    /// still blacklisted when its parole timer elapsed — parole
    /// otherwise only happens when [`Scoreboard::admit`] sees the
    /// machine, and a machine blacklisted right at campaign end never
    /// is.
    pub fn reckon(&mut self, now_s: f64) {
        if !self.cfg.scoreboard_enabled {
            return;
        }
        for score in self.scores.values_mut() {
            if let Trust::Blacklisted { until } = score.trust {
                if now_s >= until {
                    score.trust = Trust::Parole;
                    self.stats.paroles += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;

    fn on() -> DefenseConfig {
        DefenseConfig {
            scoreboard_enabled: true,
            ..Default::default()
        }
    }

    fn slots(ids: &[u64]) -> Vec<(MachineId, ())> {
        ids.iter().map(|&i| (MachineId(i), ())).collect()
    }

    fn ids(v: &[(MachineId, ())]) -> Vec<u64> {
        v.iter().map(|(m, _)| m.0).collect()
    }

    #[test]
    fn disabled_scoreboard_is_inert() {
        let mut sb = Scoreboard::new(DefenseConfig::default());
        for _ in 0..10 {
            sb.record_exec(MachineId(1), 0.0, 5.0, true);
        }
        let (admitted, split) = sb.admit(1e6, slots(&[1, 2, 3]), |e| e.0);
        assert_eq!(ids(&admitted), vec![1, 2, 3]);
        assert_eq!(split, 3);
        assert_eq!(sb.stats(), DefenseStats::default());
    }

    #[test]
    fn consecutive_fast_failures_blacklist_then_parole() {
        let mut sb = Scoreboard::new(on());
        sb.record_exec(MachineId(7), 100.0, 30.0, true);
        sb.record_exec(MachineId(7), 200.0, 30.0, true);
        assert_eq!(sb.stats().blacklists, 1);
        // Inside the term: machine filtered out.
        let (admitted, split) = sb.admit(300.0, slots(&[5, 7]), |e| e.0);
        assert_eq!(ids(&admitted), vec![5]);
        assert_eq!(split, 1);
        // After the term: paroled, admitted in the suspect tier.
        let (admitted, split) = sb.admit(200.0 + 1801.0, slots(&[5, 7]), |e| e.0);
        assert_eq!(ids(&admitted), vec![5, 7]);
        assert_eq!(split, 1);
        assert_eq!(sb.stats().paroles, 1);
    }

    #[test]
    fn parole_success_restores_trust_and_relapse_reblacklists() {
        let mut sb = Scoreboard::new(on());
        for t in [0.0, 10.0] {
            sb.record_exec(MachineId(1), t, 5.0, true);
            sb.record_exec(MachineId(2), t, 5.0, true);
        }
        assert_eq!(sb.stats().blacklists, 2);
        let (_, _) = sb.admit(10.0 + 2000.0, slots(&[1, 2]), |e| e.0);
        assert_eq!(sb.stats().paroles, 2);
        // Machine 1 redeems itself; machine 2 relapses.
        sb.record_exec(MachineId(1), 3000.0, 300.0, false);
        sb.record_exec(MachineId(2), 3000.0, 5.0, true);
        assert_eq!(sb.stats().blacklists, 3, "relapse re-blacklists");
        let (admitted, _) = sb.admit(3100.0, slots(&[1, 2]), |e| e.0);
        assert_eq!(ids(&admitted), vec![1], "machine 2 is back inside");
        // Redeemed machine 1 may still sit in the suspect tier until its
        // EWMA decays below the threshold.
        let mut m1_good = false;
        for t in 0..10 {
            sb.record_exec(MachineId(1), 3200.0 + t as f64, 300.0, false);
            let (adm, split) = sb.admit(4000.0, slots(&[1]), |e| e.0);
            m1_good = ids(&adm) == vec![1] && split == 1;
            if m1_good {
                break;
            }
        }
        assert!(m1_good, "successes must decay the EWMA back to trusted");
    }

    #[test]
    fn ewma_deprioritizes_without_blacklisting() {
        let cfg = DefenseConfig {
            blacklist_after: 0, // blacklisting off, deprioritization on
            ..on()
        };
        let mut sb = Scoreboard::new(cfg);
        sb.record_exec(MachineId(9), 0.0, 5.0, true);
        sb.record_exec(MachineId(9), 1.0, 5.0, true);
        assert_eq!(sb.stats().blacklists, 0);
        let (admitted, split) = sb.admit(10.0, slots(&[9, 4]), |e| e.0);
        assert_eq!(ids(&admitted), vec![4, 9], "offender sorts to the back");
        assert_eq!(split, 1);
    }

    #[test]
    fn slow_failures_are_not_fast_failures() {
        let mut sb = Scoreboard::new(on());
        for t in 0..10 {
            sb.record_exec(MachineId(3), t as f64, 500.0, true);
        }
        assert_eq!(sb.stats().blacklists, 0);
        let (_, split) = sb.admit(100.0, slots(&[3]), |e| e.0);
        assert_eq!(split, 1, "slow failures never deprioritize");
    }

    #[test]
    fn reckon_paroles_expired_blacklists_without_a_negotiation() {
        // Regression: a machine blacklisted right at campaign end used to
        // stay "blacklisted" in final metrics forever, because parole only
        // happened inside admit() and no further negotiation ran.
        let mut sb = Scoreboard::new(on());
        sb.record_exec(MachineId(7), 100.0, 30.0, true);
        sb.record_exec(MachineId(7), 200.0, 30.0, true);
        assert_eq!(sb.stats().blacklists, 1);
        assert_eq!(sb.stats().paroles, 0);
        // Before the term elapses reckon() changes nothing.
        sb.reckon(300.0);
        assert_eq!(sb.stats().paroles, 0);
        // After the term it settles the machine into parole.
        sb.reckon(200.0 + 1801.0);
        assert_eq!(sb.stats().paroles, 1);
        // Idempotent: a second settle does not double-count.
        sb.reckon(1e9);
        assert_eq!(sb.stats().paroles, 1);
        // A disabled scoreboard stays inert.
        let mut off = Scoreboard::new(DefenseConfig::default());
        off.reckon(1e9);
        assert_eq!(off.stats(), DefenseStats::default());
    }

    #[test]
    fn injection_site_delegates_to_the_plan() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 42,
            black_hole_fraction: 1.0,
            ..Default::default()
        });
        let sb = Scoreboard::new(DefenseConfig::default());
        assert!(sb.black_hole_kills(&plan, MachineId(7)));
        let clean = FaultPlan::new(FaultConfig::default());
        assert!(!sb.black_hole_kills(&clean, MachineId(7)));
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        DefenseConfig::default().validate().unwrap();
        let mut cfg = on();
        cfg.validate().unwrap();
        cfg.ewma_alpha = 0.0;
        assert!(cfg.validate().is_err());
        cfg.ewma_alpha = 0.4;
        cfg.parole_s = 0.0;
        assert!(cfg.validate().is_err());
        let bad_ck = DefenseConfig {
            checksum_enabled: true,
            checksum_requeue_s: 0.0,
            ..Default::default()
        };
        assert!(bad_ck.validate().is_err());
    }
}
