//! Typed vocabulary of the multi-tenant campaign front-end ("FDW as a
//! service"): the reasons an admission controller rejects a request, the
//! reasons the load shedder drops one, the graceful-degradation modes,
//! and the artifact kinds the content-addressed shared store serves.
//!
//! These enums ride on [`crate::job::JobEvent`]s (codes `033`–`038` in
//! [`crate::condor_log::codes`]) the same way [`crate::fault::HoldReason`]
//! rides on `012` events: each has a stable human-readable `text()` that
//! the ULOG writer emits and a `parse()` that recovers the variant
//! losslessly, so the paper-style shell pipeline (`grep '034 ' ... | sort
//! | uniq -c`) can attribute every dropped request to a typed cause.

/// Why admission control refused a campaign request outright (ULOG `034`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RejectReason {
    /// The tenant already has its full quota of campaigns outstanding
    /// (queued + in flight).
    QuotaExceeded,
    /// The tenant's bounded submit queue is full.
    QueueFull,
    /// The tenant's circuit breaker is open after repeated campaign
    /// failures; requests are refused until the probe timer expires.
    CircuitOpen,
}

impl RejectReason {
    /// The ULOG reason string.
    pub fn text(self) -> &'static str {
        match self {
            RejectReason::QuotaExceeded => "Per-tenant quota exceeded",
            RejectReason::QueueFull => "Tenant queue full",
            RejectReason::CircuitOpen => "Tenant circuit breaker open",
        }
    }

    /// Parse a ULOG reason string back to the variant.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim() {
            "Per-tenant quota exceeded" => Some(RejectReason::QuotaExceeded),
            "Tenant queue full" => Some(RejectReason::QueueFull),
            "Tenant circuit breaker open" => Some(RejectReason::CircuitOpen),
            _ => None,
        }
    }
}

/// Why the load shedder dropped an already-admitted request (ULOG `035`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShedReason {
    /// Even starting immediately, the campaign could not finish before
    /// its deadline — running it would only burn capacity.
    DeadlineUnreachable,
    /// The service-wide backlog crossed the shedding watermark; the
    /// request was dropped to protect queued work that can still win.
    BacklogOverflow,
}

impl ShedReason {
    /// The ULOG reason string.
    pub fn text(self) -> &'static str {
        match self {
            ShedReason::DeadlineUnreachable => "Deadline unreachable",
            ShedReason::BacklogOverflow => "Global backlog overflow",
        }
    }

    /// Parse a ULOG reason string back to the variant.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim() {
            "Deadline unreachable" => Some(ShedReason::DeadlineUnreachable),
            "Global backlog overflow" => Some(ShedReason::BacklogOverflow),
            _ => None,
        }
    }
}

/// Graceful-degradation mode applied to a campaign under sustained
/// overload (ULOG `036`): the service trades fidelity for throughput
/// instead of failing the request outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeMode {
    /// Slip fields are drawn from a truncated Karhunen-Loève expansion
    /// instead of the exact Cholesky factor — cheaper factorisation and
    /// draws, smoother fields.
    TruncatedKl,
    /// Truncated-KL draws *and* half the requested scenario replicas —
    /// the deepest rung of the ladder.
    ReducedReplicas,
}

impl DegradeMode {
    /// The ULOG mode string.
    pub fn text(self) -> &'static str {
        match self {
            DegradeMode::TruncatedKl => "Truncated Karhunen-Loeve",
            DegradeMode::ReducedReplicas => "Reduced replica count",
        }
    }

    /// Parse a ULOG mode string back to the variant.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim() {
            "Truncated Karhunen-Loeve" => Some(DegradeMode::TruncatedKl),
            "Reduced replica count" => Some(DegradeMode::ReducedReplicas),
            _ => None,
        }
    }
}

/// The recyclable artifact classes the content-addressed shared store
/// serves fleet-wide (ULOG `037`/`038`) — the FDW's `.npy` distance
/// matrices, Green's-function libraries, and correlated-field factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ArtifactKind {
    /// Subfault/station distance matrices (the recycled `.npy` pair).
    DistanceMatrix,
    /// The Green's-function library (B phase).
    GfLibrary,
    /// A factored correlated slip field (the `FactorCache` payload).
    Factor,
}

impl ArtifactKind {
    /// The ULOG artifact label.
    pub fn text(self) -> &'static str {
        match self {
            ArtifactKind::DistanceMatrix => "distance-matrix",
            ArtifactKind::GfLibrary => "gf-library",
            ArtifactKind::Factor => "factor",
        }
    }

    /// Parse a ULOG artifact label back to the variant.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim() {
            "distance-matrix" => Some(ArtifactKind::DistanceMatrix),
            "gf-library" => Some(ArtifactKind::GfLibrary),
            "factor" => Some(ArtifactKind::Factor),
            _ => None,
        }
    }

    /// Every artifact kind, in declaration order.
    pub const ALL: [ArtifactKind; 3] = [
        ArtifactKind::DistanceMatrix,
        ArtifactKind::GfLibrary,
        ArtifactKind::Factor,
    ];
}

/// The service-layer payload a [`crate::job::JobEvent`] may carry —
/// exactly one of the typed reasons above, selected by the event kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceDetail {
    /// Payload of a `ServiceRejected` event.
    Reject(RejectReason),
    /// Payload of a `ServiceShed` event.
    Shed(ShedReason),
    /// Payload of a `ServiceDegraded` event.
    Degrade(DegradeMode),
    /// Payload of an `ArtifactHit` / `ArtifactQuarantined` event.
    Artifact(ArtifactKind),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasons_roundtrip_through_text() {
        for r in [
            RejectReason::QuotaExceeded,
            RejectReason::QueueFull,
            RejectReason::CircuitOpen,
        ] {
            assert_eq!(RejectReason::parse(r.text()), Some(r));
        }
        for s in [ShedReason::DeadlineUnreachable, ShedReason::BacklogOverflow] {
            assert_eq!(ShedReason::parse(s.text()), Some(s));
        }
        for d in [DegradeMode::TruncatedKl, DegradeMode::ReducedReplicas] {
            assert_eq!(DegradeMode::parse(d.text()), Some(d));
        }
        for a in ArtifactKind::ALL {
            assert_eq!(ArtifactKind::parse(a.text()), Some(a));
        }
    }

    #[test]
    fn unknown_texts_are_rejected() {
        assert_eq!(RejectReason::parse("Server on fire"), None);
        assert_eq!(ShedReason::parse(""), None);
        assert_eq!(DegradeMode::parse("faster"), None);
        assert_eq!(ArtifactKind::parse("waveform"), None);
    }
}
