//! The single-machine baseline: serial/bounded-parallel execution of a job
//! list on one host — the "automated version of MudPy's FakeQuakes on a
//! single AWS instance" the paper's §6 compares the FDW against.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::job::JobSpec;
use crate::time::SimTime;

/// A single machine with a fixed number of 4-core job slots (the AWS
/// baseline instance has 4 Xeon CPUs → 1 concurrent FakeQuakes job).
#[derive(Debug, Clone, Copy)]
pub struct SingleMachine {
    /// Concurrent job slots (1 for the paper's baseline instance).
    pub slots: usize,
    /// Relative speed of the machine.
    pub speed: f64,
}

impl Default for SingleMachine {
    fn default() -> Self {
        Self {
            slots: 1,
            speed: 1.0,
        }
    }
}

/// Result of a single-machine run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleRunReport {
    /// Total wall-clock makespan.
    pub makespan: SimTime,
    /// Jobs executed.
    pub jobs: usize,
    /// Average total throughput, jobs per minute.
    pub throughput_jpm: f64,
}

impl SingleMachine {
    /// Execute the job list to completion with list scheduling (longest
    /// queue position first-come-first-served — the order given). Transfer
    /// times are zero: everything is local on one host.
    pub fn run(&self, specs: &[JobSpec], seed: u64) -> SingleRunReport {
        assert!(self.slots > 0, "machine must have at least one slot");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5349_4e47_4c45);
        // Slot finish times.
        let mut slots = vec![0f64; self.slots];
        for spec in specs {
            // Earliest-free slot takes the next job (FCFS list schedule).
            let (idx, _) = slots
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .expect("at least one slot");
            let dur = spec.exec.sample(&mut rng) / self.speed;
            slots[idx] += dur;
        }
        let makespan = slots.iter().cloned().fold(0.0, f64::max);
        let jobs = specs.len();
        let mins = (makespan / 60.0).max(f64::MIN_POSITIVE);
        SingleRunReport {
            makespan: SimTime::from_secs(makespan.ceil() as u64),
            jobs,
            throughput_jpm: if jobs == 0 { 0.0 } else { jobs as f64 / mins },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_runtime_is_sum() {
        let m = SingleMachine::default();
        let specs: Vec<JobSpec> = (0..10)
            .map(|i| JobSpec::fixed(format!("j{i}"), 100.0))
            .collect();
        let r = m.run(&specs, 1);
        assert_eq!(r.makespan.as_secs(), 1000);
        assert_eq!(r.jobs, 10);
        assert!((r.throughput_jpm - 10.0 / (1000.0 / 60.0)).abs() < 1e-9);
    }

    #[test]
    fn more_slots_divide_runtime() {
        let specs: Vec<JobSpec> = (0..12)
            .map(|i| JobSpec::fixed(format!("j{i}"), 100.0))
            .collect();
        let serial = SingleMachine {
            slots: 1,
            speed: 1.0,
        }
        .run(&specs, 1);
        let quad = SingleMachine {
            slots: 4,
            speed: 1.0,
        }
        .run(&specs, 1);
        assert_eq!(quad.makespan.as_secs() * 4, serial.makespan.as_secs());
    }

    #[test]
    fn speed_scales_runtime() {
        let specs = vec![JobSpec::fixed("j", 100.0)];
        let slow = SingleMachine {
            slots: 1,
            speed: 0.5,
        }
        .run(&specs, 1);
        assert_eq!(slow.makespan.as_secs(), 200);
    }

    #[test]
    fn empty_job_list() {
        let r = SingleMachine::default().run(&[], 1);
        assert_eq!(r.makespan, SimTime::ZERO);
        assert_eq!(r.throughput_jpm, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        SingleMachine {
            slots: 0,
            speed: 1.0,
        }
        .run(&[], 1);
    }

    #[test]
    fn deterministic_with_stochastic_models() {
        let specs: Vec<JobSpec> = (0..20)
            .map(|i| {
                let mut s = JobSpec::fixed(format!("j{i}"), 100.0);
                s.exec = crate::job::ExecModel::LogNormalMedian {
                    median_s: 100.0,
                    sigma: 0.4,
                };
                s
            })
            .collect();
        let a = SingleMachine::default().run(&specs, 7);
        let b = SingleMachine::default().run(&specs, 7);
        assert_eq!(a, b);
        let c = SingleMachine::default().run(&specs, 8);
        assert_ne!(a.makespan, c.makespan);
    }
}
