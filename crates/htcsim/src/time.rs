//! Simulated time: whole seconds since the start of a simulation.
//!
//! HTCondor user logs timestamp events at 1-second resolution, and the
//! paper's bursting simulator replays batches second by second, so a u64
//! second counter is the natural clock for the whole stack.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (seconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s)
    }

    /// Construct from minutes.
    pub fn from_mins(m: u64) -> Self {
        SimTime(m * 60)
    }

    /// Construct from hours.
    pub fn from_hours(h: u64) -> Self {
        SimTime(h * 3600)
    }

    /// Value in seconds.
    pub fn as_secs(self) -> u64 {
        self.0
    }

    /// Value in fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60.0
    }

    /// Value in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let h = self.0 / 3600;
        let m = (self.0 % 3600) / 60;
        let s = self.0 % 60;
        write!(f, "{h:02}:{m:02}:{s:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(SimTime::from_mins(2).as_secs(), 120);
        assert_eq!(SimTime::from_hours(1).as_secs(), 3600);
        assert_eq!(SimTime::from_secs(90).as_mins_f64(), 1.5);
        assert_eq!(SimTime::from_secs(1800).as_hours_f64(), 0.5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(100);
        assert_eq!((t + 20).as_secs(), 120);
        let mut u = t;
        u += 5;
        assert_eq!(u.as_secs(), 105);
        assert_eq!(u - t, 5);
        assert_eq!(t - u, 0); // saturating
        assert_eq!(u.since(t), 5);
        assert_eq!(t.since(u), 0);
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::from_secs(3_725).to_string(), "01:02:05");
        assert_eq!(SimTime::ZERO.to_string(), "00:00:00");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }
}
