//! File transfer model with a Stash/OSDF cache.
//!
//! OSG distributes large, shared input files (the FDW's Singularity image,
//! `.npy` distance matrices, and `.mseed` GF bundles) through regional
//! caches. The first job at a site pulls a file from the origin; subsequent
//! jobs at that site hit the cache and stage in an order of magnitude
//! faster. This module models exactly that, plus plain origin transfers for
//! non-cacheable files and outputs.

use std::collections::{HashMap, HashSet};

use crate::fault::FaultPlan;
use crate::job::JobSpec;

/// Identifier of a site (a university cluster contributing glideins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

/// Bandwidths of the transfer paths, MB/s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferConfig {
    /// Origin (submit-node) to execute-node bandwidth per transfer, MB/s.
    pub origin_mbps: f64,
    /// Aggregate capacity of the origin's uplink, MB/s. Concurrent origin
    /// fetches share it; this is why OSG fronts large shared inputs with
    /// the Stash cache at all. `f64::INFINITY` disables contention.
    pub origin_capacity_mbps: f64,
    /// Site cache to execute-node bandwidth, MB/s (caches are
    /// distributed, so no shared-capacity term).
    pub cache_mbps: f64,
    /// Fixed per-transfer latency, seconds (connection setup, directory
    /// creation, Singularity start).
    pub setup_latency_s: f64,
}

impl Default for TransferConfig {
    fn default() -> Self {
        Self {
            origin_mbps: 25.0,
            origin_capacity_mbps: 400.0,
            cache_mbps: 250.0,
            setup_latency_s: 10.0,
        }
    }
}

impl TransferConfig {
    /// Effective per-transfer origin bandwidth when `active` origin
    /// transfers (including this one) share the uplink.
    pub fn effective_origin_mbps(&self, active: usize) -> f64 {
        let share = self.origin_capacity_mbps / active.max(1) as f64;
        self.origin_mbps.min(share).max(0.01)
    }
}

/// Outcome of one defended stage-in ([`StashCache::stage_in_verified`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StagedIn {
    /// Transfer time in seconds (includes time spent pulling a copy
    /// that then failed verification).
    pub secs: f64,
    /// Whether any input came over the origin uplink.
    pub used_origin: bool,
    /// Corrupted cache entries detected and evicted during this
    /// stage-in (non-zero only with verification on).
    pub quarantined: u32,
    /// Whether an *undetected* corrupted file was delivered to the job
    /// (non-zero corruption with verification off).
    pub poisoned: bool,
}

/// The Stash cache: per-site sets of already-cached file names.
///
/// Corruption model: each insertion of a cacheable file rolls the fault
/// plan's `corrupt` domain once, keyed by `(site, file, generation)`
/// where the generation counts insertions of that key — so a re-fetch
/// after a quarantine rolls a fresh (usually clean) copy. A corrupted
/// entry serves poisoned bytes on every hit until verify-on-read
/// quarantines it.
#[derive(Debug, Clone, Default)]
pub struct StashCache {
    cached: HashSet<(SiteId, String)>,
    /// Insertion count per key (point lookups only; never iterated).
    generations: HashMap<(SiteId, String), u64>,
    corrupt: HashSet<(SiteId, String)>,
    hits: u64,
    misses: u64,
    quarantines: u64,
    enabled: bool,
}

impl StashCache {
    /// Create an enabled cache.
    pub fn new() -> Self {
        Self {
            enabled: true,
            ..Default::default()
        }
    }

    /// Create a disabled cache (every fetch goes to the origin) — the
    /// `ablate_cache` bench baseline.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Default::default()
        }
    }

    /// Whether caching is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Corrupted entries detected and evicted so far.
    pub fn quarantines(&self) -> u64 {
        self.quarantines
    }

    /// Hit rate in `[0, 1]`; zero when nothing has been fetched.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Compute the stage-in time of all of `spec`'s inputs at `site`, in
    /// seconds, updating cache state. Cacheable files fetched at a site
    /// for the first time are pulled from the origin and become cached
    /// there.
    pub fn stage_in_secs(&mut self, site: SiteId, spec: &JobSpec, cfg: &TransferConfig) -> f64 {
        self.stage_in_secs_contended(site, spec, cfg, 1).0
    }

    /// Like [`Self::stage_in_secs`], but origin fetches run at the
    /// effective bandwidth given `active_origin` concurrent origin
    /// transfers. Returns `(seconds, used_origin)` so the caller can
    /// track the concurrent-transfer count.
    pub fn stage_in_secs_contended(
        &mut self,
        site: SiteId,
        spec: &JobSpec,
        cfg: &TransferConfig,
        active_origin: usize,
    ) -> (f64, bool) {
        let clean = FaultPlan::new(crate::fault::FaultConfig::default());
        let staged = self.stage_in_verified(site, spec, cfg, active_origin, &clean, false);
        (staged.secs, staged.used_origin)
    }

    /// Full defended stage-in: like [`Self::stage_in_secs_contended`],
    /// but cache insertions roll `plan`'s corruption domain and — with
    /// `verify` on — cache hits are checksum-verified. A corrupt hit
    /// under verification is quarantined (evicted from the cache) after
    /// paying its transfer time; the caller is expected to hold and
    /// re-queue the job, whose retry re-fetches from origin. A corrupt
    /// hit without verification is delivered silently and reported as
    /// `poisoned`.
    pub fn stage_in_verified(
        &mut self,
        site: SiteId,
        spec: &JobSpec,
        cfg: &TransferConfig,
        active_origin: usize,
        plan: &FaultPlan,
        verify: bool,
    ) -> StagedIn {
        let mut out = StagedIn {
            secs: cfg.setup_latency_s,
            used_origin: false,
            quarantined: 0,
            poisoned: false,
        };
        for f in &spec.inputs {
            let key = (site, f.name.clone());
            let cached = self.enabled && f.cacheable && self.cached.contains(&key);
            if cached {
                // The transfer itself happens either way; verification
                // runs on the delivered bytes.
                self.hits += 1;
                out.secs += f.size_mb / cfg.cache_mbps;
                if self.corrupt.contains(&key) {
                    if verify {
                        self.cached.remove(&key);
                        self.corrupt.remove(&key);
                        self.quarantines += 1;
                        out.quarantined += 1;
                    } else {
                        out.poisoned = true;
                    }
                }
            } else {
                if self.enabled && f.cacheable {
                    self.misses += 1;
                    self.cached.insert(key.clone());
                    let generation = self.generations.entry(key.clone()).or_insert(0);
                    *generation += 1;
                    if plan.cache_corrupts(site.0, &f.name, *generation) {
                        self.corrupt.insert(key);
                    }
                }
                out.secs += f.size_mb / cfg.effective_origin_mbps(active_origin);
                out.used_origin = true;
            }
        }
        out
    }

    /// Compute the stage-out time of a job's output, seconds. Outputs are
    /// never cached (they are unique per job).
    pub fn stage_out_secs(&self, spec: &JobSpec, cfg: &TransferConfig) -> f64 {
        cfg.setup_latency_s / 2.0 + spec.output_mb / cfg.origin_mbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::InputFile;

    fn job_with_input(name: &str, mb: f64, cacheable: bool) -> JobSpec {
        let mut j = JobSpec::fixed("t", 60.0);
        j.inputs.push(InputFile {
            name: name.into(),
            size_mb: mb,
            cacheable,
        });
        j
    }

    #[test]
    fn first_fetch_misses_then_hits() {
        let mut cache = StashCache::new();
        let cfg = TransferConfig::default();
        let j = job_with_input("gf.mseed", 1000.0, true);
        let site = SiteId(3);
        let cold = cache.stage_in_secs(site, &j, &cfg);
        let warm = cache.stage_in_secs(site, &j, &cfg);
        assert!(cold > warm * 3.0, "cold {cold} vs warm {warm}");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hit_rate(), 0.5);
    }

    #[test]
    fn caches_are_per_site() {
        let mut cache = StashCache::new();
        let cfg = TransferConfig::default();
        let j = job_with_input("gf.mseed", 1000.0, true);
        cache.stage_in_secs(SiteId(1), &j, &cfg);
        let other_site = cache.stage_in_secs(SiteId(2), &j, &cfg);
        // Both cold: different sites don't share cache contents.
        assert!(other_site > 40.0);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn non_cacheable_always_origin() {
        let mut cache = StashCache::new();
        let cfg = TransferConfig::default();
        let j = job_with_input("unique_input.bin", 500.0, false);
        let a = cache.stage_in_secs(SiteId(1), &j, &cfg);
        let b = cache.stage_in_secs(SiteId(1), &j, &cfg);
        assert_eq!(a, b);
        assert_eq!(cache.hits() + cache.misses(), 0);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut cache = StashCache::disabled();
        assert!(!cache.is_enabled());
        let cfg = TransferConfig::default();
        let j = job_with_input("gf.mseed", 1000.0, true);
        let a = cache.stage_in_secs(SiteId(1), &j, &cfg);
        let b = cache.stage_in_secs(SiteId(1), &j, &cfg);
        assert_eq!(a, b);
        assert_eq!(cache.hit_rate(), 0.0);
    }

    #[test]
    fn empty_inputs_cost_only_latency() {
        let mut cache = StashCache::new();
        let cfg = TransferConfig::default();
        let j = JobSpec::fixed("t", 60.0);
        assert_eq!(
            cache.stage_in_secs(SiteId(0), &j, &cfg),
            cfg.setup_latency_s
        );
    }

    #[test]
    fn stage_out_scales_with_output() {
        let cache = StashCache::new();
        let cfg = TransferConfig::default();
        let mut j = JobSpec::fixed("t", 60.0);
        j.output_mb = 250.0;
        let big = cache.stage_out_secs(&j, &cfg);
        j.output_mb = 10.0;
        let small = cache.stage_out_secs(&j, &cfg);
        assert!(big > small);
        assert!((big - (5.0 + 10.0)).abs() < 1e-9);
    }

    #[test]
    fn origin_contention_slows_concurrent_fetches() {
        let cfg = TransferConfig::default();
        // Few transfers: per-transfer bandwidth is the limit.
        assert_eq!(cfg.effective_origin_mbps(1), 25.0);
        assert_eq!(cfg.effective_origin_mbps(16), 25.0);
        // Many transfers: the uplink capacity is the limit.
        assert_eq!(cfg.effective_origin_mbps(40), 10.0);
        assert_eq!(cfg.effective_origin_mbps(400), 1.0);
        // Floor prevents zero bandwidth.
        assert!(cfg.effective_origin_mbps(usize::MAX) >= 0.01);
    }

    #[test]
    fn contended_stage_in_reports_origin_use() {
        let mut cache = StashCache::new();
        let cfg = TransferConfig::default();
        let j = job_with_input("gf.mseed", 1000.0, true);
        let (cold, used) = cache.stage_in_secs_contended(SiteId(0), &j, &cfg, 100);
        assert!(used, "first fetch hits the origin");
        let (uncontended, _) = cache.stage_in_secs_contended(SiteId(9), &j, &cfg, 1);
        assert!(cold > uncontended * 2.0, "{cold} vs {uncontended}");
        let (warm, used) = cache.stage_in_secs_contended(SiteId(0), &j, &cfg, 100);
        assert!(!used, "cache hit avoids the origin entirely");
        assert!(warm < uncontended);
    }

    #[test]
    fn infinite_capacity_disables_contention() {
        let cfg = TransferConfig {
            origin_capacity_mbps: f64::INFINITY,
            ..Default::default()
        };
        assert_eq!(cfg.effective_origin_mbps(1_000_000), 25.0);
    }

    #[test]
    fn verified_read_quarantines_and_refetch_is_clean() {
        use crate::fault::{FaultConfig, FaultPlan};
        // Every insertion corrupts; verification must catch each one.
        let plan = FaultPlan::new(FaultConfig {
            seed: 7,
            corrupt_prob: 1.0,
            ..Default::default()
        });
        let cfg = TransferConfig::default();
        let j = job_with_input("gf.mseed", 1000.0, true);
        let site = SiteId(3);
        let mut cache = StashCache::new();
        let cold = cache.stage_in_verified(site, &j, &cfg, 1, &plan, true);
        assert!(cold.used_origin && cold.quarantined == 0 && !cold.poisoned);
        // The cached copy is corrupt: the verified read pays the cache
        // transfer, detects, and evicts.
        let bad = cache.stage_in_verified(site, &j, &cfg, 1, &plan, true);
        assert_eq!(bad.quarantined, 1);
        assert!(!bad.poisoned && !bad.used_origin);
        assert_eq!(cache.quarantines(), 1);
        // Retry after quarantine: entry gone, origin re-fetch.
        let retry = cache.stage_in_verified(site, &j, &cfg, 1, &plan, true);
        assert!(retry.used_origin);
        assert_eq!(retry.quarantined, 0);
    }

    #[test]
    fn unverified_read_delivers_poison_silently() {
        use crate::fault::{FaultConfig, FaultPlan};
        let plan = FaultPlan::new(FaultConfig {
            seed: 7,
            corrupt_prob: 1.0,
            ..Default::default()
        });
        let cfg = TransferConfig::default();
        let j = job_with_input("gf.mseed", 1000.0, true);
        let site = SiteId(3);
        let mut cache = StashCache::new();
        cache.stage_in_verified(site, &j, &cfg, 1, &plan, false);
        // Without verification the corrupt entry persists and poisons
        // every subsequent hit at the site.
        for _ in 0..3 {
            let hit = cache.stage_in_verified(site, &j, &cfg, 1, &plan, false);
            assert!(hit.poisoned && hit.quarantined == 0);
        }
        assert_eq!(cache.quarantines(), 0);
    }

    #[test]
    fn zero_corruption_plan_matches_legacy_path() {
        use crate::fault::{FaultConfig, FaultPlan};
        let plan = FaultPlan::new(FaultConfig::default());
        let cfg = TransferConfig::default();
        let j = job_with_input("a.npy", 400.0, true);
        let mut a = StashCache::new();
        let mut b = StashCache::new();
        for site in [SiteId(0), SiteId(0), SiteId(1)] {
            let (secs, origin) = a.stage_in_secs_contended(site, &j, &cfg, 2);
            let v = b.stage_in_verified(site, &j, &cfg, 2, &plan, true);
            assert_eq!(secs, v.secs);
            assert_eq!(origin, v.used_origin);
            assert_eq!(v.quarantined, 0);
            assert!(!v.poisoned);
        }
        assert_eq!(a.hits(), b.hits());
        assert_eq!(a.misses(), b.misses());
    }

    #[test]
    fn multiple_inputs_accumulate() {
        let mut cache = StashCache::new();
        let cfg = TransferConfig::default();
        let mut j = job_with_input("a.npy", 250.0, true);
        j.inputs.push(InputFile {
            name: "b.npy".into(),
            size_mb: 250.0,
            cacheable: true,
        });
        let t = cache.stage_in_secs(SiteId(0), &j, &cfg);
        assert!((t - (10.0 + 500.0 / 25.0)).abs() < 1e-9);
    }
}
