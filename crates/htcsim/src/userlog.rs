//! The user log: the simulator's equivalent of HTCondor's per-job event
//! log, plus the post-processing the paper's shell scripts perform on it
//! (per-job wait/execution times, per-second instant throughput and
//! running-job counts) and CSV export in the two-file format the VDC
//! bursting simulator consumes.

use std::collections::HashMap;

use crate::csvlite;
use crate::job::{JobEvent, JobEventKind, JobId, OwnerId};
use crate::time::SimTime;

/// Per-job timing record distilled from the event log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobTimes {
    /// Job id.
    pub job: JobId,
    /// Owning submitter (DAGMan).
    pub owner: OwnerId,
    /// Queue entry time.
    pub submitted: SimTime,
    /// First `ExecuteStarted` (None if never started).
    pub first_execute: Option<SimTime>,
    /// Completion time (None if evicted forever / removed).
    pub completed: Option<SimTime>,
    /// Number of evictions suffered.
    pub evictions: u32,
    /// Whether the job was removed without completing.
    pub removed: bool,
    /// Number of times the job was held (012 events).
    pub holds: u32,
    /// Final exit code: `Some(0)` for a completion, the failing code for
    /// a non-zero termination, `None` if the job never terminated.
    pub exit_code: Option<i32>,
}

impl JobTimes {
    /// Wait time in seconds: submission to *last* execution start (the
    /// paper's scripts measure time not spent executing; retries count).
    pub fn wait_secs(&self) -> Option<u64> {
        self.first_execute.map(|e| e.since(self.submitted))
    }

    /// Execution (goodput) time: last execute to completion.
    pub fn exec_secs(&self) -> Option<u64> {
        match (self.first_execute, self.completed) {
            (Some(e), Some(c)) => Some(c.since(e)),
            _ => None,
        }
    }
}

/// The full event log of one cluster run.
#[derive(Debug, Clone, Default)]
pub struct UserLog {
    events: Vec<JobEvent>,
}

impl UserLog {
    /// Create an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event (called by the cluster).
    pub fn record(&mut self, ev: JobEvent) {
        self.events.push(ev);
    }

    /// All events, in record order (which is time order).
    pub fn events(&self) -> &[JobEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Distil per-job timing records. For evicted-and-retried jobs the
    /// execute time refers to the final (successful) attempt.
    pub fn job_times(&self) -> Vec<JobTimes> {
        let mut map: HashMap<JobId, JobTimes> = HashMap::new();
        let mut order: Vec<JobId> = Vec::new();
        for ev in &self.events {
            match ev.kind {
                JobEventKind::Submitted => {
                    order.push(ev.job);
                    map.insert(
                        ev.job,
                        JobTimes {
                            job: ev.job,
                            owner: ev.owner,
                            submitted: ev.time,
                            first_execute: None,
                            completed: None,
                            evictions: 0,
                            removed: false,
                            holds: 0,
                            exit_code: None,
                        },
                    );
                }
                JobEventKind::ExecuteStarted => {
                    if let Some(jt) = map.get_mut(&ev.job) {
                        // Last execute start wins (retries reset it): wait
                        // time then includes re-queue delays, matching how
                        // the paper's scripts treat badput.
                        jt.first_execute = Some(ev.time);
                    }
                }
                JobEventKind::Evicted => {
                    if let Some(jt) = map.get_mut(&ev.job) {
                        jt.evictions += 1;
                    }
                }
                JobEventKind::Completed => {
                    if let Some(jt) = map.get_mut(&ev.job) {
                        jt.completed = Some(ev.time);
                        jt.exit_code = ev.exit_code.or(Some(0));
                    }
                }
                JobEventKind::Removed => {
                    if let Some(jt) = map.get_mut(&ev.job) {
                        jt.removed = true;
                    }
                }
                JobEventKind::Failed => {
                    if let Some(jt) = map.get_mut(&ev.job) {
                        jt.exit_code = ev.exit_code;
                    }
                }
                JobEventKind::Held => {
                    if let Some(jt) = map.get_mut(&ev.job) {
                        jt.holds += 1;
                    }
                }
                // Preemptions and pool outages are displacement events
                // (like evictions, but charged to the pool fault domain);
                // JobTimes keeps its stable schema and tracks neither.
                // Service-layer events (admission, shedding, degradation,
                // artifact store) annotate requests rather than change
                // job timing, so they pass through untracked too.
                JobEventKind::Matched
                | JobEventKind::Released
                | JobEventKind::Preempted
                | JobEventKind::PoolOutage
                | JobEventKind::PartitionStalled
                | JobEventKind::Migrated
                | JobEventKind::ServiceAdmitted
                | JobEventKind::ServiceRejected
                | JobEventKind::ServiceShed
                | JobEventKind::ServiceDegraded
                | JobEventKind::ArtifactHit
                | JobEventKind::ArtifactQuarantined => {}
            }
        }
        order.into_iter().filter_map(|id| map.remove(&id)).collect()
    }

    /// Completed-job count.
    pub fn completed_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == JobEventKind::Completed)
            .count()
    }

    /// Makespan: time of the last event (the DAGMan's termination time).
    pub fn makespan(&self) -> SimTime {
        // Max rather than last: the cluster records in time order, but the
        // log API stays correct for callers that append out of order.
        self.events
            .iter()
            .map(|e| e.time)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Per-second instant throughput ω = completed / elapsed-minutes
    /// (paper eq. 5), evaluated at every second of the run.
    pub fn instant_throughput_series(&self) -> Vec<f64> {
        let end = self.makespan().as_secs() as usize;
        let mut completions = vec![0u32; end + 1];
        for e in &self.events {
            if e.kind == JobEventKind::Completed {
                completions[e.time.as_secs() as usize] += 1;
            }
        }
        let mut out = Vec::with_capacity(end + 1);
        let mut done = 0u64;
        for (s, c) in completions.iter().enumerate() {
            done += *c as u64;
            let mins = (s.max(1)) as f64 / 60.0;
            out.push(done as f64 / mins);
        }
        out
    }

    /// Per-second count of running (executing) jobs.
    pub fn running_series(&self) -> Vec<u32> {
        let end = self.makespan().as_secs() as usize;
        let mut delta = vec![0i32; end + 2];
        let mut started: HashMap<JobId, SimTime> = HashMap::new();
        for e in &self.events {
            match e.kind {
                JobEventKind::ExecuteStarted => {
                    started.insert(e.job, e.time);
                }
                JobEventKind::Completed
                | JobEventKind::Evicted
                | JobEventKind::Failed
                | JobEventKind::Held
                | JobEventKind::Removed
                | JobEventKind::Preempted
                | JobEventKind::PoolOutage => {
                    if let Some(s) = started.remove(&e.job) {
                        delta[s.as_secs() as usize] += 1;
                        delta[e.time.as_secs() as usize] -= 1;
                    }
                }
                _ => {}
            }
        }
        // Jobs still running at makespan.
        // fdwlint::allow(unordered-hash-iteration): commutative accumulation into a delta array — `+=` per bucket is order-insensitive
        for (_, s) in started {
            delta[s.as_secs() as usize] += 1;
            delta[end + 1] -= 1;
        }
        let mut out = Vec::with_capacity(end + 1);
        let mut cur = 0i32;
        for d in delta.iter().take(end + 1) {
            cur += d;
            out.push(cur.max(0) as u32);
        }
        out
    }

    /// Goodput/badput split: seconds of execution that led to a
    /// successful completion vs seconds lost to evictions, failures and
    /// holds — the "wasted OSG cycles" the paper's discussion attributes
    /// to the pool's volatility. Time from the last execute start to the
    /// terminal event counts toward whichever bucket that event selects.
    pub fn goodput_badput(&self) -> (u64, u64) {
        let mut started: HashMap<JobId, SimTime> = HashMap::new();
        let (mut good, mut bad) = (0u64, 0u64);
        for e in &self.events {
            match e.kind {
                JobEventKind::ExecuteStarted => {
                    started.insert(e.job, e.time);
                }
                JobEventKind::Completed => {
                    if let Some(s) = started.remove(&e.job) {
                        good += e.time.since(s);
                    }
                }
                JobEventKind::Evicted
                | JobEventKind::Failed
                | JobEventKind::Held
                | JobEventKind::Removed
                | JobEventKind::Preempted
                | JobEventKind::PoolOutage => {
                    // A mid-execution removal (condor_rm of a speculative
                    // loser, walltime policy), spot reclamation, or a
                    // pool outage wastes its cycles.
                    if let Some(s) = started.remove(&e.job) {
                        bad += e.time.since(s);
                    }
                }
                _ => {}
            }
        }
        (good, bad)
    }

    /// Export the batch-level CSV the bursting simulator requires:
    /// one row `(submit, execute, terminate)` for the whole DAGMan batch.
    pub fn batch_csv(&self) -> String {
        let submit = self
            .events
            .iter()
            .find(|e| e.kind == JobEventKind::Submitted)
            .map(|e| e.time.as_secs())
            .unwrap_or(0);
        let execute = self
            .events
            .iter()
            .find(|e| e.kind == JobEventKind::ExecuteStarted)
            .map(|e| e.time.as_secs())
            .unwrap_or(submit);
        let term = self.makespan().as_secs();
        csvlite::encode(
            &["submit_s", "execute_s", "terminate_s"],
            &[vec![
                submit.to_string(),
                execute.to_string(),
                term.to_string(),
            ]],
        )
    }

    /// Export the per-job CSV the bursting simulator requires: rows of
    /// `(job, owner, phase, submit, execute, terminate)`. The phase label
    /// is the prefix of the job name before the first '.'; the cluster
    /// stores it in the event log via job names, so the caller supplies a
    /// lookup from job id to name.
    pub fn jobs_csv(&self, name_of: impl Fn(JobId) -> String) -> String {
        let rows: Vec<Vec<String>> = self
            .job_times()
            .iter()
            .map(|jt| {
                let name = name_of(jt.job);
                let phase = name.split('.').next().unwrap_or("?").to_string();
                vec![
                    jt.job.0.to_string(),
                    jt.owner.0.to_string(),
                    phase,
                    jt.submitted.as_secs().to_string(),
                    jt.first_execute
                        .map(|t| t.as_secs().to_string())
                        .unwrap_or_default(),
                    jt.completed
                        .map(|t| t.as_secs().to_string())
                        .unwrap_or_default(),
                ]
            })
            .collect();
        csvlite::encode(
            &[
                "job",
                "owner",
                "phase",
                "submit_s",
                "execute_s",
                "terminate_s",
            ],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, j: u64, kind: JobEventKind) -> JobEvent {
        JobEvent::new(SimTime(t), JobId(j), OwnerId(0), kind)
    }

    fn sample_log() -> UserLog {
        let mut log = UserLog::new();
        log.record(ev(0, 1, JobEventKind::Submitted));
        log.record(ev(0, 2, JobEventKind::Submitted));
        log.record(ev(60, 1, JobEventKind::Matched));
        log.record(ev(70, 1, JobEventKind::ExecuteStarted));
        log.record(ev(130, 1, JobEventKind::Completed));
        log.record(ev(120, 2, JobEventKind::Matched));
        log.record(ev(125, 2, JobEventKind::ExecuteStarted));
        log.record(ev(300, 2, JobEventKind::Completed));
        log
    }

    #[test]
    fn job_times_extraction() {
        let log = sample_log();
        let jt = log.job_times();
        assert_eq!(jt.len(), 2);
        assert_eq!(jt[0].job, JobId(1));
        assert_eq!(jt[0].wait_secs(), Some(70));
        assert_eq!(jt[0].exec_secs(), Some(60));
        assert_eq!(jt[1].wait_secs(), Some(125));
        assert_eq!(jt[1].exec_secs(), Some(175));
        assert_eq!(jt[0].evictions, 0);
        assert!(!jt[0].removed);
    }

    #[test]
    fn eviction_resets_execute_start() {
        let mut log = UserLog::new();
        log.record(ev(0, 1, JobEventKind::Submitted));
        log.record(ev(10, 1, JobEventKind::ExecuteStarted));
        log.record(ev(50, 1, JobEventKind::Evicted));
        log.record(ev(200, 1, JobEventKind::ExecuteStarted));
        log.record(ev(260, 1, JobEventKind::Completed));
        let jt = &log.job_times()[0];
        assert_eq!(jt.evictions, 1);
        assert_eq!(jt.wait_secs(), Some(200));
        assert_eq!(jt.exec_secs(), Some(60));
    }

    #[test]
    fn unfinished_jobs_have_no_exec_time() {
        let mut log = UserLog::new();
        log.record(ev(0, 1, JobEventKind::Submitted));
        let jt = &log.job_times()[0];
        assert_eq!(jt.wait_secs(), None);
        assert_eq!(jt.exec_secs(), None);
    }

    #[test]
    fn removed_flag_set() {
        let mut log = UserLog::new();
        log.record(ev(0, 1, JobEventKind::Submitted));
        log.record(ev(99, 1, JobEventKind::Removed));
        assert!(log.job_times()[0].removed);
    }

    #[test]
    fn holds_and_exit_codes_tracked() {
        let mut log = UserLog::new();
        log.record(ev(0, 1, JobEventKind::Submitted));
        log.record(ev(10, 1, JobEventKind::Held));
        log.record(ev(70, 1, JobEventKind::Released));
        log.record(ev(100, 1, JobEventKind::ExecuteStarted));
        log.record(ev(160, 1, JobEventKind::Failed).with_exit(2));
        let jt = &log.job_times()[0];
        assert_eq!(jt.holds, 1);
        assert_eq!(jt.exit_code, Some(2));
        assert!(jt.completed.is_none());
        // A plain Completed without an explicit code reads as exit 0.
        let mut ok = UserLog::new();
        ok.record(ev(0, 1, JobEventKind::Submitted));
        ok.record(ev(90, 1, JobEventKind::Completed));
        assert_eq!(ok.job_times()[0].exit_code, Some(0));
    }

    #[test]
    fn goodput_badput_split() {
        let mut log = UserLog::new();
        log.record(ev(0, 1, JobEventKind::Submitted));
        log.record(ev(10, 1, JobEventKind::ExecuteStarted));
        log.record(ev(50, 1, JobEventKind::Evicted)); // 40 s badput
        log.record(ev(100, 1, JobEventKind::ExecuteStarted));
        log.record(ev(160, 1, JobEventKind::Completed)); // 60 s goodput
        log.record(ev(0, 2, JobEventKind::Submitted));
        log.record(ev(20, 2, JobEventKind::ExecuteStarted));
        log.record(ev(50, 2, JobEventKind::Failed).with_exit(1)); // 30 s badput
        assert_eq!(log.goodput_badput(), (60, 70));
        assert_eq!(UserLog::new().goodput_badput(), (0, 0));
    }

    #[test]
    fn preemption_and_outage_count_as_badput_once() {
        let mut log = UserLog::new();
        log.record(ev(0, 1, JobEventKind::Submitted));
        log.record(ev(10, 1, JobEventKind::ExecuteStarted));
        log.record(ev(40, 1, JobEventKind::Preempted)); // 30 s badput
        log.record(ev(100, 1, JobEventKind::Migrated).with_pool(1));
        log.record(ev(100, 1, JobEventKind::ExecuteStarted));
        log.record(ev(150, 1, JobEventKind::Completed)); // 50 s goodput
        log.record(ev(0, 2, JobEventKind::Submitted));
        log.record(ev(20, 2, JobEventKind::ExecuteStarted));
        log.record(ev(45, 2, JobEventKind::PoolOutage)); // 25 s badput
        assert_eq!(log.goodput_badput(), (50, 55));
        // The migrated job's completion is counted exactly once.
        assert_eq!(log.completed_count(), 1);
        let r = log.running_series();
        assert_eq!(r[39], 2);
        assert_eq!(r[45], 0, "preempted and outaged jobs stop running");
        assert_eq!(r[120], 1, "resumed attempt runs again");
    }

    #[test]
    fn completed_count_and_makespan() {
        let log = sample_log();
        assert_eq!(log.completed_count(), 2);
        assert_eq!(log.makespan(), SimTime(300));
        assert_eq!(log.len(), 8);
        assert!(!log.is_empty());
        assert_eq!(UserLog::new().makespan(), SimTime::ZERO);
    }

    #[test]
    fn instant_throughput_series_shape() {
        let log = sample_log();
        let s = log.instant_throughput_series();
        assert_eq!(s.len(), 301);
        assert_eq!(s[0], 0.0);
        // At t=130s one job is done: 1 / (130/60) = 0.4615…
        assert!((s[130] - 60.0 / 130.0).abs() < 1e-9);
        // At the end: 2 jobs / 5 minutes.
        assert!((s[300] - 0.4).abs() < 1e-9);
    }

    #[test]
    fn running_series_counts_overlap() {
        let log = sample_log();
        let r = log.running_series();
        assert_eq!(r[69], 0);
        assert_eq!(r[70], 1);
        assert_eq!(r[126], 2); // both running between 125 and 130
        assert_eq!(r[130], 1); // job 1 completed at 130
        assert_eq!(r[299], 1);
    }

    #[test]
    fn running_series_handles_still_running() {
        let mut log = UserLog::new();
        log.record(ev(0, 1, JobEventKind::Submitted));
        log.record(ev(5, 1, JobEventKind::ExecuteStarted));
        log.record(ev(10, 2, JobEventKind::Submitted)); // makespan = 10
        let r = log.running_series();
        assert_eq!(r[10], 1);
    }

    #[test]
    fn csv_exports_parse_back() {
        let log = sample_log();
        let (h, rows) = csvlite::parse(&log.batch_csv()).unwrap();
        assert_eq!(h, vec!["submit_s", "execute_s", "terminate_s"]);
        assert_eq!(rows[0], vec!["0", "70", "300"]);

        let jobs = log.jobs_csv(|j| format!("waveform.{}", j.0));
        let (h, rows) = csvlite::parse(&jobs).unwrap();
        assert_eq!(h.len(), 6);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][2], "waveform");
        assert_eq!(rows[0][3], "0");
        assert_eq!(rows[0][4], "70");
        assert_eq!(rows[0][5], "130");
    }
}
