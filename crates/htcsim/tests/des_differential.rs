//! Differential-determinism harness for the sharded DES engine.
//!
//! The contract under test: the number of event-queue shards and the
//! number of worker threads are *performance* knobs — neither may change
//! a single observable byte. Three layers of evidence:
//!
//! 1. **Scenario × shards** (in-process): every golden scenario from
//!    [`htcsim::scenarios`] re-run at shards ∈ {1, 4, 16} must render
//!    byte-identical ULOG text and metrics-registry JSON, and match the
//!    committed `tests/fixtures/*.log` bytes — the byte-compare step
//!    `scripts/sanitize.sh` used to own, promoted into tier-1 `cargo
//!    test`.
//! 2. **Engine × threads** (in-process): the synthetic `ShardedEngine`
//!    workload must produce the same [`EngineReport`] — events handled,
//!    makespan, digest — monolithic vs sharded at 1/2/4/8 threads.
//! 3. **Scenario × FDW_THREADS** (subprocess): the vendored Rayon shim
//!    reads `FDW_THREADS` once per process, so the thread-count axis is
//!    driven by re-spawning this test binary with the env var set to
//!    1/2/8 and comparing the digest lines the worker prints.

use std::collections::BTreeMap;
use std::process::Command;

use fdw_obs::Obs;
use htcsim::condor_log::to_condor_log;
use htcsim::des::{synth_engine, SynthConfig};
use htcsim::scenarios;

/// A scenario builder from [`htcsim::scenarios`]: shards, telemetry in,
/// run report out.
type Scenario = fn(usize, Obs) -> htcsim::cluster::RunReport;

/// The golden scenarios, paired with their committed fixtures.
const SCENARIOS: [(&str, Scenario); 5] = [
    ("faulty_run", scenarios::faulty_run),
    ("holdback_run", scenarios::holdback_run),
    ("defended_run", scenarios::defended_run),
    ("failover_run", scenarios::failover_run),
    ("sharded_run", scenarios::sharded_run),
];

const SHARDS: [usize; 3] = [1, 4, 16];

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}.log", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {path}: {e}"))
}

#[test]
fn scenario_bytes_are_invariant_to_shard_count() {
    for (name, build) in SCENARIOS {
        let golden = fixture(name);
        for shards in SHARDS {
            let obs = Obs::enabled();
            let report = build(shards, obs.clone());
            let text = to_condor_log(&report.log);
            assert_eq!(
                text, golden,
                "{name}: ULOG bytes at shards={shards} deviate from the committed fixture"
            );
            // Metrics must not depend on shard count either; compare
            // against a fresh shards=1 run with its own registry.
            if shards != 1 {
                let base_obs = Obs::enabled();
                build(1, base_obs.clone());
                assert_eq!(
                    obs.registry_json(),
                    base_obs.registry_json(),
                    "{name}: metrics JSON differs between shards=1 and shards={shards}"
                );
            }
        }
    }
}

#[test]
fn engine_reports_are_invariant_to_thread_count() {
    let cfg = SynthConfig::smoke();
    let baseline = synth_engine(&cfg).run_monolithic();
    assert!(baseline.events > 0, "synthetic workload ran no events");
    for threads in [1usize, 2, 4, 8] {
        let got = synth_engine(&cfg).run_sharded(threads);
        assert_eq!(
            got, baseline,
            "sharded engine at {threads} thread(s) deviates from the monolithic baseline"
        );
    }
}

/// Worker half of the subprocess axis: when `DES_DIFF_ROLE=worker`, run
/// every scenario (at shards = 4, the committed-fixture generator count)
/// plus the synthetic engine sized from the live Rayon pool — the thing
/// `FDW_THREADS` actually steers — and print one digest line per probe.
/// A plain `cargo test` run (no env var) makes this a no-op.
#[test]
fn fdw_threads_worker() {
    if std::env::var("DES_DIFF_ROLE").as_deref() != Ok("worker") {
        return;
    }
    for (name, build) in SCENARIOS {
        let obs = Obs::enabled();
        let report = build(4, obs.clone());
        println!(
            "DESDIFF ulog.{name} {:#018x}",
            fnv64(to_condor_log(&report.log).as_bytes())
        );
        println!(
            "DESDIFF metrics.{name} {:#018x}",
            fnv64(obs.registry_json().as_bytes())
        );
    }
    let threads = rayon::current_num_threads().max(1);
    let rep = synth_engine(&SynthConfig::smoke()).run_sharded(threads);
    println!(
        "DESDIFF engine.smoke {:#018x} events={} makespan={}",
        rep.digest, rep.events, rep.makespan.0
    );
}

/// Driver half: spawn `fdw_threads_worker` at FDW_THREADS ∈ {1, 2, 8}
/// and require every digest line to be identical across thread counts.
#[test]
fn scenario_digests_are_invariant_to_fdw_threads() {
    let exe = std::env::current_exe().expect("current_exe");
    let mut per_thread: Vec<(u32, BTreeMap<String, String>)> = Vec::new();
    for n in [1u32, 2, 8] {
        let out = Command::new(&exe)
            .args(["fdw_threads_worker", "--exact", "--nocapture"])
            .env("DES_DIFF_ROLE", "worker")
            .env("FDW_THREADS", n.to_string())
            .env("RAYON_NUM_THREADS", n.to_string())
            .output()
            .expect("spawning worker");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(
            out.status.success(),
            "worker at FDW_THREADS={n} failed:\n{stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        // libtest glues its "test <name> ..." banner onto the first
        // probe line, so split on the marker anywhere in the line.
        let digests: BTreeMap<String, String> = stdout
            .lines()
            .filter_map(|l| l.split_once("DESDIFF ").map(|(_, rest)| rest))
            .filter_map(|l| {
                l.split_once(' ')
                    .map(|(k, v)| (k.to_string(), v.to_string()))
            })
            .collect();
        assert_eq!(
            digests.len(),
            SCENARIOS.len() * 2 + 1,
            "worker at FDW_THREADS={n} printed {} probes, want {}:\n{stdout}",
            digests.len(),
            SCENARIOS.len() * 2 + 1
        );
        per_thread.push((n, digests));
    }
    let (_, baseline) = &per_thread[0];
    for (n, digests) in &per_thread[1..] {
        for (probe, want) in baseline {
            assert_eq!(
                digests.get(probe),
                Some(want),
                "probe {probe} differs between FDW_THREADS=1 and FDW_THREADS={n}"
            );
        }
    }
}
