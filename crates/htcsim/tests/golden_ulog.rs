//! Golden-file tests of the HTCondor ULOG text dialect.
//!
//! The paper's monitoring is shell scripts grepping HTCondor logs, so the
//! exact bytes of the rendered log are a contract: these tests pin the
//! `000`/`001`/`004`/`005`/`009`/`012`/`013` formatting — including hold
//! reasons and return values — against fixtures under `tests/fixtures/`.
//! The scenarios themselves live in [`htcsim::scenarios`], shared with
//! the differential-determinism harness (`tests/des_differential.rs`)
//! that re-runs them across the {threads} × {shards} matrix.
//!
//! To regenerate after an intentional format change:
//! `GOLDEN_REGEN=1 cargo test -p htcsim --test golden_ulog` (then review
//! the fixture diff like any other code change).

use fdw_obs::Obs;
use htcsim::condor_log::{parse_condor_log, to_condor_log};
use htcsim::fault::HoldReason;
use htcsim::job::{JobEvent, JobEventKind, JobId, OwnerId};
use htcsim::scenarios;
use htcsim::time::SimTime;
use htcsim::userlog::UserLog;

fn fixture_path(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Compare rendered text against a fixture byte-for-byte, regenerating
/// the fixture instead when `GOLDEN_REGEN` is set.
fn assert_golden(got: &str, name: &str) {
    let path = fixture_path(name);
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {path}: {e} (run with GOLDEN_REGEN=1)"));
    assert_eq!(
        got, want,
        "rendered ULOG deviates from {name}; if intentional, regenerate with GOLDEN_REGEN=1"
    );
}

/// A hand-built log covering every loggable event code, all four hold
/// reasons, and success/failure return values (0, 2, 137).
fn synthetic_log() -> UserLog {
    let ev = |t: u64, j: u64, o: u32, kind| JobEvent::new(SimTime(t), JobId(j), OwnerId(o), kind);
    let mut log = UserLog::new();
    // Job 1: evicted once, retried, completes on day 2.
    log.record(ev(0, 1, 0, JobEventKind::Submitted));
    log.record(ev(30, 1, 0, JobEventKind::Matched)); // no ULOG representation
    log.record(ev(95, 1, 0, JobEventKind::ExecuteStarted));
    log.record(ev(200, 1, 0, JobEventKind::Evicted));
    log.record(ev(400, 1, 0, JobEventKind::ExecuteStarted));
    log.record(ev(90_061, 1, 0, JobEventKind::Completed).with_exit(0));
    // Job 2 (owner 3): both transfer hold reasons, then a real failure.
    log.record(ev(10, 2, 3, JobEventKind::Submitted));
    log.record(ev(120, 2, 3, JobEventKind::Held).with_hold(HoldReason::TransferInputError));
    log.record(ev(240, 2, 3, JobEventKind::Released));
    log.record(ev(300, 2, 3, JobEventKind::Held).with_hold(HoldReason::TransferOutputError));
    log.record(ev(360, 2, 3, JobEventKind::Released));
    log.record(ev(400, 2, 3, JobEventKind::ExecuteStarted));
    log.record(ev(460, 2, 3, JobEventKind::Failed).with_exit(2));
    // Job 3: walltime hold, then removed (the Timeout fault's pair).
    log.record(ev(20, 3, 0, JobEventKind::Submitted));
    log.record(ev(600, 3, 0, JobEventKind::Held).with_hold(HoldReason::WallTimeExceeded));
    log.record(ev(660, 3, 0, JobEventKind::Removed));
    // Job 4 (owner 1): policy hold, released, killed with a signal code.
    log.record(ev(30, 4, 1, JobEventKind::Submitted));
    log.record(ev(700, 4, 1, JobEventKind::Held).with_hold(HoldReason::PolicyHold));
    log.record(ev(760, 4, 1, JobEventKind::Released));
    log.record(ev(800, 4, 1, JobEventKind::ExecuteStarted));
    log.record(ev(860, 4, 1, JobEventKind::Failed).with_exit(137));
    // Job 5: checksum hold (quarantined corrupt transfer), re-fetched and
    // released, then condor_rm'd mid-execution (a speculative race loser).
    log.record(ev(40, 5, 0, JobEventKind::Submitted));
    log.record(ev(900, 5, 0, JobEventKind::Held).with_hold(HoldReason::ChecksumMismatch));
    log.record(ev(930, 5, 0, JobEventKind::Released));
    log.record(ev(960, 5, 0, JobEventKind::ExecuteStarted));
    log.record(ev(1020, 5, 0, JobEventKind::Removed));
    log
}

#[test]
fn synthetic_log_matches_golden_fixture() {
    let text = to_condor_log(&synthetic_log());
    assert_golden(&text, "events.log");
}

#[test]
fn synthetic_fixture_spot_checks() {
    // Independent of the golden comparison, pin the load-bearing lines so
    // a bad regeneration cannot silently bless a format break.
    let text = to_condor_log(&synthetic_log());
    for want in [
        "000 (001.000.000) 01/01 00:00:00 Job submitted from host: <sim>",
        "001 (001.000.000) 01/01 00:01:35 Job executing on host: <ospool>",
        "004 (001.000.000) 01/01 00:03:20 Job was evicted.",
        "005 (001.000.000) 01/02 01:01:01 Job terminated (return value 0).",
        "012 (002.003.000) 01/01 00:02:00 Job was held. Reason: Transfer input files failure",
        "012 (002.003.000) 01/01 00:05:00 Job was held. Reason: Transfer output files failure",
        "013 (002.003.000) 01/01 00:04:00 Job was released.",
        "005 (002.003.000) 01/01 00:07:40 Job terminated (return value 2).",
        "012 (003.000.000) 01/01 00:10:00 Job was held. Reason: Job exceeded allowed walltime",
        "009 (003.000.000) 01/01 00:11:00 Job was aborted by the user.",
        "012 (004.001.000) 01/01 00:11:40 Job was held. Reason: Policy hold",
        "005 (004.001.000) 01/01 00:14:20 Job terminated (return value 137).",
        "012 (005.000.000) 01/01 00:15:00 Job was held. Reason: Transfer checksum validation failed",
        "013 (005.000.000) 01/01 00:15:30 Job was released.",
        "009 (005.000.000) 01/01 00:17:00 Job was aborted by the user.",
    ] {
        assert!(text.contains(want), "missing line: {want}\n---\n{text}");
    }
    // Every event line is followed by the canonical separator, and the
    // Matched event never surfaces.
    assert_eq!(text.matches("\n...\n").count(), 25);
    assert!(!text.contains("Matched"));
}

#[test]
fn synthetic_fixture_parses_back_losslessly() {
    let original = synthetic_log();
    let parsed = parse_condor_log(&to_condor_log(&original)).unwrap();
    let loggable: Vec<&JobEvent> = original
        .events()
        .iter()
        .filter(|e| e.kind != JobEventKind::Matched)
        .collect();
    assert_eq!(parsed.len(), loggable.len());
    for (a, b) in parsed.events().iter().zip(loggable) {
        assert_eq!(a, b);
    }
}

#[test]
fn holdback_negotiation_is_byte_identical_and_matches_golden() {
    // Byte-identity: two runs with the same seed must render the same
    // ULOG text and the same metrics-registry JSON, and both must match
    // the committed fixture — proving the BTreeMap hold-back buffer
    // changed nothing observable while removing hasher-order dependence.
    let obs_a = Obs::enabled();
    let obs_b = Obs::enabled();
    let a = scenarios::holdback_run(1, obs_a.clone());
    let b = scenarios::holdback_run(1, obs_b.clone());
    let text_a = to_condor_log(&a.log);
    let text_b = to_condor_log(&b.log);
    assert_eq!(text_a, text_b, "ULOG bytes differ across identical runs");
    assert_eq!(
        obs_a.registry_json(),
        obs_b.registry_json(),
        "metrics JSON differs across identical runs"
    );
    assert_golden(&text_a, "holdback_run.log");
    assert_eq!(a.completed, 18);
    // The scenario really exercises the hold-back path: with 9 big jobs
    // and only half the slots big-capable, some negotiation cycle must
    // have deferred at least one job past an incompatible slot.
    assert!(
        obs_a.counter("pool.holdbacks") > 0,
        "workload never exercised the hold-back buffer; fixture is weak"
    );
}

#[test]
fn defended_run_matches_golden_fixture() {
    let a = scenarios::defended_run(1, Obs::disabled());
    let text = to_condor_log(&a.log);
    // Byte-determinism first: the defenses add scoreboard state to the
    // negotiation path, and none of it may depend on hasher order.
    let b = scenarios::defended_run(1, Obs::disabled());
    assert_eq!(
        text,
        to_condor_log(&b.log),
        "defended run is not byte-deterministic"
    );
    assert_golden(&text, "defended_run.log");
    assert_eq!(a.completed, 10, "every job must survive the campaign");
    assert!(
        a.defense.quarantines > 0,
        "corruption at p=0.5 must trip the checksum defense"
    );
    assert!(
        a.defense.blacklists > 0,
        "black holes at 0.3 must trip the scoreboard"
    );
    assert!(text.contains("Job was held. Reason: Transfer checksum validation failed"));
    let parsed = parse_condor_log(&text).unwrap();
    assert_eq!(parsed.completed_count(), a.log.completed_count());
    assert_eq!(parsed.goodput_badput(), a.log.goodput_badput());
}

#[test]
fn failover_run_matches_golden_fixture() {
    let a = scenarios::failover_run(1, Obs::disabled());
    let text = to_condor_log(&a.log);
    // Byte-determinism first: breaker state, drain queues and checkpoint
    // bookkeeping all feed the emission order, and none of it may depend
    // on hasher order.
    let b = scenarios::failover_run(1, Obs::disabled());
    assert_eq!(
        text,
        to_condor_log(&b.log),
        "failover run is not byte-deterministic"
    );
    assert_golden(&text, "failover_run.log");
    assert_eq!(a.completed, 40, "every job must survive the fault menu");
    // Each federated-layer code must actually appear, and each as often
    // as the federation counters claim — the fixture covers the dialect.
    let count =
        |kind: JobEventKind| a.log.events().iter().filter(|e| e.kind == kind).count() as u64;
    let outage_displacements = count(JobEventKind::PoolOutage);
    assert!(
        outage_displacements > 0,
        "022 never emitted; fixture is weak"
    );
    assert!(text.contains("022 "), "pool-outage lines missing");
    assert_eq!(
        count(JobEventKind::PartitionStalled),
        a.federation.partition_stalls
    );
    assert!(
        a.federation.partition_stalls > 0,
        "023 never emitted; fixture is weak"
    );
    assert!(text.contains("023 "), "partition-stall lines missing");
    assert_eq!(count(JobEventKind::Preempted), a.federation.preemptions);
    assert!(
        a.federation.preemptions > 0,
        "026 never emitted; fixture is weak"
    );
    assert!(text.contains("026 "), "preemption lines missing");
    assert_eq!(count(JobEventKind::Migrated), a.federation.migrations);
    assert!(
        a.federation.migrations > 0,
        "030 never emitted; fixture is weak"
    );
    assert!(
        text.contains("Job migrated to pool "),
        "migration lines missing"
    );
    // Spot kills and outage displacements are pool faults, not glidein
    // evictions — the 004 path must stay clean.
    assert_eq!(a.evictions, 0);
    // The text round-trips to the same statistics the simulator reported.
    let parsed = parse_condor_log(&text).unwrap();
    assert_eq!(parsed.completed_count(), a.log.completed_count());
    assert_eq!(parsed.makespan(), a.log.makespan());
    assert_eq!(parsed.goodput_badput(), a.log.goodput_badput());
}

#[test]
fn simulated_faulty_run_matches_golden_fixture() {
    // Pins the cluster's actual emission order and content, not just the
    // formatter: same seed, same faults, same bytes.
    let log = scenarios::faulty_run(1, Obs::disabled()).log;
    let text = to_condor_log(&log);
    assert_golden(&text, "faulty_run.log");
    // The run must actually exercise the hold/release machinery, and the
    // text must round-trip to the same statistics the simulator reported.
    let holds: u32 = log.job_times().iter().map(|jt| jt.holds).sum();
    assert!(holds > 0, "fault plan produced no holds; fixture is weak");
    assert!(text.contains("Job was held. Reason: "));
    assert!(text.contains("013 "), "held jobs must be released");
    let parsed = parse_condor_log(&text).unwrap();
    assert_eq!(parsed.completed_count(), log.completed_count());
    assert_eq!(parsed.makespan(), log.makespan());
    assert_eq!(parsed.goodput_badput(), log.goodput_badput());
}

#[test]
fn sharded_run_matches_golden_fixture_across_shard_counts() {
    // The sharded-path fixture: generated at shards = 4, so a fixture
    // regeneration exercises the multi-heap merge; the contract says
    // every shard count renders the identical bytes.
    let a = scenarios::sharded_run(4, Obs::disabled());
    let text = to_condor_log(&a.log);
    let b = scenarios::sharded_run(1, Obs::disabled());
    assert_eq!(
        text,
        to_condor_log(&b.log),
        "shard count changed the ULOG bytes"
    );
    assert_golden(&text, "sharded_run.log");
    assert_eq!(a.completed, 12, "every job must survive the outage");
    // The scenario's point: the outage displaces jobs out of pool 1 and
    // their re-matches land in another pool — a different lane and (at
    // shards > 1) a different physical heap — emitting ULOG 030 lines
    // across the shard boundary.
    assert!(
        a.federation.migrations > 0,
        "030 never crossed the shard boundary; fixture is weak"
    );
    assert!(
        text.contains("Job migrated to pool "),
        "migration lines missing"
    );
    // Lossless parse-back, per the golden_ulog pattern.
    let parsed = parse_condor_log(&text).unwrap();
    assert_eq!(parsed.completed_count(), a.log.completed_count());
    assert_eq!(parsed.makespan(), a.log.makespan());
    assert_eq!(parsed.goodput_badput(), a.log.goodput_badput());
}
