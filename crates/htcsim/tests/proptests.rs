//! Property-based tests of the htcsim crate's invariants.

use proptest::prelude::*;

use std::cmp::Ordering;

use htcsim::csvlite;
use htcsim::event::{Event, EventKey, EventQueue, LaneId};
use htcsim::job::{JobEvent, JobEventKind, JobId, JobSpec, OwnerId};
use htcsim::pool::{Pool, PoolConfig};
use htcsim::single::SingleMachine;
use htcsim::time::SimTime;
use htcsim::transfer::{SiteId, StashCache, TransferConfig};
use htcsim::userlog::UserLog;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.push(SimTime(t), Event::Negotiate);
        }
        let mut prev = 0u64;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t.as_secs() >= prev);
            prev = t.as_secs();
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// `EventKey::cmp` is a strict total order: total, antisymmetric,
    /// transitive, and equal only on identical keys.
    #[test]
    fn event_key_cmp_is_a_strict_total_order(
        keys in proptest::collection::vec((0u64..50, 0u32..4, 0u64..10), 3..32),
    ) {
        let ks: Vec<EventKey> = keys
            .iter()
            .map(|&(t, l, s)| EventKey { time: SimTime(t), lane: LaneId(l), seq: s })
            .collect();
        for a in &ks {
            for b in &ks {
                let ab = a.cmp(b);
                prop_assert_eq!(ab.reverse(), b.cmp(a));
                if ab == Ordering::Equal {
                    prop_assert_eq!((a.time, a.lane, a.seq), (b.time, b.lane, b.seq));
                }
                for c in &ks {
                    if ab == Ordering::Less && b.cmp(c) == Ordering::Less {
                        prop_assert_eq!(a.cmp(c), Ordering::Less);
                    }
                }
            }
        }
    }

    /// Arbitrary interleavings of same-timestamp events across lanes
    /// always merge in `(timestamp, lane, seq)` order, the merge is
    /// invariant to the shard count, and replaying the recorded pop log
    /// through a fresh queue reproduces the identical pop sequence.
    #[test]
    fn event_merge_is_shard_invariant_and_replayable(
        pushes in proptest::collection::vec((0u64..100, 0u32..8), 1..300),
        shards in 1usize..20,
    ) {
        let mut mono = EventQueue::new();
        let mut sharded = EventQueue::with_shards(shards);
        for (i, &(t, lane)) in pushes.iter().enumerate() {
            let ev = Event::StageInDone(JobId(i as u64));
            mono.push_lane(SimTime(t), LaneId(lane), ev);
            sharded.push_lane(SimTime(t), LaneId(lane), ev);
        }
        let log: Vec<(EventKey, Event)> = std::iter::from_fn(|| mono.pop_keyed()).collect();
        prop_assert_eq!(log.len(), pushes.len());
        // Keys pop in strictly increasing (time, lane, seq) order.
        for w in log.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        // The k-way merge over `shards` heaps yields the same sequence.
        let sharded_log: Vec<(EventKey, Event)> =
            std::iter::from_fn(|| sharded.pop_keyed()).collect();
        prop_assert_eq!(&sharded_log, &log);
        // Replaying the recorded log (pushing pops back in order) gives
        // back the identical (time, lane, event) pop sequence.
        let mut replay = EventQueue::with_shards(shards);
        for &(k, ev) in &log {
            replay.push_lane(k.time, k.lane, ev);
        }
        let replayed: Vec<(SimTime, LaneId, Event)> =
            std::iter::from_fn(|| replay.pop_keyed().map(|(k, e)| (k.time, k.lane, e))).collect();
        let expect: Vec<(SimTime, LaneId, Event)> =
            log.iter().map(|&(k, e)| (k.time, k.lane, e)).collect();
        prop_assert_eq!(replayed, expect);
    }

    #[test]
    fn simtime_arithmetic_consistent(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let ta = SimTime(a);
        let tb = SimTime(b);
        prop_assert_eq!(ta.since(tb), a.saturating_sub(b));
        prop_assert_eq!((ta + b).as_secs(), a + b);
        prop_assert!((ta.as_mins_f64() * 60.0 - a as f64).abs() < 1e-6);
    }

    #[test]
    fn csv_roundtrip_simple_fields(
        rows in proptest::collection::vec(
            proptest::collection::vec("[a-zA-Z0-9_.-]{0,12}", 3..=3),
            0..20,
        )
    ) {
        let owned: Vec<Vec<String>> = rows.clone();
        let text = csvlite::encode(&["a", "b", "c"], &owned);
        let (header, parsed) = csvlite::parse(&text).unwrap();
        prop_assert_eq!(header, vec!["a", "b", "c"]);
        prop_assert_eq!(parsed, owned);
    }

    #[test]
    fn cache_hit_rate_bounded_and_warm_never_slower(
        sizes in proptest::collection::vec(1.0..2000.0f64, 1..10),
        site in 0u32..5,
    ) {
        let mut cache = StashCache::new();
        let cfg = TransferConfig::default();
        let mut spec = JobSpec::fixed("t", 1.0);
        for (i, s) in sizes.iter().enumerate() {
            spec.inputs.push(htcsim::job::InputFile {
                name: format!("f{i}"),
                size_mb: *s,
                cacheable: true,
            });
        }
        let cold = cache.stage_in_secs(SiteId(site), &spec, &cfg);
        let warm = cache.stage_in_secs(SiteId(site), &spec, &cfg);
        prop_assert!(warm <= cold + 1e-9);
        prop_assert!((0.0..=1.0).contains(&cache.hit_rate()));
    }

    #[test]
    fn pool_slot_accounting_never_negative(ops in proptest::collection::vec(any::<bool>(), 1..100)) {
        let mut pool = Pool::new(PoolConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let (id, _) = pool.add_machine(&mut rng);
        let slots = pool.total_slots();
        let mut claimed = 0usize;
        for claim in ops {
            if claim && claimed < slots {
                pool.claim_slot(id);
                claimed += 1;
            } else if !claim && claimed > 0 {
                pool.release_slot(id);
                claimed -= 1;
            }
            prop_assert_eq!(pool.busy_slots(), claimed);
            prop_assert!(pool.busy_slots() <= pool.total_slots());
        }
    }

    #[test]
    fn single_machine_makespan_bounds(
        durations in proptest::collection::vec(1.0..5000.0f64, 1..50),
        slots in 1usize..8,
    ) {
        let specs: Vec<JobSpec> = durations
            .iter()
            .enumerate()
            .map(|(i, d)| JobSpec::fixed(format!("j{i}"), *d))
            .collect();
        let r = SingleMachine { slots, speed: 1.0 }.run(&specs, 1);
        let total: f64 = durations.iter().sum();
        let longest = durations.iter().cloned().fold(0.0, f64::max);
        // Classic list-scheduling bounds.
        prop_assert!(r.makespan.as_secs() as f64 >= (total / slots as f64).floor());
        prop_assert!(r.makespan.as_secs() as f64 >= longest.floor());
        prop_assert!(r.makespan.as_secs() as f64 <= total + 1.0);
    }

    #[test]
    fn userlog_series_invariants(
        jobs in proptest::collection::vec((0u64..500, 1u64..500, 1u64..500), 1..30)
    ) {
        // Build a log of jobs with (submit, wait, exec) offsets.
        let mut log = UserLog::new();
        for (i, (submit, wait, exec)) in jobs.iter().enumerate() {
            let id = JobId(i as u64);
            let owner = OwnerId(0);
            log.record(JobEvent::new(
                SimTime(*submit), id, owner, JobEventKind::Submitted,
            ));
            log.record(JobEvent::new(
                SimTime(submit + wait), id, owner, JobEventKind::ExecuteStarted,
            ));
            log.record(JobEvent::new(
                SimTime(submit + wait + exec), id, owner, JobEventKind::Completed,
            ));
        }
        prop_assert_eq!(log.completed_count(), jobs.len());
        let thr = log.instant_throughput_series();
        let run = log.running_series();
        prop_assert_eq!(thr.len(), log.makespan().as_secs() as usize + 1);
        prop_assert_eq!(run.len() , thr.len());
        // Throughput is nonnegative; the last value accounts for all jobs.
        prop_assert!(thr.iter().all(|v| *v >= 0.0));
        let expected_last =
            jobs.len() as f64 / (log.makespan().as_secs().max(1) as f64 / 60.0);
        prop_assert!((thr.last().unwrap() - expected_last).abs() < 1e-6);
        // Running jobs never exceed the total number of jobs.
        prop_assert!(run.iter().all(|v| (*v as usize) <= jobs.len()));
        // Per-job wait/exec reconstruction matches inputs.
        for (jt, (submit, wait, exec)) in log.job_times().iter().zip(&jobs) {
            prop_assert_eq!(jt.submitted.as_secs(), *submit);
            prop_assert_eq!(jt.wait_secs(), Some(*wait));
            prop_assert_eq!(jt.exec_secs(), Some(*exec));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the pool parameters, a bag of fixed jobs always completes
    /// and the log is internally consistent.
    #[test]
    fn cluster_liveness_across_pool_shapes(
        slots in 8usize..64,
        glidein in 2usize..12,
        avail in 0.4..1.0f64,
        lifetime in 1800.0..20_000.0f64,
        seed in any::<u64>(),
        shards in 0usize..6,
    ) {
        use htcsim::cluster::{Cluster, ClusterConfig, WorkloadDriver};
        use htcsim::job::SubmitRequest;

        struct Bag(Vec<JobSpec>, usize, usize);
        impl WorkloadDriver for Bag {
            fn poll(&mut self, _n: SimTime, ev: &[JobEvent]) -> Vec<SubmitRequest> {
                self.1 += ev.iter().filter(|e| e.kind == JobEventKind::Completed).count();
                std::mem::take(&mut self.0)
                    .into_iter()
                    .map(|spec| SubmitRequest { owner: OwnerId(0), spec })
                    .collect()
            }
            fn is_done(&self) -> bool { self.0.is_empty() && self.1 >= self.2 }
        }

        let cfg = ClusterConfig {
            pool: PoolConfig {
                target_slots: slots,
                glidein_slots: glidein,
                glidein_lifetime_s: lifetime,
                avail_mean: avail,
                avail_sigma: 0.1,
                ..Default::default()
            },
            transfer: Default::default(),
            cache_enabled: true,
            max_evictions_per_job: 0,
            faults: Default::default(),
            defense: Default::default(),
            federation: Default::default(),
            shards,
        };
        let n = 25;
        let specs: Vec<JobSpec> =
            (0..n).map(|i| JobSpec::fixed(format!("j{i}"), 120.0)).collect();
        let mut bag = Bag(specs, 0, n);
        let report = Cluster::new(cfg, seed).run(&mut bag);
        prop_assert!(!report.timed_out);
        prop_assert_eq!(report.completed, n);
        // Every job's record is complete and ordered.
        for jt in report.log.job_times() {
            prop_assert!(jt.completed.is_some());
            prop_assert!(jt.first_execute.unwrap() >= jt.submitted);
            prop_assert!(jt.completed.unwrap() >= jt.first_execute.unwrap());
        }
    }
}
