//! Chrome trace-event JSON exporter.
//!
//! Produces a document loadable by `chrome://tracing` / Perfetto:
//! `{"displayTimeUnit":"ms","traceEvents":[...]}` with one event object
//! per line. Events are emitted sorted by `(ts_us, seq)` — a total
//! order, since `seq` is unique — so identical collections always render
//! byte-identically.

use crate::json::escape;
use crate::trace::{TraceEvent, TracePhase, Tracer};

/// Render every event collected by `tracer` as Chrome trace-event JSON.
pub fn export(tracer: &Tracer) -> String {
    let mut events = tracer.events();
    events.sort_by_key(|e| (e.ts_us, e.seq));
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&render_event(ev));
    }
    out.push_str("\n]}\n");
    out
}

fn render_event(ev: &TraceEvent) -> String {
    match ev.ph {
        TracePhase::Complete => format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}}}",
            escape(&ev.name),
            escape(&ev.cat),
            ev.ts_us,
            ev.dur_us,
            ev.pid,
            ev.tid,
        ),
        TracePhase::Instant => format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{},\"s\":\"t\",\"pid\":{},\"tid\":{}}}",
            escape(&ev.name),
            escape(&ev.cat),
            ev.ts_us,
            ev.pid,
            ev.tid,
        ),
    }
}

/// The distinct categories present in a rendered Chrome trace, sorted.
/// Used by the CI smoke stage to assert span-category coverage without a
/// full JSON parser.
pub fn categories(trace_json: &str) -> Vec<String> {
    let mut cats: Vec<String> = Vec::new();
    let mut rest = trace_json;
    while let Some(idx) = rest.find("\"cat\":\"") {
        rest = &rest[idx + 7..];
        if let Some(end) = rest.find('"') {
            let c = &rest[..end];
            if !cats.iter().any(|x| x == c) {
                cats.push(c.to_string());
            }
            rest = &rest[end..];
        } else {
            break;
        }
    }
    cats.sort();
    cats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    #[test]
    fn export_is_valid_json_and_time_sorted() {
        let t = Tracer::default();
        t.complete("dagman", "node:b", 0, 2, 5_000_000, 1_000_000);
        t.complete("pool", "stage_in", 0, 1, 1_000_000, 2_000_000);
        t.instant("chaos", "fault", 1, 0, 1_000_000);
        let j = export(&t);
        validate(&j).unwrap();
        // ts=1e6 events come first; the complete span (seq 1) precedes
        // the instant (seq 2) at the same timestamp.
        let stage_in = j.find("stage_in").unwrap();
        let fault = j.find("fault").unwrap();
        let node_b = j.find("node:b").unwrap();
        assert!(stage_in < fault && fault < node_b, "{j}");
        assert!(j.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let j = export(&Tracer::default());
        validate(&j).unwrap();
        assert!(categories(&j).is_empty());
    }

    #[test]
    fn categories_are_deduped_and_sorted() {
        let t = Tracer::default();
        t.instant("pool", "a", 0, 0, 0);
        t.instant("chaos", "b", 0, 0, 1);
        t.instant("pool", "c", 0, 0, 2);
        t.instant("dagman", "d", 0, 0, 3);
        assert_eq!(categories(&export(&t)), vec!["chaos", "dagman", "pool"]);
    }

    #[test]
    fn names_are_escaped() {
        let t = Tracer::default();
        t.instant("pool", "weird\"name", 0, 0, 0);
        let j = export(&t);
        validate(&j).unwrap();
        assert!(j.contains("weird\\\"name"));
    }
}
