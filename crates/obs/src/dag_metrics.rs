//! The HTCondor-DAGMan-style `*.dag.metrics` JSON document.
//!
//! Real DAGMan writes a `<dag>.dag.metrics` file next to the rescue DAG
//! when a workflow finishes; this module renders our simulated
//! equivalent (node counts, attempt totals, goodput/badput seconds,
//! hold/release totals) so chaos-campaign rounds can ship one alongside
//! each rescue file. Rendering is fully deterministic: fixed key order,
//! floats through [`crate::json::fmt_f64`].

use crate::json::{escape, fmt_f64};

/// The quantities reported in a `.dag.metrics` file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DagMetrics {
    /// Reporting client name (e.g. `fdw-sim`).
    pub client: String,
    /// Client version string.
    pub version: String,
    /// Rescue-DAG generation this run produced (0 = none written).
    pub rescue_dag_number: u32,
    /// Simulation time the DAG started, seconds.
    pub start_time_s: u64,
    /// Simulation time the DAG finished, seconds.
    pub end_time_s: u64,
    /// Total nodes in the DAG.
    pub nodes_total: u64,
    /// Nodes that completed successfully.
    pub nodes_done: u64,
    /// Nodes that exhausted retries (or were aborted).
    pub nodes_failed: u64,
    /// Nodes never attempted because an ancestor failed.
    pub nodes_futile: u64,
    /// Total job submission attempts across all nodes.
    pub total_attempts: u64,
    /// Retry attempts (attempts beyond each node's first).
    pub retries: u64,
    /// Job holds observed.
    pub holds: u64,
    /// Job releases observed.
    pub releases: u64,
    /// Execution seconds that ended in successful completion.
    pub goodput_s: u64,
    /// Execution seconds lost to failures, evictions and holds.
    pub badput_s: u64,
    /// DAG exit code (0 = success).
    pub exitcode: i32,
    /// Speculative duplicate submissions (straggler defense).
    pub speculations: u64,
    /// Speculated nodes won by the duplicate.
    pub spec_wins: u64,
    /// Speculated nodes won by the original attempt.
    pub spec_losses: u64,
    /// Execution seconds burned by cancelled speculative losers.
    pub spec_wasted_s: u64,
    /// Machines blacklisted by the reliability scoreboard.
    pub machines_blacklisted: u64,
    /// Machines paroled back after serving a blacklist term.
    pub machines_paroled: u64,
    /// Cache entries quarantined by the transfer-checksum defense.
    pub transfers_quarantined: u64,
    /// Whole-pool outage windows opened during the run.
    pub pool_outages: u64,
    /// Jobs killed by spot reclamation on the elastic cloud pool.
    pub preemptions: u64,
    /// Checkpoints saved for displaced jobs.
    pub checkpoints: u64,
    /// Attempts resumed from a checkpoint instead of restarting.
    pub resumes: u64,
    /// Displaced jobs re-matched into a different pool.
    pub migrations: u64,
    /// Transfers stalled by a pool/submit-node network partition.
    pub partition_stalls: u64,
    /// Per-pool circuit-breaker trips (closed → open).
    pub breaker_opens: u64,
    /// Queued transfers drained away from an unhealthy pool.
    pub jobs_drained: u64,
}

impl DagMetrics {
    /// Render as a deterministic `.dag.metrics` JSON document.
    pub fn render(&self) -> String {
        let duration = self.end_time_s.saturating_sub(self.start_time_s);
        format!(
            "{{\n\
             \"client\":\"{}\",\n\
             \"version\":\"{}\",\n\
             \"type\":\"metrics\",\n\
             \"rescue_dag_number\":{},\n\
             \"start_time\":{},\n\
             \"end_time\":{},\n\
             \"duration\":{},\n\
             \"exitcode\":{},\n\
             \"jobs\":{},\n\
             \"jobs_succeeded\":{},\n\
             \"jobs_failed\":{},\n\
             \"jobs_futile\":{},\n\
             \"total_job_attempts\":{},\n\
             \"retries\":{},\n\
             \"holds\":{},\n\
             \"releases\":{},\n\
             \"goodput_seconds\":{},\n\
             \"badput_seconds\":{},\n\
             \"speculations\":{},\n\
             \"spec_wins\":{},\n\
             \"spec_losses\":{},\n\
             \"spec_wasted_seconds\":{},\n\
             \"machines_blacklisted\":{},\n\
             \"machines_paroled\":{},\n\
             \"transfers_quarantined\":{},\n\
             \"pool_outages\":{},\n\
             \"preemptions\":{},\n\
             \"checkpoints\":{},\n\
             \"resumes\":{},\n\
             \"migrations\":{},\n\
             \"partition_stalls\":{},\n\
             \"breaker_opens\":{},\n\
             \"jobs_drained\":{}\n\
             }}\n",
            escape(&self.client),
            escape(&self.version),
            self.rescue_dag_number,
            fmt_f64(self.start_time_s as f64),
            fmt_f64(self.end_time_s as f64),
            fmt_f64(duration as f64),
            self.exitcode,
            self.nodes_total,
            self.nodes_done,
            self.nodes_failed,
            self.nodes_futile,
            self.total_attempts,
            self.retries,
            self.holds,
            self.releases,
            fmt_f64(self.goodput_s as f64),
            fmt_f64(self.badput_s as f64),
            self.speculations,
            self.spec_wins,
            self.spec_losses,
            fmt_f64(self.spec_wasted_s as f64),
            self.machines_blacklisted,
            self.machines_paroled,
            self.transfers_quarantined,
            self.pool_outages,
            self.preemptions,
            self.checkpoints,
            self.resumes,
            self.migrations,
            self.partition_stalls,
            self.breaker_opens,
            self.jobs_drained,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    #[test]
    fn render_is_valid_json_with_duration() {
        let m = DagMetrics {
            client: "fdw-sim".into(),
            version: "0.1.0".into(),
            rescue_dag_number: 2,
            start_time_s: 100,
            end_time_s: 350,
            nodes_total: 10,
            nodes_done: 8,
            nodes_failed: 1,
            nodes_futile: 1,
            total_attempts: 13,
            retries: 3,
            holds: 2,
            releases: 2,
            goodput_s: 420,
            badput_s: 77,
            exitcode: 1,
            speculations: 4,
            spec_wins: 3,
            spec_losses: 1,
            spec_wasted_s: 55,
            machines_blacklisted: 2,
            machines_paroled: 1,
            transfers_quarantined: 6,
            pool_outages: 1,
            preemptions: 9,
            checkpoints: 7,
            resumes: 5,
            migrations: 4,
            partition_stalls: 3,
            breaker_opens: 2,
            jobs_drained: 8,
        };
        let j = m.render();
        validate(&j).unwrap();
        assert!(j.contains("\"duration\":250.0"));
        assert!(j.contains("\"goodput_seconds\":420.0"));
        assert!(j.contains("\"rescue_dag_number\":2"));
        assert!(j.contains("\"type\":\"metrics\""));
        assert!(j.contains("\"spec_wins\":3"));
        assert!(j.contains("\"spec_wasted_seconds\":55.0"));
        assert!(j.contains("\"machines_blacklisted\":2"));
        assert!(j.contains("\"transfers_quarantined\":6"));
        assert!(j.contains("\"pool_outages\":1"));
        assert!(j.contains("\"preemptions\":9"));
        assert!(j.contains("\"checkpoints\":7"));
        assert!(j.contains("\"resumes\":5"));
        assert!(j.contains("\"migrations\":4"));
        assert!(j.contains("\"partition_stalls\":3"));
        assert!(j.contains("\"breaker_opens\":2"));
        assert!(j.contains("\"jobs_drained\":8"));
    }

    #[test]
    fn render_is_deterministic() {
        let m = DagMetrics {
            client: "fdw-sim".into(),
            ..Default::default()
        };
        assert_eq!(m.render(), m.render());
        validate(&m.render()).unwrap();
    }
}
