//! Minimal JSON helpers shared by the exporters and the CI smoke stage:
//! string escaping, deterministic float formatting, and a
//! recursive-descent validator (no parse tree — just "is this document
//! well-formed?", which is all `validate_trace` needs).

/// Escape a string for embedding inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Deterministic float rendering for JSON: Rust's shortest-roundtrip
/// `Display`, with non-finite values mapped to `null` (JSON has no
/// NaN/Inf) and a `.0` suffix guaranteed so integers stay number-typed
/// floats.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Validate that `input` is one well-formed JSON document. Returns the
/// byte offset of the first error on failure.
pub fn validate(input: &str) -> Result<(), usize> {
    let b = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos == b.len() {
        Ok(())
    } else {
        Err(pos)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), usize> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        _ => Err(*pos),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), usize> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(*pos)
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), usize> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(*pos);
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(*pos),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), usize> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(*pos),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), usize> {
    if b.get(*pos) != Some(&b'"') {
        return Err(*pos);
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => match b.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u')
                    if *pos + 6 <= b.len()
                        && b[*pos + 2..*pos + 6].iter().all(u8::is_ascii_hexdigit) =>
                {
                    *pos += 6;
                }
                _ => return Err(*pos),
            },
            0x00..=0x1f => return Err(*pos),
            _ => *pos += 1,
        }
    }
    Err(*pos)
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), usize> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match b.get(*pos) {
        Some(b'0') => *pos += 1, // a leading zero must stand alone
        Some(c) if c.is_ascii_digit() => {
            while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
        }
        _ => return Err(start),
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == frac {
            return Err(start);
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == exp {
            return Err(start);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn fmt_f64_is_deterministic_and_json_safe() {
        assert_eq!(fmt_f64(1.0), "1.0");
        assert_eq!(fmt_f64(2.5), "2.5");
        assert_eq!(fmt_f64(0.1), "0.1");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(1e21), "1000000000000000000000.0");
    }

    #[test]
    fn validates_well_formed_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-1.5e-3",
            "\"esc\\u00e9\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}",
            " { \"k\" : [ 1 , 2 ] } ",
        ] {
            assert!(validate(doc).is_ok(), "{doc}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "01",
            "1.",
            "\"unterminated",
            "nul",
            "{} trailing",
            "{\"a\" 1}",
        ] {
            assert!(validate(doc).is_err(), "{doc}");
        }
    }
}
