//! # fdw-obs — the observability layer of the FDW reproduction suite
//!
//! The paper's evaluation (§5–§6) is entirely about *measured* behaviour —
//! wait times, JPM throughput, goodput/badput, cache hit rates — so the
//! suite carries a first-class telemetry substrate instead of ad-hoc
//! accumulators scattered through the bench binaries:
//!
//! * [`metrics`] — a thread-safe [`metrics::MetricsRegistry`] of counters,
//!   gauges and fixed-bucket histograms supporting merge and quantile
//!   queries;
//! * [`trace`] — a span/instant-event tracer stamped with **simulation
//!   time** (seconds from `htcsim::time::SimTime`), never the wall clock,
//!   so identical seeds export byte-identical traces;
//! * [`chrome`] — the Chrome trace-event JSON exporter
//!   (`chrome://tracing`-loadable);
//! * [`dag_metrics`] — the HTCondor-DAGMan-style `*.dag.metrics` JSON
//!   file (node counts, per-attempt goodput/badput, hold/release totals)
//!   written alongside rescue files;
//! * [`json`] — the tiny escape/validate helpers the exporters and the CI
//!   smoke stage share.
//!
//! Everything funnels through an [`Obs`] handle: a cheap clonable value
//! that is a no-op when disabled, so instrumented code pays nothing on
//! the default path. The crate is dependency-free by design — `htcsim`,
//! `dagman` and `fdw-core` all sit *above* it, passing plain `u64`
//! simulation seconds down.
//!
//! ```
//! use fdw_obs::Obs;
//!
//! let obs = Obs::enabled();
//! obs.inc("pool.negotiation_cycles", 1);
//! obs.span("pool", "stage_in", 7, 10, 25); // tid 7, sim-seconds 10..25
//! assert_eq!(obs.counter("pool.negotiation_cycles"), 1);
//! assert!(fdw_obs::json::validate(&obs.chrome_trace()).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod dag_metrics;
pub mod json;
pub mod metrics;
pub mod trace;
pub mod wallclock;

use std::sync::Arc;

use metrics::{HistStats, MetricsRegistry};
use trace::Tracer;

/// The shared telemetry sink an [`Obs`] handle points at.
#[derive(Debug, Default)]
pub struct ObsSink {
    /// Span/instant-event collector.
    pub tracer: Tracer,
    /// Counter/gauge/histogram registry.
    pub registry: MetricsRegistry,
}

/// A cheap, clonable handle to a telemetry sink.
///
/// Handles are passed by value through the stack (cluster, DAGMan,
/// workflow, chaos). A disabled handle makes every record call a no-op;
/// [`Obs::scoped`] re-targets a handle at a different trace process lane
/// (`pid`) and time base without copying collected data, which is how
/// chaos rounds and matrix cells stay disjoint in one exported trace.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    sink: Option<Arc<ObsSink>>,
    trace_on: bool,
    pid: u32,
    base_s: u64,
}

impl Obs {
    /// A no-op handle: every record call returns immediately.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A fresh sink collecting both metrics and trace events.
    pub fn enabled() -> Self {
        Self {
            sink: Some(Arc::new(ObsSink::default())),
            trace_on: true,
            pid: 0,
            base_s: 0,
        }
    }

    /// A fresh sink collecting metrics only — for large runs where
    /// per-job spans would dominate memory (e.g. 50,000-waveform
    /// replications) but registry totals are still wanted.
    pub fn metrics_only() -> Self {
        Self {
            trace_on: false,
            ..Self::enabled()
        }
    }

    /// True when this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// A handle on the same sink, re-targeted at trace process lane
    /// `pid` with timestamps shifted by `base_s` simulation seconds.
    pub fn scoped(&self, pid: u32, base_s: u64) -> Self {
        Self {
            sink: self.sink.clone(),
            trace_on: self.trace_on,
            pid,
            base_s,
        }
    }

    /// Borrow the sink, if any.
    pub fn sink(&self) -> Option<&ObsSink> {
        self.sink.as_deref()
    }

    /// Add `delta` to counter `name`.
    pub fn inc(&self, name: &str, delta: u64) {
        if let Some(s) = &self.sink {
            s.registry.inc(name, delta);
        }
    }

    /// Current value of counter `name` (0 when absent or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.sink.as_ref().map_or(0, |s| s.registry.counter(name))
    }

    /// Set gauge `name` to `value` (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(s) = &self.sink {
            s.registry.gauge(name, value);
        }
    }

    /// Record `value` into histogram `name` (default bucket bounds).
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(s) = &self.sink {
            s.registry.observe(name, value);
        }
    }

    /// Exact summary statistics of histogram `name`, if it exists.
    pub fn histogram_stats(&self, name: &str) -> Option<HistStats> {
        self.sink
            .as_ref()
            .and_then(|s| s.registry.histogram_stats(name))
    }

    /// Record a completed span: `[start_s, end_s]` in simulation seconds
    /// on track `tid` under category `cat`.
    pub fn span(&self, cat: &str, name: &str, tid: u64, start_s: u64, end_s: u64) {
        if let Some(s) = &self.sink {
            if self.trace_on {
                let dur = end_s.saturating_sub(start_s);
                s.tracer
                    .complete(cat, name, self.pid, tid, self.us(start_s), dur * 1_000_000);
            }
        }
    }

    /// Record a completed span with **microsecond** resolution — for live
    /// (wall-clock-measured) kernel timing, where sub-second durations
    /// would round to zero under [`Obs::span`]'s whole-second API.
    /// `start_us`/`end_us` are microsecond offsets from this handle's
    /// base time.
    pub fn span_us(&self, cat: &str, name: &str, tid: u64, start_us: u64, end_us: u64) {
        if let Some(s) = &self.sink {
            if self.trace_on {
                let dur = end_us.saturating_sub(start_us);
                s.tracer.complete(
                    cat,
                    name,
                    self.pid,
                    tid,
                    self.base_s * 1_000_000 + start_us,
                    dur,
                );
            }
        }
    }

    /// Record an instant event at `t_s` simulation seconds.
    pub fn instant(&self, cat: &str, name: &str, tid: u64, t_s: u64) {
        if let Some(s) = &self.sink {
            if self.trace_on {
                s.tracer.instant(cat, name, self.pid, tid, self.us(t_s));
            }
        }
    }

    /// Absorb another handle's sink: trace events are re-homed to
    /// process lane `pid`, registry contents merge (counters and
    /// histograms add, gauges take the maximum).
    pub fn merge_from(&self, other: &Obs, pid: u32) -> Result<(), String> {
        let (Some(dst), Some(src)) = (&self.sink, &other.sink) else {
            return Ok(());
        };
        dst.tracer.absorb(&src.tracer, Some(pid));
        dst.registry.merge(&src.registry)
    }

    /// Export every collected span/instant as Chrome trace-event JSON
    /// (empty-trace document when disabled).
    pub fn chrome_trace(&self) -> String {
        match &self.sink {
            Some(s) => chrome::export(&s.tracer),
            None => chrome::export(&Tracer::default()),
        }
    }

    /// Export the registry as deterministic JSON (sorted keys).
    pub fn registry_json(&self) -> String {
        match &self.sink {
            Some(s) => s.registry.to_json(),
            None => MetricsRegistry::default().to_json(),
        }
    }

    fn us(&self, t_s: u64) -> u64 {
        (self.base_s + t_s) * 1_000_000
    }
}

/// Glob import of the most-used types.
pub mod prelude {
    pub use crate::dag_metrics::DagMetrics;
    pub use crate::metrics::{HistStats, Histogram, MetricsRegistry};
    pub use crate::trace::{TraceEvent, TracePhase, Tracer};
    pub use crate::Obs;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_a_cheap_no_op() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.inc("x", 5);
        obs.gauge("g", 1.0);
        obs.observe("h", 2.0);
        obs.span("pool", "s", 0, 0, 10);
        obs.instant("pool", "i", 0, 3);
        assert_eq!(obs.counter("x"), 0);
        assert!(obs.histogram_stats("h").is_none());
        assert!(json::validate(&obs.chrome_trace()).is_ok());
        assert!(json::validate(&obs.registry_json()).is_ok());
    }

    #[test]
    fn scoped_handles_share_one_sink() {
        let obs = Obs::enabled();
        let shifted = obs.scoped(3, 100);
        shifted.inc("c", 2);
        obs.inc("c", 1);
        assert_eq!(obs.counter("c"), 3);
        shifted.span("chaos", "round", 1, 0, 5);
        let trace = obs.chrome_trace();
        // Base offset shifts the span to 100 s; pid is the scope's lane.
        assert!(trace.contains("\"ts\":100000000"), "{trace}");
        assert!(trace.contains("\"pid\":3"), "{trace}");
    }

    #[test]
    fn span_us_keeps_sub_second_durations() {
        let obs = Obs::enabled();
        obs.span_us("fq", "kernel.cholesky", 0, 250, 1_750);
        let trace = obs.chrome_trace();
        assert!(trace.contains("\"ts\":250"), "{trace}");
        assert!(trace.contains("\"dur\":1500"), "{trace}");
        // The scoped base shifts in whole seconds, like `span`.
        let shifted = obs.scoped(1, 2);
        shifted.span_us("fq", "kernel.eigen", 0, 0, 10);
        assert!(obs.chrome_trace().contains("\"ts\":2000000"));
    }

    #[test]
    fn metrics_only_drops_spans_but_keeps_counters() {
        let obs = Obs::metrics_only();
        obs.span("pool", "s", 0, 0, 10);
        obs.inc("c", 1);
        assert_eq!(obs.counter("c"), 1);
        assert!(!obs.chrome_trace().contains("\"name\""));
    }

    #[test]
    fn merge_from_rehomes_and_adds() {
        let master = Obs::enabled();
        let cell = Obs::enabled();
        cell.inc("chaos.rounds", 2);
        cell.span("chaos", "round", 0, 0, 9);
        master.merge_from(&cell, 7).unwrap();
        assert_eq!(master.counter("chaos.rounds"), 2);
        assert!(master.chrome_trace().contains("\"pid\":7"));
        // Merging through disabled handles is a silent no-op.
        Obs::disabled().merge_from(&cell, 1).unwrap();
        master.merge_from(&Obs::disabled(), 1).unwrap();
    }
}
