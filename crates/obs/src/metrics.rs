//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms behind one mutex, safe to share across threads and cheap
//! enough to update from a discrete-event hot loop.
//!
//! Histograms keep exact `count/sum/sum_sq/min/max` alongside the bucket
//! array, so means and standard deviations read back from the registry
//! are *exact* (the bench binaries rely on this to reproduce the paper's
//! eq. (1)–(4) aggregates), while quantiles are bucket-resolution
//! estimates clamped to the observed `[min, max]`.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::json::fmt_f64;

/// Default histogram bucket upper bounds: a 1–2–5 ladder over nine
/// decades, wide enough for seconds, hours, JPM and megabytes alike.
/// Every registry histogram uses the same bounds so merges never clash.
pub fn default_bounds() -> Vec<f64> {
    let mut out = Vec::new();
    let mut decade = 0.001;
    for _ in 0..9 {
        for m in [1.0, 2.0, 5.0] {
            out.push(decade * m);
        }
        decade *= 10.0;
    }
    out
}

/// A fixed-bucket histogram with exact moment tracking.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Sorted, strictly increasing bucket upper bounds. Values above the
    /// last bound land in the overflow bucket.
    bounds: Vec<f64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1`.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

/// Exact summary statistics of a histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistStats {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Population standard deviation (0 when empty).
    pub sd: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl Histogram {
    /// Create a histogram over the given upper bounds (sorted and
    /// deduplicated; non-finite bounds are dropped).
    pub fn new(bounds: &[f64]) -> Self {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds"));
        bounds.dedup();
        let n = bounds.len();
        Self {
            bounds,
            counts: vec![0; n + 1],
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation (non-finite values are ignored).
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self.bounds.partition_point(|b| *b < v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.sum_sq += v * v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact summary statistics.
    pub fn stats(&self) -> HistStats {
        if self.count == 0 {
            return HistStats {
                count: 0,
                sum: 0.0,
                mean: 0.0,
                sd: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = self.count as f64;
        let mean = self.sum / n;
        let var = (self.sum_sq / n - mean * mean).max(0.0);
        HistStats {
            count: self.count,
            sum: self.sum,
            mean,
            sd: var.sqrt(),
            min: self.min,
            max: self.max,
        }
    }

    /// Bucket-resolution quantile estimate: the upper bound of the bucket
    /// containing the `q`-th observation, clamped to the observed
    /// `[min, max]`. Monotone in `q`; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return Some(self.min);
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                let rep = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
                return Some(rep.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Add another histogram's contents into this one. The bucket bounds
    /// must be identical (registry histograms always are).
    pub fn merge(&mut self, other: &Histogram) -> Result<(), String> {
        if self.bounds != other.bounds {
            return Err("histogram bucket bounds differ".into());
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }

    /// `(upper_bound, count)` pairs, overflow bucket last with a `None`
    /// bound.
    pub fn buckets(&self) -> Vec<(Option<f64>, u64)> {
        let mut out: Vec<(Option<f64>, u64)> = self
            .bounds
            .iter()
            .zip(&self.counts)
            .map(|(b, c)| (Some(*b), *c))
            .collect();
        out.push((None, self.counts[self.bounds.len()]));
        out
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A thread-safe registry of named counters, gauges and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// Add `delta` to counter `name`, creating it at zero.
    pub fn inc(&self, name: &str, delta: u64) {
        let mut g = self.inner.lock().expect("registry lock");
        *g.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        let g = self.inner.lock().expect("registry lock");
        g.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` (last write wins; non-finite values ignored).
    pub fn gauge(&self, name: &str, value: f64) {
        if !value.is_finite() {
            return;
        }
        let mut g = self.inner.lock().expect("registry lock");
        g.gauges.insert(name.to_string(), value);
    }

    /// Current value of gauge `name`.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        let g = self.inner.lock().expect("registry lock");
        g.gauges.get(name).copied()
    }

    /// Record `value` into histogram `name` (created on first use with
    /// [`default_bounds`]).
    pub fn observe(&self, name: &str, value: f64) {
        let mut g = self.inner.lock().expect("registry lock");
        g.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(&default_bounds()))
            .observe(value);
    }

    /// Exact summary statistics of histogram `name`.
    pub fn histogram_stats(&self, name: &str) -> Option<HistStats> {
        let g = self.inner.lock().expect("registry lock");
        g.histograms.get(name).map(|h| h.stats())
    }

    /// Quantile estimate of histogram `name`.
    pub fn quantile(&self, name: &str, q: f64) -> Option<f64> {
        let g = self.inner.lock().expect("registry lock");
        g.histograms.get(name).and_then(|h| h.quantile(q))
    }

    /// Snapshot of every counter, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let g = self.inner.lock().expect("registry lock");
        g.counters.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Merge another registry into this one: counters and histograms
    /// add, gauges take the maximum (the merge must stay commutative for
    /// chaos-matrix cell aggregation).
    pub fn merge(&self, other: &MetricsRegistry) -> Result<(), String> {
        let o = other.inner.lock().expect("registry lock");
        let mut g = self.inner.lock().expect("registry lock");
        for (k, v) in &o.counters {
            *g.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &o.gauges {
            let e = g.gauges.entry(k.clone()).or_insert(f64::NEG_INFINITY);
            *e = e.max(*v);
        }
        for (k, h) in &o.histograms {
            match g.histograms.get_mut(k) {
                Some(mine) => mine.merge(h)?,
                None => {
                    g.histograms.insert(k.clone(), h.clone());
                }
            }
        }
        Ok(())
    }

    /// Deterministic JSON export: keys sorted, histogram buckets in
    /// bound order, every float rendered through [`fmt_f64`].
    pub fn to_json(&self) -> String {
        let g = self.inner.lock().expect("registry lock");
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in g.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", crate::json::escape(k)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in g.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", crate::json::escape(k), fmt_f64(*v)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in g.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = h.stats();
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"mean\":{},\"sd\":{},\"min\":{},\"max\":{},\"buckets\":[",
                crate::json::escape(k),
                s.count,
                fmt_f64(s.sum),
                fmt_f64(s.mean),
                fmt_f64(s.sd),
                fmt_f64(s.min),
                fmt_f64(s.max),
            ));
            for (j, (bound, c)) in h.buckets().into_iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                match bound {
                    Some(b) => out.push_str(&format!("[{},{c}]", fmt_f64(b))),
                    None => out.push_str(&format!("[null,{c}]")),
                }
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let r = MetricsRegistry::default();
        r.inc("a", 2);
        r.inc("a", 3);
        r.gauge("g", 1.5);
        r.gauge("g", 2.5);
        r.gauge("bad", f64::NAN); // ignored
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.gauge_value("g"), Some(2.5));
        assert_eq!(r.gauge_value("bad"), None);
    }

    #[test]
    fn histogram_tracks_exact_moments() {
        let mut h = Histogram::new(&default_bounds());
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.observe(v);
        }
        h.observe(f64::INFINITY); // ignored
        let s = h.stats();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 10.0);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.sd - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::new(&default_bounds());
        for v in [0.3, 7.0, 42.0, 900.0, 12_000.0] {
            h.observe(v);
        }
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = h.quantile(i as f64 / 20.0).unwrap();
            assert!(q >= prev, "quantile not monotone at {i}");
            assert!((0.3..=12_000.0).contains(&q));
            prev = q;
        }
        assert_eq!(h.quantile(1.0), Some(12_000.0));
        assert!(Histogram::new(&default_bounds()).quantile(0.5).is_none());
    }

    #[test]
    fn overflow_bucket_catches_huge_values() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(1e9);
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[2], (None, 1));
        assert_eq!(h.quantile(0.5), Some(1e9));
    }

    #[test]
    fn registry_merge_adds_counters_and_histograms() {
        let a = MetricsRegistry::default();
        let b = MetricsRegistry::default();
        a.inc("c", 1);
        b.inc("c", 2);
        b.inc("only_b", 7);
        a.observe("h", 1.0);
        b.observe("h", 3.0);
        b.observe("h2", 5.0);
        a.gauge("g", 1.0);
        b.gauge("g", 4.0);
        a.merge(&b).unwrap();
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("only_b"), 7);
        assert_eq!(a.histogram_stats("h").unwrap().count, 2);
        assert_eq!(a.histogram_stats("h").unwrap().sum, 4.0);
        assert_eq!(a.histogram_stats("h2").unwrap().sum, 5.0);
        assert_eq!(a.gauge_value("g"), Some(4.0));
    }

    #[test]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[1.0, 2.0]);
        let b = Histogram::new(&[1.0, 3.0]);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn json_export_is_valid_and_sorted() {
        let r = MetricsRegistry::default();
        r.inc("z.last", 1);
        r.inc("a.first", 2);
        r.gauge("mid", 0.5);
        r.observe("lat_s", 0.42);
        let j = r.to_json();
        crate::json::validate(&j).unwrap();
        assert!(j.find("a.first").unwrap() < j.find("z.last").unwrap());
        assert!(j.contains("\"buckets\":["));
    }
}
