//! Span/instant-event collection, stamped with simulation time.
//!
//! Events carry microsecond timestamps derived from `SimTime` seconds
//! (the [`crate::Obs`] handle does the ×1e6 conversion) and a
//! monotonically increasing per-tracer sequence number, so sorting by
//! `(ts_us, seq)` is a total, deterministic order — byte-identical
//! exports for identical seeds fall out of that.

use std::sync::Mutex;

/// Trace-event phase, mapping onto the Chrome trace-event `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// A complete span (`ph: "X"`) with an explicit duration.
    Complete,
    /// A point-in-time event (`ph: "i"`).
    Instant,
}

/// One collected trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Category (e.g. `pool`, `dagman`, `phase`, `chaos`).
    pub cat: String,
    /// Event name (e.g. `stage_in`, `node:waveform_003`).
    pub name: String,
    /// Phase kind.
    pub ph: TracePhase,
    /// Start timestamp in microseconds of simulation time.
    pub ts_us: u64,
    /// Duration in microseconds ([`TracePhase::Complete`] only; 0 for
    /// instants).
    pub dur_us: u64,
    /// Process lane (scope: chaos round, matrix cell, …).
    pub pid: u32,
    /// Thread lane (job serial, DAG node id, machine id, …).
    pub tid: u64,
    /// Insertion sequence number; the tiebreaker for equal timestamps.
    pub seq: u64,
}

/// A thread-safe collector of [`TraceEvent`]s.
#[derive(Debug, Default)]
pub struct Tracer {
    events: Mutex<Vec<TraceEvent>>,
}

impl Tracer {
    /// Record a complete span.
    pub fn complete(&self, cat: &str, name: &str, pid: u32, tid: u64, ts_us: u64, dur_us: u64) {
        self.push(cat, name, TracePhase::Complete, pid, tid, ts_us, dur_us);
    }

    /// Record an instant event.
    pub fn instant(&self, cat: &str, name: &str, pid: u32, tid: u64, ts_us: u64) {
        self.push(cat, name, TracePhase::Instant, pid, tid, ts_us, 0);
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &self,
        cat: &str,
        name: &str,
        ph: TracePhase,
        pid: u32,
        tid: u64,
        ts_us: u64,
        dur_us: u64,
    ) {
        let mut g = self.events.lock().expect("tracer lock");
        let seq = g.len() as u64;
        g.push(TraceEvent {
            cat: cat.to_string(),
            name: name.to_string(),
            ph,
            ts_us,
            dur_us,
            pid,
            tid,
            seq,
        });
    }

    /// Append every event from `other`, renumbering sequence ids after
    /// this tracer's own and (optionally) overriding the process lane.
    /// Used to fold per-cell chaos-matrix sinks into one master trace.
    pub fn absorb(&self, other: &Tracer, pid_override: Option<u32>) {
        let theirs = other.events.lock().expect("tracer lock").clone();
        let mut g = self.events.lock().expect("tracer lock");
        for mut ev in theirs {
            ev.seq = g.len() as u64;
            if let Some(pid) = pid_override {
                ev.pid = pid;
            }
            g.push(ev);
        }
    }

    /// Snapshot of collected events in insertion order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("tracer lock").clone()
    }

    /// Number of collected events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("tracer lock").len()
    }

    /// True when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_sequenced_in_insertion_order() {
        let t = Tracer::default();
        t.complete("pool", "a", 0, 1, 100, 50);
        t.instant("pool", "b", 0, 1, 100);
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[1].seq, 1);
        assert_eq!(evs[0].ph, TracePhase::Complete);
        assert_eq!(evs[1].ph, TracePhase::Instant);
        assert_eq!(evs[1].dur_us, 0);
    }

    #[test]
    fn absorb_renumbers_and_rehomes() {
        let a = Tracer::default();
        let b = Tracer::default();
        a.complete("x", "first", 0, 0, 0, 1);
        b.complete("y", "second", 5, 0, 0, 1);
        b.instant("y", "third", 5, 0, 2);
        a.absorb(&b, Some(9));
        let evs = a.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[1].seq, 1);
        assert_eq!(evs[2].seq, 2);
        assert_eq!(evs[1].pid, 9);
        assert_eq!(evs[2].pid, 9);
        // Source tracer is untouched.
        assert_eq!(b.len(), 2);
    }
}
