//! The **single** sanctioned wall-clock read of the workspace.
//!
//! Everything in the suite is stamped with simulation time so seeded runs
//! export byte-identical artifacts; the one legitimate use of the host
//! clock is *measuring how long real kernels take* (`fq.kernel.*` spans,
//! bench harness timing). That read lives here, behind [`WallTimer`], so
//! the `fdwlint` `wall-clock-in-sim` rule can allowlist exactly one file
//! (`crates/obs/src/wallclock.rs`) and flag any `Instant::now()` that
//! creeps into simulation code paths. (The bench crate carries its own
//! crate-level allow — see DESIGN.md §9.)

/// A started wall-clock timer. Durations only — wall-clock *instants*
/// deliberately have no accessor, so measured time can annotate telemetry
/// but can never leak into simulation state or serialised artifacts.
#[derive(Debug, Clone, Copy)]
pub struct WallTimer {
    start: std::time::Instant,
}

impl WallTimer {
    /// Start timing now.
    pub fn start() -> Self {
        Self {
            start: std::time::Instant::now(),
        }
    }

    /// Microseconds elapsed since [`WallTimer::start`].
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_is_monotonic() {
        let t = WallTimer::start();
        let a = t.elapsed_us();
        let b = t.elapsed_us();
        assert!(b >= a);
    }
}
