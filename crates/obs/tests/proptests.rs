//! Property-based tests of the fdw-obs metrics algebra.

use proptest::prelude::*;

use fdw_obs::metrics::{default_bounds, Histogram, MetricsRegistry};

fn hist_of(values: &[f64]) -> Histogram {
    let mut h = Histogram::new(&default_bounds());
    for &v in values {
        h.observe(v);
    }
    h
}

proptest! {
    #[test]
    fn histogram_merge_is_commutative(
        xs in proptest::collection::vec(0.0..1e6f64, 0..50),
        ys in proptest::collection::vec(0.0..1e6f64, 0..50),
    ) {
        let mut ab = hist_of(&xs);
        ab.merge(&hist_of(&ys)).unwrap();
        let mut ba = hist_of(&ys);
        ba.merge(&hist_of(&xs)).unwrap();
        prop_assert_eq!(ab.stats().count, ba.stats().count);
        prop_assert!((ab.stats().sum - ba.stats().sum).abs() < 1e-6);
        prop_assert_eq!(ab.buckets(), ba.buckets());
        prop_assert_eq!(ab.stats().min, ba.stats().min);
        prop_assert_eq!(ab.stats().max, ba.stats().max);
    }

    #[test]
    fn histogram_merge_is_associative(
        xs in proptest::collection::vec(0.0..1e6f64, 0..30),
        ys in proptest::collection::vec(0.0..1e6f64, 0..30),
        zs in proptest::collection::vec(0.0..1e6f64, 0..30),
    ) {
        // (x + y) + z
        let mut left = hist_of(&xs);
        left.merge(&hist_of(&ys)).unwrap();
        left.merge(&hist_of(&zs)).unwrap();
        // x + (y + z)
        let mut yz = hist_of(&ys);
        yz.merge(&hist_of(&zs)).unwrap();
        let mut right = hist_of(&xs);
        right.merge(&yz).unwrap();
        prop_assert_eq!(left.stats().count, right.stats().count);
        prop_assert!((left.stats().sum - right.stats().sum).abs() < 1e-6);
        prop_assert_eq!(left.buckets(), right.buckets());
    }

    #[test]
    fn merged_histogram_equals_combined_observation(
        xs in proptest::collection::vec(0.0..1e6f64, 1..40),
        ys in proptest::collection::vec(0.0..1e6f64, 1..40),
    ) {
        let mut merged = hist_of(&xs);
        merged.merge(&hist_of(&ys)).unwrap();
        let mut both: Vec<f64> = xs.clone();
        both.extend_from_slice(&ys);
        let combined = hist_of(&both);
        prop_assert_eq!(merged.buckets(), combined.buckets());
        prop_assert_eq!(merged.stats().count, combined.stats().count);
        prop_assert_eq!(merged.stats().min, combined.stats().min);
        prop_assert_eq!(merged.stats().max, combined.stats().max);
    }

    #[test]
    fn quantiles_monotone_and_bounded(
        xs in proptest::collection::vec(0.0..1e6f64, 1..80),
        qs in proptest::collection::vec(0.0..1.0f64, 1..20),
    ) {
        let h = hist_of(&xs);
        let s = h.stats();
        let mut sorted_q = qs.clone();
        sorted_q.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = f64::NEG_INFINITY;
        for q in sorted_q {
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= prev, "quantile({q}) = {v} < previous {prev}");
            prop_assert!(v >= s.min && v <= s.max, "quantile({q}) = {v} outside [{}, {}]", s.min, s.max);
            prev = v;
        }
        prop_assert_eq!(h.quantile(0.0).unwrap(), s.min);
        prop_assert_eq!(h.quantile(1.0).unwrap(), s.max);
    }

    #[test]
    fn counter_totals_survive_registry_merge(
        a_counts in proptest::collection::vec(("c[0-4]", 1u64..100), 0..20),
        b_counts in proptest::collection::vec(("c[0-4]", 1u64..100), 0..20),
    ) {
        let a = MetricsRegistry::default();
        let b = MetricsRegistry::default();
        let mut expected = std::collections::BTreeMap::<String, u64>::new();
        for (name, delta) in &a_counts {
            a.inc(name, *delta);
            *expected.entry(name.clone()).or_insert(0) += delta;
        }
        for (name, delta) in &b_counts {
            b.inc(name, *delta);
            *expected.entry(name.clone()).or_insert(0) += delta;
        }
        a.merge(&b).unwrap();
        for (name, total) in &expected {
            prop_assert_eq!(a.counter(name), *total, "counter {}", name);
        }
        let grand: u64 = a.counters().iter().map(|(_, v)| v).sum();
        prop_assert_eq!(grand, expected.values().sum::<u64>());
    }

    #[test]
    fn registry_merge_preserves_histogram_moments(
        xs in proptest::collection::vec(0.0..1e4f64, 1..30),
        ys in proptest::collection::vec(0.0..1e4f64, 1..30),
    ) {
        let a = MetricsRegistry::default();
        let b = MetricsRegistry::default();
        for &v in &xs { a.observe("h", v); }
        for &v in &ys { b.observe("h", v); }
        a.merge(&b).unwrap();
        let s = a.histogram_stats("h").unwrap();
        let total: f64 = xs.iter().chain(&ys).sum();
        prop_assert_eq!(s.count, (xs.len() + ys.len()) as u64);
        prop_assert!((s.sum - total).abs() < 1e-6);
    }
}

#[test]
fn quantile_zero_and_one_hit_min_max_even_with_one_value() {
    let h = hist_of(&[42.0]);
    assert_eq!(h.quantile(0.0), Some(42.0));
    assert_eq!(h.quantile(0.5), Some(42.0));
    assert_eq!(h.quantile(1.0), Some(42.0));
}
