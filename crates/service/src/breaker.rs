//! Per-tenant circuit breakers.
//!
//! A tenant whose campaigns keep failing (bad configuration, a poisoned
//! input, a broken submission script) burns shared slots on work that
//! produces nothing. After `threshold` *consecutive* failures the
//! tenant's breaker opens and its arrivals are rejected with
//! [`htcsim::service::RejectReason::CircuitOpen`] until a cool-down
//! elapses; the first campaign after the cool-down probes the tenant —
//! success closes the breaker, another failure re-opens it for a fresh
//! cool-down. This is the same open/probe/close protocol the federation
//! layer applies to unhealthy pools, applied to tenants.

use htcsim::time::SimTime;

/// Breaker state for one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantBreaker {
    consecutive_failures: u32,
    open_until: Option<SimTime>,
    /// Times the breaker opened (telemetry).
    pub opens: u64,
}

impl TenantBreaker {
    /// A closed breaker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Is the breaker rejecting arrivals at `now`? (`threshold` of zero
    /// disables breakers entirely.)
    pub fn is_open(&self, now: SimTime, threshold: u32) -> bool {
        threshold > 0 && self.open_until.is_some_and(|t| now < t)
    }

    /// Record a campaign completion for this tenant. A success closes
    /// the breaker and resets the failure run; a failure extends the
    /// run and opens the breaker for `probe_s` once it reaches
    /// `threshold`. Returns `true` if this call opened the breaker.
    pub fn record(&mut self, now: SimTime, ok: bool, threshold: u32, probe_s: u64) -> bool {
        if ok {
            self.consecutive_failures = 0;
            self.open_until = None;
            return false;
        }
        self.consecutive_failures += 1;
        if threshold > 0 && self.consecutive_failures >= threshold {
            self.open_until = Some(now + probe_s);
            // Re-arm: the next failure after the cool-down re-opens
            // immediately (the probe protocol), rather than needing a
            // fresh run of `threshold` failures.
            self.consecutive_failures = threshold;
            self.opens += 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let mut b = TenantBreaker::new();
        assert!(!b.record(SimTime(10), false, 3, 100));
        assert!(!b.record(SimTime(20), false, 3, 100));
        assert!(!b.is_open(SimTime(25), 3));
        assert!(b.record(SimTime(30), false, 3, 100));
        assert!(b.is_open(SimTime(30), 3));
        assert!(b.is_open(SimTime(129), 3));
        assert!(!b.is_open(SimTime(130), 3), "cool-down elapsed");
        assert_eq!(b.opens, 1);
    }

    #[test]
    fn success_resets_the_failure_run() {
        let mut b = TenantBreaker::new();
        b.record(SimTime(1), false, 3, 100);
        b.record(SimTime(2), false, 3, 100);
        b.record(SimTime(3), true, 3, 100);
        assert!(!b.record(SimTime(4), false, 3, 100));
        assert!(!b.record(SimTime(5), false, 3, 100));
        assert!(b.record(SimTime(6), false, 3, 100), "fresh run of 3");
    }

    #[test]
    fn probe_failure_reopens_immediately() {
        let mut b = TenantBreaker::new();
        for t in 0..3 {
            b.record(SimTime(t), false, 3, 100);
        }
        assert!(b.is_open(SimTime(50), 3));
        // Cool-down passes; the probe campaign fails → re-open at once.
        assert!(b.record(SimTime(200), false, 3, 100));
        assert!(b.is_open(SimTime(250), 3));
        assert_eq!(b.opens, 2);
        // A successful probe closes it fully.
        b.record(SimTime(400), true, 3, 100);
        assert!(!b.is_open(SimTime(400), 3));
    }

    #[test]
    fn zero_threshold_disables() {
        let mut b = TenantBreaker::new();
        for t in 0..10 {
            assert!(!b.record(SimTime(t), false, 0, 100));
        }
        assert!(!b.is_open(SimTime(5), 0));
    }
}
