//! Service-layer policy knobs, mirrored into `FdwConfig` by `fdw-core`
//! as the `service_*` / `tenant_*` keys.

/// Policy configuration of the multi-tenant front-end. The all-off
/// default (`enabled = false`, every protection zeroed) is the
/// robustness-ablation baseline arm.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Master switch; when off the front-end admits everything FIFO
    /// with no quotas, shedding, degradation or breakers.
    pub enabled: bool,
    /// Global cap on concurrently executing campaigns (the service's
    /// slot pool). Zero means a single slot.
    pub max_concurrent: u32,
    /// Deficit-round-robin quantum in work-seconds. Zero disables fair
    /// share (global FIFO by submit time).
    pub fair_share: u32,
    /// Backlog depth at which campaigns start degraded: at `depth` the
    /// factorisation switches to truncated Karhunen–Loève, at twice
    /// `depth` replica counts are halved too. Zero never degrades.
    pub degrade_depth: u32,
    /// Global queued-campaign cap; arrivals beyond it are shed with
    /// [`htcsim::service::ShedReason::BacklogOverflow`]. Zero means
    /// unbounded.
    pub shed_backlog: u32,
    /// Consecutive campaign failures that open a tenant's circuit
    /// breaker. Zero disables breakers.
    pub breaker_threshold: u32,
    /// Seconds an open breaker sheds a tenant's arrivals before letting
    /// traffic probe through again.
    pub breaker_probe_s: u64,
    /// Whether the shared content-addressed artifact store serves
    /// campaigns (off = every campaign recomputes everything).
    pub store_enabled: bool,
    /// Artifact-store byte budget in megabytes; least-recently-used
    /// artifacts are evicted beyond it. Zero means unbounded.
    pub store_budget_mb: u32,
    /// Verify artifact checksums on read; a mismatch quarantines the
    /// entry and recomputes. Off serves silent corruption (the PR-5
    /// fault class) straight into the campaign.
    pub store_verify: bool,
    /// Number of tenants sharing the service.
    pub tenants: u32,
    /// Per-tenant cap on outstanding (queued + running) campaigns;
    /// arrivals beyond it are rejected. Zero means unlimited.
    pub tenant_quota: u32,
    /// Per-tenant queue depth; arrivals beyond it are rejected with
    /// [`htcsim::service::RejectReason::QueueFull`]. Zero means
    /// unbounded.
    pub tenant_queue_depth: u32,
    /// Shed queued campaigns whose deadline can no longer be met
    /// instead of burning capacity on doomed work.
    pub tenant_deadline_shed: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            max_concurrent: 8,
            fair_share: 0,
            degrade_depth: 0,
            shed_backlog: 0,
            breaker_threshold: 0,
            breaker_probe_s: 0,
            store_enabled: false,
            store_budget_mb: 0,
            store_verify: false,
            tenants: 4,
            tenant_quota: 0,
            tenant_queue_depth: 0,
            tenant_deadline_shed: false,
        }
    }
}

impl ServiceConfig {
    /// A fully defended configuration (every protection on) — the
    /// robustness-ablation "on" arm.
    pub fn defended(tenants: u32) -> Self {
        Self {
            enabled: true,
            max_concurrent: 8,
            fair_share: 600,
            degrade_depth: 12,
            shed_backlog: 64,
            breaker_threshold: 3,
            breaker_probe_s: 3_600,
            store_enabled: true,
            store_budget_mb: 64,
            store_verify: true,
            tenants,
            tenant_quota: 24,
            tenant_queue_depth: 16,
            tenant_deadline_shed: true,
        }
    }

    /// An undefended front-end over the same tenant count — everything
    /// admitted FIFO, no store, no shedding.
    pub fn undefended(tenants: u32) -> Self {
        Self {
            enabled: true,
            tenants,
            ..Self::default()
        }
    }

    /// Validate cross-field consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenants == 0 {
            return Err("service tenants must be at least 1".into());
        }
        if self.breaker_threshold > 0 && self.breaker_probe_s == 0 {
            return Err("breaker_probe_s must be positive when breakers are enabled".into());
        }
        if self.degrade_depth > 0
            && self.shed_backlog > 0
            && self.degrade_depth >= self.shed_backlog
        {
            return Err(format!(
                "degrade_depth ({}) must sit below shed_backlog ({}) or degradation never fires",
                self.degrade_depth, self.shed_backlog
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_off() {
        let c = ServiceConfig::default();
        assert!(c.validate().is_ok());
        assert!(!c.enabled);
    }

    #[test]
    fn defended_arm_is_valid() {
        let c = ServiceConfig::defended(6);
        assert!(c.validate().is_ok());
        assert!(c.enabled && c.store_enabled && c.store_verify);
    }

    #[test]
    fn validation_rejects_inconsistencies() {
        let mut c = ServiceConfig {
            tenants: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c = ServiceConfig {
            breaker_threshold: 2,
            breaker_probe_s: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c = ServiceConfig {
            degrade_depth: 10,
            shed_backlog: 10,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }
}
