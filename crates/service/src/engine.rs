//! The service engine: a controller lane plus executor lanes on the
//! sharded DES.
//!
//! Lane 0 holds *all* decision state — tenant queues, DRR deficits,
//! breakers, the artifact store, the user log — so every admission,
//! shedding, degradation and store decision is made by one lane in one
//! deterministic event order. Executor lanes only turn a dispatched
//! campaign into a `Finish` message after its work time; their lane
//! assignment never influences delivery timestamps (the DES `send`
//! clamp is a pure function of the send time), so outcomes are
//! invariant across thread counts *and* executor-shard counts.
//!
//! Two details keep the exec-shard invariance byte-exact even when two
//! campaigns finish at the same instant on different executor lanes:
//! completion records fold into the decision digest through a
//! *commutative* accumulator, and the user log is rebuilt post-run in
//! `(time, job, rank)` order rather than raw handling order.

use std::collections::{BTreeMap, VecDeque};

use fdw_obs::Obs;
use htcsim::des::{digest_fold, LaneModel, ShardedEngine, DIGEST_INIT};
use htcsim::job::{JobEvent, JobEventKind, JobId, OwnerId};
use htcsim::service::{ArtifactKind, DegradeMode, RejectReason, ServiceDetail, ShedReason};
use htcsim::time::SimTime;
use htcsim::userlog::UserLog;

use crate::breaker::TenantBreaker;
use crate::config::ServiceConfig;
use crate::fairshare::DeficitRoundRobin;
use crate::request::{
    artifact_costs_s, full_work_s, CampaignRequest, Disposition, RequestOutcome, WorkloadConfig,
    REPLICA_COST_S,
};
use crate::store::{artifact_bytes, content_digest, ArtifactStore, Lookup, StoreStats};

/// Events on the service lanes.
#[derive(Debug, Clone, Copy)]
enum ServiceEv {
    /// A tenant request reaches the front-end (lane 0).
    Arrive(CampaignRequest),
    /// Controller → executor: run this campaign for `work_s` seconds.
    Start { id: u64, work_s: u64, ok: bool },
    /// Executor → controller: the campaign terminated.
    Finish { id: u64, ok: bool },
}

/// Aggregate decision counters; every field is mode- and
/// thread-invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests that entered a tenant queue.
    pub admitted: u64,
    /// Rejected: per-tenant quota exceeded.
    pub rejected_quota: u64,
    /// Rejected: tenant queue full.
    pub rejected_queue: u64,
    /// Rejected: tenant breaker open.
    pub rejected_breaker: u64,
    /// Shed: global backlog overflow at arrival.
    pub shed_backlog: u64,
    /// Shed: deadline unreachable at dispatch.
    pub shed_deadline: u64,
    /// Campaigns started under truncated Karhunen–Loève.
    pub degraded_kl: u64,
    /// Campaigns started with reduced replicas (and truncated KL).
    pub degraded_replicas: u64,
    /// Campaigns completed with exit 0.
    pub completed: u64,
    /// Completions that missed their deadline.
    pub completed_late: u64,
    /// Campaigns that terminated with a non-zero exit code.
    pub failed: u64,
    /// Breaker-open transitions across all tenants.
    pub breaker_opens: u64,
    /// Work-seconds of in-deadline successful campaigns.
    pub goodput_s: u64,
    /// Work-seconds burned on failed or late campaigns.
    pub badput_s: u64,
}

/// Per-tenant slice of the outcome set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantReport {
    /// Requests this tenant submitted.
    pub submitted: u64,
    /// Completions with exit 0.
    pub completed: u64,
    /// Non-zero exits.
    pub failed: u64,
    /// Admission rejections (all reasons).
    pub rejected: u64,
    /// Shed requests (all reasons).
    pub shed: u64,
    /// Campaigns run degraded.
    pub degraded: u64,
    /// Work-seconds of in-deadline successes.
    pub goodput_s: u64,
    /// p99 of completed-campaign latency (finish − submit), seconds.
    pub p99_latency_s: u64,
}

/// Everything one service run produces.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Events handled / makespan / full engine digest (thread-invariant
    /// for a fixed lane count).
    pub events: u64,
    /// Time of the last handled event.
    pub makespan: SimTime,
    /// Engine digest (lane-structure dependent; compare across thread
    /// counts at fixed `exec_shards`).
    pub engine_digest: u64,
    /// Decision digest: every admission/shed/degrade/store/start
    /// decision plus a commutative fold of completions — invariant
    /// across threads *and* executor shard counts.
    pub decision_digest: u64,
    /// Terminal disposition of every request, in request-id order.
    pub outcomes: Vec<RequestOutcome>,
    /// Aggregate counters.
    pub stats: ServiceStats,
    /// Artifact-store counters.
    pub store: StoreStats,
    /// Per-tenant rollups, keyed by tenant id.
    pub per_tenant: BTreeMap<u32, TenantReport>,
    /// Requests that never reached a terminal disposition — must be 0;
    /// surfaced (rather than asserted) so benches can gate on it.
    pub unaccounted: usize,
    /// The service user log (codes 000/001/005 plus 033–038).
    pub log: UserLog,
}

impl ServiceReport {
    /// Goodput fraction: delivered campaign value over all offered work
    /// (the ablation's headline metric). An in-deadline completion
    /// delivers its campaign — its *offered* (undegraded) work counts,
    /// same as the per-tenant rollups — so graceful degradation reads as
    /// what it is: keeping deliverables flowing under overload, not as a
    /// goodput loss for computing fewer seconds. `stats.goodput_s` keeps
    /// the stricter actual-work-seconds accounting.
    pub fn goodput_fraction(&self) -> f64 {
        let mut offered = 0u64;
        let mut delivered = 0u64;
        for o in &self.outcomes {
            let work = full_work_s(o.request.class, o.request.replicas);
            offered += work;
            if let Disposition::Completed {
                in_deadline: true, ..
            } = o.disposition
            {
                delivered += work;
            }
        }
        if offered == 0 {
            return 0.0;
        }
        delivered as f64 / offered as f64
    }

    /// Publish the run's counters under the `service.*` / `tenant.*`
    /// metric namespaces.
    pub fn publish_obs(&self, obs: &Obs) {
        let s = &self.stats;
        for (name, v) in [
            ("service.admitted", s.admitted),
            ("service.rejected.quota", s.rejected_quota),
            ("service.rejected.queue_full", s.rejected_queue),
            ("service.rejected.breaker", s.rejected_breaker),
            ("service.shed.backlog", s.shed_backlog),
            ("service.shed.deadline", s.shed_deadline),
            ("service.degraded.kl", s.degraded_kl),
            ("service.degraded.replicas", s.degraded_replicas),
            ("service.completed", s.completed),
            ("service.completed_late", s.completed_late),
            ("service.failed", s.failed),
            ("service.breaker.opens", s.breaker_opens),
            ("service.goodput_s", s.goodput_s),
            ("service.badput_s", s.badput_s),
            ("service.store.hits", self.store.hits),
            (
                "service.store.cross_tenant_hits",
                self.store.cross_tenant_hits,
            ),
            ("service.store.misses", self.store.misses),
            ("service.store.quarantines", self.store.quarantines),
            ("service.store.evictions", self.store.evictions),
        ] {
            if v > 0 {
                obs.inc(name, v);
            }
        }
        for (tenant, t) in &self.per_tenant {
            obs.gauge(&format!("tenant.{tenant}.goodput_s"), t.goodput_s as f64);
        }
        for o in &self.outcomes {
            if let Disposition::Completed { finish, .. } = o.disposition {
                obs.observe(
                    "service.latency_s",
                    (finish.as_secs() - o.request.submit.as_secs()) as f64,
                );
            }
        }
    }
}

/// In-flight bookkeeping the controller needs back at `Finish` time.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    request: CampaignRequest,
    degraded: Option<DegradeMode>,
    replicas: u32,
    work_s: u64,
}

/// One raw log record plus its stable-sort rank (see module docs).
#[derive(Debug, Clone, Copy)]
struct RawEvent {
    rank: u8,
    ev: JobEvent,
}

struct Controller {
    cfg: ServiceConfig,
    exec_shards: u32,
    store: Option<ArtifactStore>,
    queues: BTreeMap<u32, VecDeque<CampaignRequest>>,
    drr: DeficitRoundRobin,
    breakers: BTreeMap<u32, TenantBreaker>,
    running: u32,
    running_of: BTreeMap<u32, u32>,
    inflight: BTreeMap<u64, InFlight>,
    outcomes: BTreeMap<u64, RequestOutcome>,
    stats: ServiceStats,
    raw_log: Vec<RawEvent>,
    /// Ordered fold of arrival + dispatch decisions.
    digest: u64,
    /// Commutative fold of completion records (exec-shard invariant).
    finish_acc: u64,
}

/// Stable-sort rank of an event kind within one `(time, job)` group.
fn kind_rank(kind: JobEventKind) -> u8 {
    match kind {
        JobEventKind::Submitted => 0,
        JobEventKind::ServiceRejected => 1,
        JobEventKind::ServiceAdmitted => 2,
        JobEventKind::ServiceShed => 3,
        JobEventKind::ServiceDegraded => 4,
        JobEventKind::ArtifactQuarantined => 5,
        JobEventKind::ArtifactHit => 6,
        JobEventKind::ExecuteStarted => 7,
        _ => 8,
    }
}

impl Controller {
    fn log(&mut self, ev: JobEvent) {
        self.raw_log.push(RawEvent {
            rank: kind_rank(ev.kind),
            ev,
        });
    }

    fn fold(&mut self, tag: u64, a: u64, b: u64) {
        self.digest = digest_fold(self.digest, tag);
        self.digest = digest_fold(self.digest, a);
        self.digest = digest_fold(self.digest, b);
    }

    fn outstanding(&self, tenant: u32) -> u32 {
        let queued = self.queues.get(&tenant).map_or(0, |q| q.len() as u32);
        queued + self.running_of.get(&tenant).copied().unwrap_or(0)
    }

    fn backlog(&self) -> u32 {
        self.queues.values().map(|q| q.len() as u32).sum()
    }

    fn terminal(&mut self, req: CampaignRequest, disposition: Disposition) {
        self.outcomes.insert(
            req.id,
            RequestOutcome {
                request: req,
                disposition,
            },
        );
    }

    fn arrive(
        &mut self,
        now: SimTime,
        req: CampaignRequest,
        fx: &mut htcsim::des::Effects<'_, ServiceEv>,
    ) {
        let ev = JobEvent::new(
            now,
            JobId(req.id),
            OwnerId(req.tenant),
            JobEventKind::Submitted,
        );
        let protections = self.cfg.enabled;
        // Admission ladder: breaker → quota → queue depth → backlog.
        if protections && self.cfg.breaker_threshold > 0 {
            let open = self
                .breakers
                .get(&req.tenant)
                .is_some_and(|b| b.is_open(now, self.cfg.breaker_threshold));
            if open {
                self.reject(now, req, RejectReason::CircuitOpen);
                return;
            }
        }
        if protections
            && self.cfg.tenant_quota > 0
            && self.outstanding(req.tenant) >= self.cfg.tenant_quota
        {
            self.reject(now, req, RejectReason::QuotaExceeded);
            return;
        }
        if protections && self.cfg.tenant_queue_depth > 0 {
            let depth = self.queues.get(&req.tenant).map_or(0, |q| q.len() as u32);
            if depth >= self.cfg.tenant_queue_depth {
                self.reject(now, req, RejectReason::QueueFull);
                return;
            }
        }
        if protections && self.cfg.shed_backlog > 0 && self.backlog() >= self.cfg.shed_backlog {
            self.log(ev);
            self.log(
                JobEvent::new(
                    now,
                    JobId(req.id),
                    OwnerId(req.tenant),
                    JobEventKind::ServiceShed,
                )
                .with_service(ServiceDetail::Shed(ShedReason::BacklogOverflow)),
            );
            self.stats.shed_backlog += 1;
            self.fold(3, req.id, ShedReason::BacklogOverflow as u64);
            self.terminal(req, Disposition::Shed(ShedReason::BacklogOverflow));
            return;
        }
        self.log(ev);
        self.log(JobEvent::new(
            now,
            JobId(req.id),
            OwnerId(req.tenant),
            JobEventKind::ServiceAdmitted,
        ));
        self.stats.admitted += 1;
        self.fold(1, req.id, now.as_secs());
        self.queues.entry(req.tenant).or_default().push_back(req);
        self.dispatch(now, fx);
    }

    fn reject(&mut self, now: SimTime, req: CampaignRequest, reason: RejectReason) {
        self.log(
            JobEvent::new(
                now,
                JobId(req.id),
                OwnerId(req.tenant),
                JobEventKind::ServiceRejected,
            )
            .with_service(ServiceDetail::Reject(reason)),
        );
        match reason {
            RejectReason::QuotaExceeded => self.stats.rejected_quota += 1,
            RejectReason::QueueFull => self.stats.rejected_queue += 1,
            RejectReason::CircuitOpen => self.stats.rejected_breaker += 1,
        }
        self.fold(2, req.id, reason as u64);
        self.terminal(req, Disposition::Rejected(reason));
    }

    /// Fill free slots from the queues. The pick sequence is a pure
    /// function of queue + DRR state, never of which event triggered
    /// the call — that is what makes simultaneous finishes on
    /// different executor lanes order-insensitive.
    fn dispatch(&mut self, now: SimTime, fx: &mut htcsim::des::Effects<'_, ServiceEv>) {
        let cap = self.cfg.max_concurrent.max(1);
        while self.running < cap {
            let heads: BTreeMap<u32, u64> = self
                .queues
                .iter()
                .filter(|(_, q)| !q.is_empty())
                .map(|(t, q)| {
                    let head = q.front().expect("nonempty queue");
                    (*t, full_work_s(head.class, head.replicas))
                })
                .collect();
            if heads.is_empty() {
                break;
            }
            let tenant = if self.cfg.enabled && self.cfg.fair_share > 0 {
                match self.drr.pick(&heads, self.cfg.fair_share as u64) {
                    Some(t) => t,
                    None => break,
                }
            } else {
                // Global FIFO: the tenant whose head arrived first.
                *self
                    .queues
                    .iter()
                    .filter(|(_, q)| !q.is_empty())
                    .min_by_key(|(_, q)| {
                        let h = q.front().expect("nonempty queue");
                        (h.submit, h.id)
                    })
                    .map(|(t, _)| t)
                    .expect("heads nonempty")
            };
            let req = self
                .queues
                .get_mut(&tenant)
                .and_then(|q| q.pop_front())
                .expect("picked tenant has a head");
            if self.queues.get(&tenant).is_some_and(|q| q.is_empty()) {
                self.drr.reset(tenant);
            }
            self.start(now, req, fx);
        }
    }

    /// Degrade ladder → deadline shed → artifact store → executor send.
    fn start(
        &mut self,
        now: SimTime,
        req: CampaignRequest,
        fx: &mut htcsim::des::Effects<'_, ServiceEv>,
    ) {
        let jid = JobId(req.id);
        let owner = OwnerId(req.tenant);
        // Backlog including this campaign drives the degradation ladder.
        let backlog = self.backlog() + 1;
        let degraded = if self.cfg.enabled && self.cfg.degrade_depth > 0 {
            if backlog >= 2 * self.cfg.degrade_depth {
                Some(DegradeMode::ReducedReplicas)
            } else if backlog >= self.cfg.degrade_depth {
                Some(DegradeMode::TruncatedKl)
            } else {
                None
            }
        } else {
            None
        };
        let truncated = degraded.is_some();
        let replicas = match degraded {
            Some(DegradeMode::ReducedReplicas) => (req.replicas / 2).max(1),
            _ => req.replicas,
        };
        // Per-artifact recompute costs under the chosen mode.
        let (dist_s, gf_s, factor_full) = artifact_costs_s(req.class);
        let factor_s = if truncated {
            factor_full / 2
        } else {
            factor_full
        };
        let kinds = [
            (ArtifactKind::DistanceMatrix, dist_s, false),
            (ArtifactKind::GfLibrary, gf_s, false),
            (ArtifactKind::Factor, factor_s, truncated),
        ];
        // Deadline check against the cheapest possible execution (all
        // artifacts hit, degraded replicas): if even that cannot land by
        // the deadline, shed instead of burning slots.
        if self.cfg.enabled && self.cfg.tenant_deadline_shed {
            let floor = replicas as u64 * REPLICA_COST_S;
            if now + floor > req.deadline {
                self.log(
                    JobEvent::new(now, jid, owner, JobEventKind::ServiceShed)
                        .with_service(ServiceDetail::Shed(ShedReason::DeadlineUnreachable)),
                );
                self.stats.shed_deadline += 1;
                self.fold(3, req.id, ShedReason::DeadlineUnreachable as u64);
                self.terminal(req, Disposition::Shed(ShedReason::DeadlineUnreachable));
                return;
            }
        }
        if let Some(mode) = degraded {
            self.log(
                JobEvent::new(now, jid, owner, JobEventKind::ServiceDegraded)
                    .with_service(ServiceDetail::Degrade(mode)),
            );
            match mode {
                DegradeMode::TruncatedKl => self.stats.degraded_kl += 1,
                DegradeMode::ReducedReplicas => self.stats.degraded_replicas += 1,
            }
            self.fold(4, req.id, mode as u64);
        }
        // Artifact phase: store hits cost nothing; misses compute and
        // share; quarantines recompute. A corrupt artifact served with
        // verification off poisons the campaign.
        let mut work_s = replicas as u64 * REPLICA_COST_S;
        let mut poisoned = false;
        for (kind, cost_s, kl) in kinds {
            if !(self.cfg.enabled && self.cfg.store_enabled) {
                work_s += cost_s;
                continue;
            }
            let digest = content_digest(kind, req.class, kl);
            let store = self.store.as_mut().expect("store enabled implies store");
            match store.lookup(digest, req.tenant) {
                Lookup::Hit { .. } => {
                    self.log(
                        JobEvent::new(now, jid, owner, JobEventKind::ArtifactHit)
                            .with_service(ServiceDetail::Artifact(kind)),
                    );
                    self.fold(5, req.id, kind as u64);
                }
                Lookup::ServedCorrupt => {
                    // Indistinguishable from a hit at serve time; the
                    // poison surfaces as a failed campaign.
                    self.log(
                        JobEvent::new(now, jid, owner, JobEventKind::ArtifactHit)
                            .with_service(ServiceDetail::Artifact(kind)),
                    );
                    self.fold(5, req.id, kind as u64);
                    poisoned = true;
                }
                Lookup::Quarantined => {
                    self.log(
                        JobEvent::new(now, jid, owner, JobEventKind::ArtifactQuarantined)
                            .with_service(ServiceDetail::Artifact(kind)),
                    );
                    self.fold(6, req.id, kind as u64);
                    work_s += cost_s;
                    let store = self.store.as_mut().expect("store enabled implies store");
                    store.insert(digest, artifact_bytes(kind, req.class), req.tenant);
                }
                Lookup::Miss => {
                    work_s += cost_s;
                    store.insert(digest, artifact_bytes(kind, req.class), req.tenant);
                }
            }
        }
        let work_s = work_s.max(1);
        let ok = !req.fails && !poisoned;
        self.log(JobEvent::new(now, jid, owner, JobEventKind::ExecuteStarted));
        self.fold(7, req.id, work_s);
        self.inflight.insert(
            req.id,
            InFlight {
                request: req,
                degraded,
                replicas,
                work_s,
            },
        );
        self.running += 1;
        *self.running_of.entry(req.tenant).or_insert(0) += 1;
        let lane = 1 + req.tenant % self.exec_shards.max(1);
        fx.send(
            lane,
            0,
            ServiceEv::Start {
                id: req.id,
                work_s,
                ok,
            },
        );
    }

    fn finish(
        &mut self,
        now: SimTime,
        id: u64,
        ok: bool,
        fx: &mut htcsim::des::Effects<'_, ServiceEv>,
    ) {
        let Some(fl) = self.inflight.remove(&id) else {
            return;
        };
        let req = fl.request;
        self.running = self.running.saturating_sub(1);
        if let Some(r) = self.running_of.get_mut(&req.tenant) {
            *r = r.saturating_sub(1);
        }
        let in_deadline = now <= req.deadline;
        if ok {
            self.log(
                JobEvent::new(now, JobId(id), OwnerId(req.tenant), JobEventKind::Completed)
                    .with_exit(0),
            );
            self.stats.completed += 1;
            if in_deadline {
                self.stats.goodput_s += fl.work_s;
            } else {
                self.stats.completed_late += 1;
                self.stats.badput_s += fl.work_s;
            }
            self.terminal(
                req,
                Disposition::Completed {
                    finish: now,
                    degraded: fl.degraded,
                    replicas: fl.replicas,
                    in_deadline,
                },
            );
        } else {
            self.log(
                JobEvent::new(now, JobId(id), OwnerId(req.tenant), JobEventKind::Failed)
                    .with_exit(1),
            );
            self.stats.failed += 1;
            self.stats.badput_s += fl.work_s;
            self.terminal(req, Disposition::Failed { finish: now });
        }
        let opened = self.breakers.entry(req.tenant).or_default().record(
            now,
            ok,
            self.cfg.breaker_threshold,
            self.cfg.breaker_probe_s,
        );
        if self.cfg.enabled && opened {
            self.stats.breaker_opens += 1;
        }
        // Commutative completion fold: simultaneous finishes on
        // different executor lanes land in lane order, which varies
        // with exec_shards; a wrapping sum is order-blind.
        let mut h = DIGEST_INIT;
        h = digest_fold(h, id);
        h = digest_fold(h, now.as_secs());
        h = digest_fold(h, ok as u64 + 1);
        self.finish_acc = self.finish_acc.wrapping_add(h);
        self.dispatch(now, fx);
    }

    fn decision_digest(&self) -> u64 {
        let mut h = digest_fold(self.digest, self.finish_acc);
        if let Some(store) = &self.store {
            h = digest_fold(h, store.content_fingerprint());
        }
        h
    }
}

/// Executor lane: echoes `Finish` after the campaign's work time.
#[derive(Debug, Default)]
struct Executor {
    digest: u64,
}

/// The two lane flavours behind one [`LaneModel`] impl.
enum Lane {
    Controller(Box<Controller>),
    Executor(Executor),
}

impl LaneModel for Lane {
    type Ev = ServiceEv;

    fn handle(
        &mut self,
        now: SimTime,
        ev: ServiceEv,
        fx: &mut htcsim::des::Effects<'_, ServiceEv>,
    ) {
        match self {
            Lane::Controller(c) => match ev {
                ServiceEv::Arrive(req) => c.arrive(now, req, fx),
                ServiceEv::Finish { id, ok } => c.finish(now, id, ok, fx),
                ServiceEv::Start { .. } => {}
            },
            Lane::Executor(x) => {
                if let ServiceEv::Start { id, work_s, ok } = ev {
                    x.digest = digest_fold(x.digest, id);
                    x.digest = digest_fold(x.digest, work_s);
                    fx.send(0, work_s, ServiceEv::Finish { id, ok });
                }
            }
        }
    }

    fn digest(&self) -> u64 {
        match self {
            Lane::Controller(c) => c.decision_digest(),
            Lane::Executor(x) => x.digest,
        }
    }
}

/// Run one multi-tenant service campaign: generate the request stream,
/// drive it through the front-end on the sharded DES, and roll up the
/// report. `exec_shards` sets the number of executor lanes (≥ 1);
/// `threads` is the fork-join budget (1 = sequential). Decisions,
/// outcomes and the rendered user log are invariant across both.
pub fn run_service(
    cfg: &ServiceConfig,
    wl: &WorkloadConfig,
    exec_shards: u32,
    epoch_s: u64,
    threads: usize,
) -> ServiceReport {
    let exec_shards = exec_shards.max(1);
    let stream = crate::request::request_stream(wl, cfg.tenants, cfg.max_concurrent);
    let expected = stream.len();
    let store = (cfg.enabled && cfg.store_enabled).then(|| {
        ArtifactStore::new(
            cfg.store_budget_mb,
            cfg.store_verify,
            wl.corrupt_permille,
            wl.seed,
        )
    });
    let controller = Controller {
        cfg: cfg.clone(),
        exec_shards,
        store,
        queues: BTreeMap::new(),
        drr: DeficitRoundRobin::new(),
        breakers: BTreeMap::new(),
        running: 0,
        running_of: BTreeMap::new(),
        inflight: BTreeMap::new(),
        outcomes: BTreeMap::new(),
        stats: ServiceStats::default(),
        raw_log: Vec::new(),
        digest: DIGEST_INIT,
        finish_acc: 0,
    };
    let mut lanes = vec![Lane::Controller(Box::new(controller))];
    for _ in 0..exec_shards {
        lanes.push(Lane::Executor(Executor::default()));
    }
    let mut engine = ShardedEngine::new(lanes, epoch_s);
    for req in stream {
        engine.seed_event(0, req.submit, ServiceEv::Arrive(req));
    }
    let er = engine.run_sharded(threads.max(1));
    let controller = engine
        .models()
        .find_map(|l| match l {
            Lane::Controller(c) => Some(c),
            Lane::Executor(_) => None,
        })
        .expect("lane 0 is the controller");

    // Rebuild the log in the mode-invariant (time, job, rank) order.
    let mut raw = controller.raw_log.clone();
    raw.sort_by_key(|r| (r.ev.time, r.ev.job, r.rank));
    let mut log = UserLog::new();
    for r in &raw {
        log.record(r.ev);
    }

    let outcomes: Vec<RequestOutcome> = controller.outcomes.values().copied().collect();
    let mut per_tenant: BTreeMap<u32, TenantReport> = BTreeMap::new();
    let mut latencies: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for o in &outcomes {
        let t = per_tenant.entry(o.request.tenant).or_default();
        t.submitted += 1;
        match o.disposition {
            Disposition::Completed {
                finish,
                degraded,
                in_deadline,
                ..
            } => {
                t.completed += 1;
                if degraded.is_some() {
                    t.degraded += 1;
                }
                let work = full_work_s(o.request.class, o.request.replicas);
                if in_deadline {
                    // Per-tenant goodput uses offered work so the
                    // degraded arm is not credited for doing less.
                    t.goodput_s += work;
                }
                latencies
                    .entry(o.request.tenant)
                    .or_default()
                    .push(finish.as_secs() - o.request.submit.as_secs());
            }
            Disposition::Failed { .. } => t.failed += 1,
            Disposition::Rejected(_) => t.rejected += 1,
            Disposition::Shed(_) => t.shed += 1,
        }
    }
    for (tenant, mut ls) in latencies {
        ls.sort_unstable();
        let idx = (ls.len() - 1) * 99 / 100;
        if let Some(t) = per_tenant.get_mut(&tenant) {
            t.p99_latency_s = ls[idx];
        }
    }
    let store_stats = controller
        .store
        .as_ref()
        .map(|s| s.stats())
        .unwrap_or_default();
    ServiceReport {
        events: er.events,
        makespan: er.makespan,
        engine_digest: er.digest,
        decision_digest: controller.decision_digest(),
        unaccounted: expected - outcomes.len(),
        outcomes,
        stats: controller.stats,
        store: store_stats,
        per_tenant,
        log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl(seed: u64, overload: f64) -> WorkloadConfig {
        WorkloadConfig {
            seed,
            overload_x: overload,
            ..Default::default()
        }
    }

    #[test]
    fn every_request_terminates() {
        for cfg in [ServiceConfig::undefended(4), ServiceConfig::defended(4)] {
            let r = run_service(&cfg, &wl(3, 4.0), 2, 60, 1);
            assert_eq!(r.unaccounted, 0, "dropped-then-forgotten requests");
            assert_eq!(r.outcomes.len(), 120);
            for (i, o) in r.outcomes.iter().enumerate() {
                assert_eq!(o.request.id, i as u64, "outcomes in id order");
            }
        }
    }

    #[test]
    fn undefended_arm_completes_everything_eventually() {
        let r = run_service(&ServiceConfig::undefended(4), &wl(1, 2.0), 1, 60, 1);
        assert_eq!(r.stats.completed as usize, r.outcomes.len());
        assert_eq!(r.stats.failed, 0);
        assert!(
            r.stats.completed_late > 0,
            "2x overload must cause lateness"
        );
    }

    #[test]
    fn defended_arm_exercises_every_mechanism() {
        let cfg = ServiceConfig::defended(4);
        let w = WorkloadConfig {
            seed: 5,
            campaigns: 300,
            overload_x: 6.0,
            fail_permille: 150,
            corrupt_permille: 300,
            ..Default::default()
        };
        let r = run_service(&cfg, &w, 2, 60, 1);
        assert_eq!(r.unaccounted, 0);
        let s = &r.stats;
        assert!(s.admitted > 0 && s.completed > 0);
        assert!(
            s.rejected_quota + s.rejected_queue + s.rejected_breaker > 0,
            "admission control never fired: {s:?}"
        );
        assert!(
            s.shed_backlog + s.shed_deadline > 0,
            "load shedding never fired: {s:?}"
        );
        assert!(
            s.degraded_kl + s.degraded_replicas > 0,
            "degradation never fired: {s:?}"
        );
        assert!(s.breaker_opens > 0, "breakers never opened: {s:?}");
        assert!(r.store.hits > 0 && r.store.cross_tenant_hits > 0);
        assert!(r.store.quarantines > 0, "corruption never quarantined");
    }

    #[test]
    fn decisions_invariant_across_threads_and_exec_shards() {
        let cfg = ServiceConfig::defended(5);
        let w = WorkloadConfig {
            seed: 9,
            campaigns: 200,
            overload_x: 4.0,
            fail_permille: 100,
            corrupt_permille: 30,
            ..Default::default()
        };
        let base = run_service(&cfg, &w, 1, 60, 1);
        for (shards, threads) in [(1, 2), (2, 1), (2, 4), (4, 2), (7, 3)] {
            let r = run_service(&cfg, &w, shards, 60, threads);
            assert_eq!(
                r.decision_digest, base.decision_digest,
                "decision digest drifted at shards={shards} threads={threads}"
            );
            assert_eq!(r.outcomes, base.outcomes);
            assert_eq!(r.stats, base.stats);
            assert_eq!(
                htcsim::condor_log::to_condor_log(&r.log),
                htcsim::condor_log::to_condor_log(&base.log),
                "ULOG bytes drifted at shards={shards} threads={threads}"
            );
        }
        // Full engine digest is thread-invariant at fixed lane count.
        let a = run_service(&cfg, &w, 3, 60, 1);
        let b = run_service(&cfg, &w, 3, 60, 8);
        assert_eq!(a.engine_digest, b.engine_digest);
    }

    #[test]
    fn store_halves_work_under_shared_classes() {
        let on = ServiceConfig::defended(4);
        let off = ServiceConfig {
            store_enabled: false,
            ..on.clone()
        };
        let w = wl(2, 3.0);
        let r_on = run_service(&on, &w, 2, 60, 1);
        let r_off = run_service(&off, &w, 2, 60, 1);
        assert!(r_on.store.hits > 0);
        assert_eq!(r_off.store, StoreStats::default());
        // Shared artifacts strictly reduce total computed work.
        let work = |r: &ServiceReport| r.stats.goodput_s + r.stats.badput_s;
        assert!(
            work(&r_on) < work(&r_off),
            "store must shed recompute work: {} vs {}",
            work(&r_on),
            work(&r_off)
        );
    }

    #[test]
    fn goodput_fraction_bounded() {
        let r = run_service(&ServiceConfig::defended(4), &wl(11, 2.0), 2, 60, 2);
        let f = r.goodput_fraction();
        assert!((0.0..=1.0).contains(&f), "goodput fraction {f}");
        assert!(f > 0.0);
    }

    #[test]
    fn obs_counters_published() {
        let obs = Obs::enabled();
        let r = run_service(&ServiceConfig::defended(4), &wl(3, 4.0), 2, 60, 1);
        r.publish_obs(&obs);
        assert_eq!(obs.counter("service.admitted"), r.stats.admitted);
        assert_eq!(obs.counter("service.completed"), r.stats.completed);
        assert!(obs.histogram_stats("service.latency_s").is_some());
    }
}
