//! Deficit-round-robin fair share across tenants.
//!
//! The cluster underneath already fair-shares *jobs* across owners;
//! the front-end must fair-share *campaigns* across tenants, in units
//! of work-seconds (a class-5 campaign is an order of magnitude more
//! work than a class-0 one, so counting campaigns would let heavy
//! tenants dominate). Classic DRR: tenants are visited in a fixed
//! rotation; each visit adds `quantum` work-seconds to the tenant's
//! deficit; the tenant dispatches its head campaign when the deficit
//! covers its cost. Deterministic by construction — state is plain
//! integers and the rotation order is tenant-id order.

use std::collections::BTreeMap;

/// DRR state: per-tenant deficit counters plus the rotation cursor.
#[derive(Debug, Clone, Default)]
pub struct DeficitRoundRobin {
    deficit: BTreeMap<u32, u64>,
    cursor: u32,
}

impl DeficitRoundRobin {
    /// Fresh scheduler with no accumulated deficits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pick the next tenant to dispatch from, given each backlogged
    /// tenant's head-of-queue cost in work-seconds. Visits tenants in
    /// rotation from the cursor, topping deficits by `quantum` per
    /// visit, until some tenant's deficit covers its head cost; that
    /// tenant is charged and returned. Returns `None` when `heads` is
    /// empty. Tenants absent from `heads` (empty queues) have their
    /// deficit reset so idle tenants cannot bank credit.
    pub fn pick(&mut self, heads: &BTreeMap<u32, u64>, quantum: u64) -> Option<u32> {
        if heads.is_empty() {
            return None;
        }
        self.deficit.retain(|t, _| heads.contains_key(t));
        let tenants: Vec<u32> = heads.keys().copied().collect();
        let quantum = quantum.max(1);
        // Start from the rotation cursor; bounded by the worst case of
        // every tenant needing max_cost/quantum visits.
        let max_cost = heads.values().copied().max().unwrap_or(0);
        let max_rounds = (max_cost / quantum + 2) as usize * tenants.len() + tenants.len();
        let start = tenants.iter().position(|t| *t >= self.cursor).unwrap_or(0);
        for step in 0..max_rounds {
            let t = tenants[(start + step) % tenants.len()];
            let d = self.deficit.entry(t).or_insert(0);
            *d += quantum;
            let cost = heads[&t];
            if *d >= cost {
                *d -= cost;
                // Next pick resumes after this tenant.
                self.cursor = t + 1;
                return Some(t);
            }
        }
        None
    }

    /// Drop a tenant's banked deficit (its queue emptied).
    pub fn reset(&mut self, tenant: u32) {
        self.deficit.remove(&tenant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heads(pairs: &[(u32, u64)]) -> BTreeMap<u32, u64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn equal_costs_round_robin() {
        let mut drr = DeficitRoundRobin::new();
        let h = heads(&[(0, 100), (1, 100), (2, 100)]);
        let picks: Vec<u32> = (0..6).map(|_| drr.pick(&h, 100).expect("some")).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn heavy_tenant_waits_proportionally() {
        // Tenant 0's campaigns cost 4x tenant 1's: over 10 picks tenant 1
        // must dispatch about 4x as often.
        let mut drr = DeficitRoundRobin::new();
        let h = heads(&[(0, 400), (1, 100)]);
        let picks: Vec<u32> = (0..10).map(|_| drr.pick(&h, 100).expect("some")).collect();
        let t0 = picks.iter().filter(|t| **t == 0).count();
        let t1 = picks.iter().filter(|t| **t == 1).count();
        assert!(t1 >= 3 * t0, "picks {picks:?}");
        assert!(t0 >= 1, "heavy tenant must not starve: {picks:?}");
    }

    #[test]
    fn empty_heads_yield_none_and_reset_clears_credit() {
        let mut drr = DeficitRoundRobin::new();
        assert_eq!(drr.pick(&BTreeMap::new(), 100), None);
        let h = heads(&[(5, 300)]);
        assert_eq!(drr.pick(&h, 100), Some(5));
        drr.reset(5);
        // After reset the tenant needs fresh visits again; with a big
        // quantum one visit suffices.
        assert_eq!(drr.pick(&h, 300), Some(5));
    }

    #[test]
    fn idle_tenants_cannot_bank_credit() {
        let mut drr = DeficitRoundRobin::new();
        let both = heads(&[(0, 100), (1, 100)]);
        drr.pick(&both, 100);
        // Tenant 1 goes idle; many picks for tenant 0 alone.
        let only0 = heads(&[(0, 100)]);
        for _ in 0..5 {
            drr.pick(&only0, 100);
        }
        // Tenant 1 returns with no banked deficit: picks alternate.
        let picks: Vec<u32> = (0..4)
            .map(|_| drr.pick(&both, 100).expect("some"))
            .collect();
        let t1 = picks.iter().filter(|t| **t == 1).count();
        assert_eq!(t1, 2, "picks {picks:?}");
    }

    #[test]
    fn deterministic_across_clones() {
        let mut a = DeficitRoundRobin::new();
        let mut b = DeficitRoundRobin::new();
        let h = heads(&[(0, 130), (1, 70), (2, 260)]);
        for _ in 0..20 {
            assert_eq!(a.pick(&h, 50), b.pick(&h, 50));
        }
    }
}
