//! # fdw-service — FDW-as-a-service campaign front-end
//!
//! The paper's workflow serves *one* research group; the obvious next
//! step for shared cyberinfrastructure is many groups submitting
//! scenario campaigns against the same federated substrate. This crate
//! models that front-end as a deterministic, sim-time service layered
//! over the sharded DES ([`htcsim::des`]):
//!
//! * **admission control** — per-tenant outstanding-campaign quotas,
//!   bounded per-tenant queues, and a global concurrency cap
//!   ([`config::ServiceConfig`]);
//! * **fair-share scheduling** — deficit round robin across tenants
//!   ([`fairshare`]), so one noisy tenant cannot starve the rest;
//! * **backpressure and load shedding** — a global backlog cap and
//!   deadline-aware shedding with typed reasons
//!   ([`htcsim::service::ShedReason`]), so overload degrades goodput
//!   gracefully instead of collapsing it;
//! * **per-tenant circuit breakers** ([`breaker`]) — repeated campaign
//!   failures open the breaker and shed that tenant's arrivals for a
//!   cool-down, protecting shared capacity;
//! * **graceful degradation** — under deep backlog, campaigns start in
//!   a cheaper mode (truncated Karhunen–Loève factorisation, then
//!   reduced replica counts) instead of being shed;
//! * a **content-addressed shared artifact store** ([`store`]) — the
//!   `.npy` distance matrices, Green's-function libraries and
//!   covariance factors that FDW recycles *within* one campaign are
//!   deduplicated *across tenants*: computed once fleet-wide, keyed by
//!   content digest, verified on read (quarantine-and-recompute on
//!   checksum mismatch), and evicted LRU under a byte budget.
//!
//! Every decision the service makes is a pure function of the seed and
//! the request stream: the engine runs on [`htcsim::des::ShardedEngine`]
//! and inherits its thread/shard byte-determinism contract, and each
//! decision is folded into a decision digest so drift is detectable.
//! Science is *not* computed here — `fdw-core` maps the service's
//! request outcomes onto actual rupture draws and checks that the
//! shared store never changes a tenant's science digest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod config;
pub mod engine;
pub mod fairshare;
pub mod request;
pub mod store;

/// Glob import of the most-used types.
pub mod prelude {
    pub use crate::breaker::TenantBreaker;
    pub use crate::config::ServiceConfig;
    pub use crate::engine::{run_service, ServiceReport, ServiceStats, TenantReport};
    pub use crate::fairshare::DeficitRoundRobin;
    pub use crate::request::{
        request_stream, CampaignRequest, Disposition, RequestOutcome, WorkloadConfig,
    };
    pub use crate::store::{ArtifactStore, StoreStats};
}
