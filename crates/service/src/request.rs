//! Campaign requests, terminal dispositions, and the deterministic
//! multi-tenant request stream the overload campaigns replay.

use htcsim::service::{DegradeMode, RejectReason, ShedReason};
use htcsim::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One tenant's scenario-campaign request: "generate `replicas`
/// waveform replicas of scenario class `class` before `deadline`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignRequest {
    /// Request id, unique and dense across the stream (also the ULOG
    /// job id).
    pub id: u64,
    /// Submitting tenant (the ULOG owner).
    pub tenant: u32,
    /// Scenario class: selects mesh size and artifact content. Requests
    /// of the same class share every artifact, whoever submits them.
    pub class: u32,
    /// Submission time.
    pub submit: SimTime,
    /// Latest useful completion time; later completions are badput.
    pub deadline: SimTime,
    /// Waveform replicas requested (the B-phase fan-out width).
    pub replicas: u32,
    /// Deterministic fault injection: this campaign's execution fails
    /// with a non-zero exit code regardless of the service's decisions.
    pub fails: bool,
}

/// How one request terminated. Every request in the stream ends in
/// exactly one of these — the "no dropped-then-forgotten requests"
/// invariant the report enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Ran to completion with exit code 0.
    Completed {
        /// Finish time.
        finish: SimTime,
        /// Degraded mode the campaign ran under, if any.
        degraded: Option<DegradeMode>,
        /// Replica count actually generated (≤ requested under
        /// [`DegradeMode::ReducedReplicas`]).
        replicas: u32,
        /// Whether it finished by its deadline (goodput) or late.
        in_deadline: bool,
    },
    /// Ran and terminated with a non-zero exit code.
    Failed {
        /// Finish time.
        finish: SimTime,
    },
    /// Refused at admission.
    Rejected(RejectReason),
    /// Admitted, then dropped by the load shedder.
    Shed(ShedReason),
}

/// A request paired with its terminal disposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestOutcome {
    /// The original request.
    pub request: CampaignRequest,
    /// How it ended.
    pub disposition: Disposition,
}

/// Shape of the synthetic multi-tenant workload. Everything downstream
/// is a pure function of these fields plus the seed.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// RNG seed for arrivals, class mix, failures and store corruption.
    pub seed: u64,
    /// Total campaign requests across all tenants.
    pub campaigns: u32,
    /// Number of distinct scenario classes (shared-artifact groups).
    pub classes: u32,
    /// Offered load as a multiple of service capacity: `2.0` submits
    /// twice as fast as `max_concurrent` slots can drain.
    pub overload_x: f64,
    /// Per-mille of campaigns that fail in execution (exercises the
    /// breakers).
    pub fail_permille: u32,
    /// Per-mille of artifact-store inserts that are silently corrupted
    /// (the PR-5 fault class; exercises verify-on-read).
    pub corrupt_permille: u32,
    /// Replicas requested per campaign.
    pub replicas: u32,
    /// Deadline slack: deadline = submit + slack × full work.
    pub deadline_slack: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            campaigns: 120,
            classes: 4,
            overload_x: 2.0,
            fail_permille: 0,
            corrupt_permille: 0,
            replicas: 8,
            deadline_slack: 4.0,
        }
    }
}

/// Per-replica waveform-synthesis seconds in the service's cost model.
pub const REPLICA_COST_S: u64 = 20;

/// Artifact costs (seconds to compute when the store misses) for one
/// scenario class: `(distance matrix, GF library, covariance factor)`.
/// Monotone in class so bigger meshes cost more, mirroring the O(n²)
/// distance / O(n³) factor scaling of the real pipeline.
pub fn artifact_costs_s(class: u32) -> (u64, u64, u64) {
    let c = class as u64;
    (30 + 10 * c, 60 + 20 * c, 45 + 15 * c)
}

/// Full (undegraded) work of a request in seconds: all three artifacts
/// plus the replica fan-out.
pub fn full_work_s(class: u32, replicas: u32) -> u64 {
    let (d, g, f) = artifact_costs_s(class);
    d + g + f + replicas as u64 * REPLICA_COST_S
}

/// Generate the deterministic request stream: Poisson-ish arrivals at
/// `overload_x` times the capacity of `max_concurrent` slots, tenants
/// drawn uniformly, classes drawn uniformly. Returned sorted by
/// `(submit, id)` with ids dense from 0.
pub fn request_stream(
    wl: &WorkloadConfig,
    tenants: u32,
    max_concurrent: u32,
) -> Vec<CampaignRequest> {
    let mut rng = StdRng::seed_from_u64(wl.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5e47);
    let tenants = tenants.max(1);
    let classes = wl.classes.max(1);
    // Mean service time over the class mix sets the drain rate.
    let mean_work: f64 = (0..classes)
        .map(|c| full_work_s(c, wl.replicas) as f64)
        .sum::<f64>()
        / classes as f64;
    let drain_per_s = max_concurrent.max(1) as f64 / mean_work;
    let mean_interarrival = 1.0 / (drain_per_s * wl.overload_x.max(0.01));
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(wl.campaigns as usize);
    for id in 0..wl.campaigns as u64 {
        // Exponential interarrival via inverse CDF.
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        t += -mean_interarrival * u.ln();
        let tenant = rng.gen_range(0..tenants);
        let class = rng.gen_range(0..classes);
        let fails = rng.gen_range(0..1000u32) < wl.fail_permille;
        let submit = SimTime(t as u64);
        let work = full_work_s(class, wl.replicas);
        let deadline = submit + (wl.deadline_slack.max(1.0) * work as f64) as u64;
        out.push(CampaignRequest {
            id,
            tenant,
            class,
            submit,
            deadline,
            replicas: wl.replicas.max(1),
            fails,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_dense() {
        let wl = WorkloadConfig::default();
        let a = request_stream(&wl, 4, 8);
        let b = request_stream(&wl, 4, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 120);
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!(r.tenant < 4);
            assert!(r.class < wl.classes);
            assert!(r.deadline > r.submit);
        }
        // Sorted by submit time (ids assigned in arrival order).
        assert!(a.windows(2).all(|w| w[0].submit <= w[1].submit));
    }

    #[test]
    fn overload_compresses_interarrivals() {
        let lo = request_stream(
            &WorkloadConfig {
                overload_x: 1.0,
                ..Default::default()
            },
            4,
            8,
        );
        let hi = request_stream(
            &WorkloadConfig {
                overload_x: 4.0,
                ..Default::default()
            },
            4,
            8,
        );
        let span = |s: &[CampaignRequest]| s.last().expect("nonempty").submit.as_secs();
        assert!(
            span(&hi) * 2 < span(&lo),
            "4x overload must compress the stream: {} vs {}",
            span(&hi),
            span(&lo)
        );
    }

    #[test]
    fn work_model_is_monotone_in_class() {
        for c in 0..5 {
            assert!(full_work_s(c + 1, 8) > full_work_s(c, 8));
            let (d, g, f) = artifact_costs_s(c);
            assert!(d > 0 && g > 0 && f > 0);
        }
        assert_eq!(full_work_s(0, 0), 30 + 60 + 45);
    }

    #[test]
    fn fail_permille_marks_campaigns() {
        let wl = WorkloadConfig {
            fail_permille: 500,
            campaigns: 400,
            ..Default::default()
        };
        let s = request_stream(&wl, 4, 8);
        let fails = s.iter().filter(|r| r.fails).count();
        assert!(
            (100..300).contains(&fails),
            "~50% of 400 should fail, got {fails}"
        );
    }
}
