//! The content-addressed shared artifact store.
//!
//! FDW's single-campaign trick is recycling: distance matrices,
//! Green's-function libraries and covariance factors are computed once
//! and reused across a campaign's jobs. This store generalises that
//! fleet-wide: artifacts are keyed by a digest of their *content
//! inputs* (scenario class, artifact kind, factorisation mode), so two
//! tenants requesting the same scenario class share one computation.
//!
//! Robustness properties mirror the `FactorCache` satellite work:
//!
//! * **verify-on-read** — each entry carries a checksum; a mismatch
//!   (the PR-5 silent-corruption fault class, injected deterministically
//!   at insert time) quarantines the entry and forces a recompute
//!   instead of serving poison;
//! * **bounded memory** — least-recently-used artifacts are evicted
//!   once the summed footprint exceeds the byte budget;
//! * **determinism** — all state lives in `BTreeMap`s and every
//!   decision is a pure function of the call sequence, so the store is
//!   safe inside a DES lane.

use std::collections::BTreeMap;

use htcsim::des::{digest_fold, DIGEST_INIT};
use htcsim::service::ArtifactKind;

/// Content digest of an artifact: a pure function of what the artifact
/// *is* (class, kind, degraded factorisation or not) — never of who
/// computed it or when.
pub fn content_digest(kind: ArtifactKind, class: u32, truncated_kl: bool) -> u64 {
    let mut h = DIGEST_INIT;
    h = digest_fold(h, kind as u64 + 1);
    h = digest_fold(h, class as u64 + 1);
    h = digest_fold(h, truncated_kl as u64 + 1);
    h
}

/// Simulated byte footprint of an artifact (drives LRU eviction):
/// distance matrices scale O(n²), GF libraries dominate, factors sit
/// between — the same ordering as the real `.npy`/`.mseed` files.
pub fn artifact_bytes(kind: ArtifactKind, class: u32) -> u64 {
    let n = 8 + 2 * class as u64;
    match kind {
        ArtifactKind::DistanceMatrix => n * n * 8,
        ArtifactKind::GfLibrary => n * n * 64,
        ArtifactKind::Factor => n * n * 16,
    }
}

/// Outcome of one store lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Served intact from the store; zero recompute cost.
    Hit {
        /// Whether the entry was inserted by a *different* tenant —
        /// the cross-tenant dedupe the service exists for.
        cross_tenant: bool,
    },
    /// Present but failed verify-on-read; quarantined, caller must
    /// recompute (and reinsert).
    Quarantined,
    /// Absent (never computed, or evicted); caller must compute.
    Miss,
    /// Present and corrupt, but verification is off: served anyway.
    /// The caller's campaign is now poisoned.
    ServedCorrupt,
}

/// Counters of a store's lifetime, all mode-invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Lookups served intact from the store.
    pub hits: u64,
    /// Hits whose entry another tenant inserted.
    pub cross_tenant_hits: u64,
    /// Lookups that found nothing and computed.
    pub misses: u64,
    /// Entries quarantined by verify-on-read.
    pub quarantines: u64,
    /// Corrupt entries served because verification was off.
    pub served_corrupt: u64,
    /// Entries dropped by LRU eviction.
    pub evictions: u64,
    /// Current entry count.
    pub entries: usize,
    /// Current summed byte footprint.
    pub bytes: u64,
}

#[derive(Debug)]
struct Entry {
    inserter: u32,
    bytes: u64,
    corrupt: bool,
    last_used: u64,
}

/// The store itself. `verify` gates the checksum-on-read path;
/// `byte_budget` of zero means unbounded.
#[derive(Debug)]
pub struct ArtifactStore {
    map: BTreeMap<u64, Entry>,
    verify: bool,
    byte_budget: u64,
    corrupt_permille: u32,
    corrupt_seed: u64,
    bytes: u64,
    tick: u64,
    inserts: u64,
    stats: StoreStats,
}

impl ArtifactStore {
    /// An empty store. `budget_mb` of zero means unbounded;
    /// `corrupt_permille` inserts are silently corrupted, keyed off
    /// `corrupt_seed` and the insert counter (deterministic).
    pub fn new(budget_mb: u32, verify: bool, corrupt_permille: u32, corrupt_seed: u64) -> Self {
        Self {
            map: BTreeMap::new(),
            verify,
            byte_budget: budget_mb as u64 * 1024 * 1024,
            corrupt_permille,
            corrupt_seed,
            bytes: 0,
            tick: 0,
            inserts: 0,
            stats: StoreStats::default(),
        }
    }

    /// Look up an artifact by content digest on behalf of `tenant`.
    /// Quarantined entries are removed before returning, so the caller's
    /// recompute-and-[`insert`](Self::insert) lands in a clean slot.
    pub fn lookup(&mut self, digest: u64, tenant: u32) -> Lookup {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(&digest) {
            None => {
                self.stats.misses += 1;
                Lookup::Miss
            }
            Some(e) if e.corrupt && self.verify => {
                let bytes = e.bytes;
                self.map.remove(&digest);
                self.bytes -= bytes;
                self.stats.quarantines += 1;
                Lookup::Quarantined
            }
            Some(e) => {
                e.last_used = tick;
                if e.corrupt {
                    self.stats.served_corrupt += 1;
                    Lookup::ServedCorrupt
                } else {
                    let cross = e.inserter != tenant;
                    self.stats.hits += 1;
                    if cross {
                        self.stats.cross_tenant_hits += 1;
                    }
                    Lookup::Hit {
                        cross_tenant: cross,
                    }
                }
            }
        }
    }

    /// Insert a freshly computed artifact. The deterministic corruption
    /// draw happens here — recomputed inserts roll again, so a
    /// quarantine-and-recompute cycle converges to a clean entry with
    /// probability 1.
    pub fn insert(&mut self, digest: u64, bytes: u64, tenant: u32) {
        self.tick += 1;
        self.inserts += 1;
        let corrupt = self.corrupt_permille > 0 && {
            let mut h = digest_fold(self.corrupt_seed ^ DIGEST_INIT, digest);
            h = digest_fold(h, self.inserts);
            h % 1000 < self.corrupt_permille as u64
        };
        if let Some(old) = self.map.insert(
            digest,
            Entry {
                inserter: tenant,
                bytes,
                corrupt,
                last_used: self.tick,
            },
        ) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        self.evict_to_budget(digest);
    }

    /// Evict LRU entries (never the just-touched `keep` key) until the
    /// byte budget is met.
    fn evict_to_budget(&mut self, keep: u64) {
        if self.byte_budget == 0 {
            return;
        }
        while self.bytes > self.byte_budget && self.map.len() > 1 {
            let victim = self
                .map
                .iter()
                .filter(|(k, _)| **k != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(v) => {
                    if let Some(e) = self.map.remove(&v) {
                        self.bytes -= e.bytes;
                        self.stats.evictions += 1;
                    }
                }
                None => break,
            }
        }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            entries: self.map.len(),
            bytes: self.bytes,
            ..self.stats
        }
    }

    /// Order-sensitive digest of the store's current content (keys,
    /// inserters, corruption flags) — folded into the service decision
    /// digest so store divergence across run modes is detectable.
    pub fn content_fingerprint(&self) -> u64 {
        let mut h = DIGEST_INIT;
        for (k, e) in &self.map {
            h = digest_fold(h, *k);
            h = digest_fold(h, e.inserter as u64 + 1);
            h = digest_fold(h, e.corrupt as u64 + 1);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds() -> [ArtifactKind; 3] {
        ArtifactKind::ALL
    }

    #[test]
    fn digests_separate_kinds_classes_and_modes() {
        let mut seen = std::collections::BTreeSet::new();
        for kind in kinds() {
            for class in 0..4 {
                for kl in [false, true] {
                    assert!(seen.insert(content_digest(kind, class, kl)));
                }
            }
        }
    }

    #[test]
    fn miss_insert_hit_cycle_with_cross_tenant() {
        let mut s = ArtifactStore::new(0, true, 0, 1);
        let d = content_digest(ArtifactKind::GfLibrary, 2, false);
        assert_eq!(s.lookup(d, 0), Lookup::Miss);
        s.insert(d, 1000, 0);
        assert_eq!(
            s.lookup(d, 0),
            Lookup::Hit {
                cross_tenant: false
            }
        );
        assert_eq!(s.lookup(d, 3), Lookup::Hit { cross_tenant: true });
        let st = s.stats();
        assert_eq!((st.hits, st.cross_tenant_hits, st.misses), (2, 1, 1));
        assert_eq!((st.entries, st.bytes), (1, 1000));
    }

    #[test]
    fn verify_on_read_quarantines_and_recompute_clears() {
        // corrupt_permille = 1000: every insert is corrupt.
        let mut s = ArtifactStore::new(0, true, 1000, 7);
        let d = content_digest(ArtifactKind::Factor, 1, false);
        s.insert(d, 10, 0);
        assert_eq!(s.lookup(d, 0), Lookup::Quarantined);
        assert_eq!(s.stats().quarantines, 1);
        assert_eq!(s.stats().entries, 0, "quarantine removes the entry");
        // With verification off the same corruption is served silently.
        let mut s = ArtifactStore::new(0, false, 1000, 7);
        s.insert(d, 10, 0);
        assert_eq!(s.lookup(d, 0), Lookup::ServedCorrupt);
        assert_eq!(s.stats().served_corrupt, 1);
    }

    #[test]
    fn recompute_cycle_converges_to_clean_entry() {
        // At 500 permille, repeated quarantine→recompute must terminate
        // with a clean entry (different insert counter → new draw).
        let mut s = ArtifactStore::new(0, true, 500, 3);
        let d = content_digest(ArtifactKind::DistanceMatrix, 0, false);
        let mut rounds = 0;
        loop {
            match s.lookup(d, 0) {
                Lookup::Hit { .. } => break,
                Lookup::Miss | Lookup::Quarantined => {
                    s.insert(d, 10, 0);
                    rounds += 1;
                    assert!(rounds < 64, "corruption draw never cleared");
                }
                Lookup::ServedCorrupt => unreachable!("verify is on"),
            }
        }
    }

    #[test]
    fn lru_eviction_respects_byte_budget() {
        // Budget of 1 MB; entries of 600 KB — the second insert evicts
        // the first, a third evicts the second.
        let mut s = ArtifactStore::new(1, true, 0, 1);
        let d = |c| content_digest(ArtifactKind::GfLibrary, c, false);
        s.insert(d(0), 600 * 1024, 0);
        s.insert(d(1), 600 * 1024, 1);
        assert_eq!(s.stats().evictions, 1);
        assert_eq!(s.lookup(d(0), 0), Lookup::Miss, "evicted");
        assert_eq!(s.lookup(d(1), 0), Lookup::Hit { cross_tenant: true });
        // Oversized single entry still caches (budget best-effort).
        let mut s = ArtifactStore::new(1, true, 0, 1);
        s.insert(d(9), 5 * 1024 * 1024, 0);
        assert_eq!(s.stats().entries, 1);
    }

    #[test]
    fn fingerprint_tracks_content() {
        let mut a = ArtifactStore::new(0, true, 0, 1);
        let mut b = ArtifactStore::new(0, true, 0, 1);
        assert_eq!(a.content_fingerprint(), b.content_fingerprint());
        a.insert(content_digest(ArtifactKind::Factor, 0, false), 10, 0);
        assert_ne!(a.content_fingerprint(), b.content_fingerprint());
        b.insert(content_digest(ArtifactKind::Factor, 0, false), 10, 0);
        assert_eq!(a.content_fingerprint(), b.content_fingerprint());
    }
}
