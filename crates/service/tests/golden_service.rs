//! Golden-file test of the service-layer ULOG dialect (codes 033–038).
//!
//! The front-end's user log is the operator's audit trail of every
//! admission, rejection, shed, degradation and store decision; its exact
//! bytes are a contract the same way the cluster's 000/001/005 lines
//! are. This pins a defended overload run's full log against
//! `tests/fixtures/service_run.log`, proves byte-determinism across
//! repeat runs and thread counts, and round-trips the text through the
//! ULOG parser losslessly.
//!
//! To regenerate after an intentional format change:
//! `GOLDEN_REGEN=1 cargo test -p fdw-service --test golden_service`
//! (then review the fixture diff like any other code change).

use fdw_service::prelude::*;
use htcsim::condor_log::{parse_condor_log, to_condor_log};
use htcsim::job::JobEventKind;

fn fixture_path(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Compare rendered text against a fixture byte-for-byte, regenerating
/// the fixture instead when `GOLDEN_REGEN` is set.
fn assert_golden(got: &str, name: &str) {
    let path = fixture_path(name);
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {path}: {e} (run with GOLDEN_REGEN=1)"));
    assert_eq!(
        got, want,
        "rendered service ULOG deviates from {name}; if intentional, regenerate with GOLDEN_REGEN=1"
    );
}

/// The fixture scenario: a small, heavily defended front-end under 8x
/// overload with execution failures and store corruption — chosen so
/// every service code (033–038) appears in the log.
fn fixture_run(threads: usize) -> ServiceReport {
    let cfg = ServiceConfig {
        enabled: true,
        max_concurrent: 4,
        fair_share: 300,
        degrade_depth: 4,
        shed_backlog: 12,
        breaker_threshold: 2,
        breaker_probe_s: 2_000,
        store_enabled: true,
        store_budget_mb: 1,
        store_verify: true,
        tenants: 3,
        tenant_quota: 8,
        tenant_queue_depth: 5,
        tenant_deadline_shed: true,
    };
    let wl = WorkloadConfig {
        seed: 9,
        campaigns: 60,
        classes: 3,
        overload_x: 8.0,
        fail_permille: 250,
        corrupt_permille: 400,
        replicas: 6,
        deadline_slack: 3.0,
    };
    run_service(&cfg, &wl, 2, 60, threads)
}

#[test]
fn service_run_matches_golden_fixture() {
    let a = fixture_run(1);
    let text = to_condor_log(&a.log);
    // Byte-determinism first: repeat run and a multi-threaded run must
    // render the identical bytes before the fixture comparison means
    // anything.
    assert_eq!(
        text,
        to_condor_log(&fixture_run(1).log),
        "service run is not byte-deterministic"
    );
    assert_eq!(
        text,
        to_condor_log(&fixture_run(4).log),
        "thread count changed the service ULOG bytes"
    );
    assert_golden(&text, "service_run.log");
    // The scenario must actually exercise every new code, or the fixture
    // pins nothing.
    let count =
        |kind: JobEventKind| a.log.events().iter().filter(|e| e.kind == kind).count() as u64;
    assert_eq!(count(JobEventKind::ServiceAdmitted), a.stats.admitted);
    assert!(a.stats.admitted > 0, "033 never emitted; fixture is weak");
    assert!(text.contains("033 "), "admission lines missing");
    let rejected = a.stats.rejected_quota + a.stats.rejected_queue + a.stats.rejected_breaker;
    assert_eq!(count(JobEventKind::ServiceRejected), rejected);
    assert!(rejected > 0, "034 never emitted; fixture is weak");
    assert!(
        text.contains("Campaign rejected by admission control."),
        "rejection lines missing"
    );
    let shed = a.stats.shed_backlog + a.stats.shed_deadline;
    assert_eq!(count(JobEventKind::ServiceShed), shed);
    assert!(shed > 0, "035 never emitted; fixture is weak");
    assert!(
        text.contains("Campaign shed under load."),
        "shed lines missing"
    );
    let degraded = a.stats.degraded_kl + a.stats.degraded_replicas;
    assert_eq!(count(JobEventKind::ServiceDegraded), degraded);
    assert!(degraded > 0, "036 never emitted; fixture is weak");
    assert!(
        text.contains("Campaign degraded. Mode: "),
        "degrade lines missing"
    );
    assert!(
        count(JobEventKind::ArtifactHit) > 0,
        "037 never emitted; fixture is weak"
    );
    assert!(
        text.contains("Artifact served from shared store: "),
        "store-hit lines missing"
    );
    assert_eq!(
        count(JobEventKind::ArtifactQuarantined),
        a.store.quarantines
    );
    assert!(
        a.store.quarantines > 0,
        "038 never emitted; fixture is weak"
    );
    assert!(
        text.contains("Artifact quarantined (checksum mismatch): "),
        "quarantine lines missing"
    );
    // Every request terminates; the log's completions match the stats.
    assert_eq!(a.unaccounted, 0);
    assert_eq!(a.log.completed_count() as u64, a.stats.completed);
}

#[test]
fn service_fixture_parses_back_losslessly() {
    let a = fixture_run(1);
    let text = to_condor_log(&a.log);
    let parsed = parse_condor_log(&text).unwrap();
    // The ULOG dialect has no representation for Matched-class internal
    // events; the service log contains only loggable kinds, so the round
    // trip must be exact, event for event.
    let loggable: Vec<_> = a
        .log
        .events()
        .iter()
        .filter(|e| e.kind != JobEventKind::Matched)
        .collect();
    assert_eq!(parsed.len(), loggable.len());
    for (p, o) in parsed.events().iter().zip(loggable) {
        assert_eq!(p, o);
    }
    assert_eq!(parsed.completed_count(), a.log.completed_count());
    assert_eq!(parsed.goodput_badput(), a.log.goodput_badput());
}
