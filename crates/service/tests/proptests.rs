//! Property tests of the service layer's determinism contract.
//!
//! 1. **Decisions are a pure function of `(seed, stream)`**: for any
//!    workload and policy the front-end's decision digest, outcome set,
//!    stats, per-tenant rollups and rendered ULOG bytes are identical
//!    across executor-shard counts and DES thread counts — and no
//!    request is ever dropped without a terminal disposition.
//! 2. **`FDW_THREADS` invariance** (subprocess): the suite-wide thread
//!    knob is read once per process, so the thread axis is driven by
//!    re-executing this test binary with `FDW_THREADS` ∈ {1, 2, 8} and
//!    comparing the digest lines the children print — the same pattern
//!    as `fakequakes/tests/simd_lanes.rs` and the DES differential
//!    harness.

use std::process::Command;

use fdw_service::prelude::*;
use htcsim::condor_log::to_condor_log;
use proptest::prelude::*;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn decisions_are_a_pure_function_of_seed_and_stream(
        seed in 0u64..1_000,
        campaigns in 20u32..80,
        overload_permille in 1_000u64..8_000,
        fail_permille in 0u32..300,
        corrupt_permille in 0u32..500,
        defended in any::<bool>(),
        exec_a in 1u32..5,
        exec_b in 1u32..5,
    ) {
        let cfg = if defended {
            ServiceConfig::defended(3)
        } else {
            ServiceConfig::undefended(3)
        };
        let wl = WorkloadConfig {
            seed,
            campaigns,
            classes: 3,
            overload_x: overload_permille as f64 / 1_000.0,
            fail_permille,
            corrupt_permille,
            replicas: 4,
            deadline_slack: 3.0,
        };
        let a = run_service(&cfg, &wl, exec_a, 60, 1);
        let b = run_service(&cfg, &wl, exec_b, 60, 2);
        prop_assert_eq!(a.decision_digest, b.decision_digest,
            "decision digest varies with (exec_shards, threads)");
        prop_assert_eq!(&a.outcomes, &b.outcomes);
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(&a.per_tenant, &b.per_tenant);
        prop_assert_eq!(to_condor_log(&a.log), to_condor_log(&b.log));
        // Zero dropped-then-forgotten requests, in every arm.
        prop_assert_eq!(a.unaccounted, 0);
        prop_assert_eq!(a.outcomes.len() as u32, campaigns);
    }

    #[test]
    fn rerun_reproduces_every_observable(
        seed in 0u64..500,
        overload_permille in 1_000u64..10_000,
    ) {
        let cfg = ServiceConfig::defended(4);
        let wl = WorkloadConfig {
            seed,
            campaigns: 50,
            classes: 4,
            overload_x: overload_permille as f64 / 1_000.0,
            fail_permille: 150,
            corrupt_permille: 300,
            replicas: 4,
            deadline_slack: 3.0,
        };
        let a = run_service(&cfg, &wl, 2, 60, 2);
        let b = run_service(&cfg, &wl, 2, 60, 2);
        prop_assert_eq!(a.decision_digest, b.decision_digest);
        prop_assert_eq!(a.engine_digest, b.engine_digest);
        prop_assert_eq!(a.store, b.store);
        prop_assert_eq!(a.makespan, b.makespan);
    }
}

/// Child half: run the fixture workload with the thread count the
/// `FDW_THREADS` env var dictates and print the digests. Parent half:
/// spawn the child at 1, 2 and 8 threads and require identical lines.
#[test]
fn decision_digest_invariant_under_fdw_threads() {
    let scenario = || {
        let cfg = ServiceConfig::defended(4);
        let wl = WorkloadConfig {
            seed: 21,
            campaigns: 90,
            classes: 3,
            overload_x: 5.0,
            fail_permille: 200,
            corrupt_permille: 300,
            replicas: 4,
            deadline_slack: 3.0,
        };
        (cfg, wl)
    };
    if std::env::var("SERVICE_THREADS_CHILD").is_ok() {
        let threads: usize = std::env::var("FDW_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        let (cfg, wl) = scenario();
        let r = run_service(&cfg, &wl, 3, 60, threads);
        println!(
            "digest={:016x} ulog={:016x} unaccounted={}",
            r.decision_digest,
            fnv64(to_condor_log(&r.log).as_bytes()),
            r.unaccounted
        );
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let mut lines = Vec::new();
    for threads in [1u32, 2, 8] {
        let out = Command::new(&exe)
            .args([
                "--exact",
                "decision_digest_invariant_under_fdw_threads",
                "--nocapture",
            ])
            .env("SERVICE_THREADS_CHILD", "1")
            .env("FDW_THREADS", threads.to_string())
            .output()
            .expect("spawn child");
        assert!(
            out.status.success(),
            "child (FDW_THREADS={threads}) failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        // libtest may glue the child's println onto its own "test ..."
        // status line, so locate the digest by substring, not by prefix.
        let line = stdout
            .lines()
            .find_map(|l| l.find("digest=").map(|i| l[i..].to_string()))
            .unwrap_or_else(|| panic!("no digest line from child {threads}: {stdout}"));
        lines.push((threads, line));
    }
    assert!(
        lines.windows(2).all(|w| w[0].1 == w[1].1),
        "digests differ across FDW_THREADS: {lines:?}"
    );
    assert!(lines[0].1.ends_with("unaccounted=0"));
}
