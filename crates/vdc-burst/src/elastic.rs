//! Elastic bursting — the controller the paper's §6 names as the next
//! step: "creating a comprehensive, elastic algorithm for bursting OSG
//! jobs to VDC resources … scaling utilized VDC resources based on OSG's
//! common resources", aiming for *consistent* throughput (the paper notes
//! its static policies made throughput SDs worse).
//!
//! The controller holds a pool of simulated VDC slots whose size is
//! adjusted every control period by proportional feedback on the recent
//! (windowed) completion throughput: below-target throughput grows the
//! pool, above-target shrinks it (slots drain as their jobs finish). Free
//! slots pull the longest-queued OSG job, or the last unsubmitted one.

use std::collections::VecDeque;

use crate::records::BatchInput;
use crate::simulator::{vdc_duration_secs, BurstOutcome, CLOUD_COST_PER_MIN};

/// Parameters of the elastic bursting controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElasticPolicy {
    /// Throughput the controller tries to hold, jobs/minute.
    pub target_jpm: f64,
    /// Control period, seconds.
    pub control_period_s: u64,
    /// Proportional gain: slots added per JPM of throughput deficit.
    pub gain: f64,
    /// Hard cap on simulated VDC slots.
    pub max_vdc_slots: usize,
    /// Sliding window for the throughput measurement, seconds.
    pub window_s: u64,
}

impl Default for ElasticPolicy {
    fn default() -> Self {
        Self {
            target_jpm: 20.0,
            control_period_s: 30,
            gain: 1.0,
            max_vdc_slots: 200,
            window_s: 300,
        }
    }
}

/// Outcome of an elastic bursting run: the standard metrics plus
/// controller telemetry.
#[derive(Debug, Clone)]
pub struct ElasticOutcome {
    /// Standard bursting metrics (series, AIT, runtime, cost, …).
    pub base: BurstOutcome,
    /// Largest VDC pool size the controller reached.
    pub peak_vdc_slots: usize,
    /// Time-averaged VDC pool size.
    pub mean_vdc_slots: f64,
    /// Standard deviation of the windowed throughput after the first
    /// window — the "consistency" the paper wants improved.
    pub windowed_throughput_sd: f64,
    /// Per-second VDC pool size series.
    pub slots_series: Vec<u32>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Osg,
    Bursted(u64), // completion time
    Done,
}

/// Run the elastic controller over a recorded batch.
pub fn simulate_elastic(
    input: &BatchInput,
    policy: &ElasticPolicy,
) -> Result<ElasticOutcome, String> {
    input.validate()?;
    if policy.control_period_s == 0 || policy.window_s == 0 {
        return Err("control period and window must be positive".into());
    }
    let t0 = input.batch.submit_s;
    let n = input.jobs.len();
    let mut state = vec![State::Osg; n];
    let mut completed = 0usize;
    let mut bursted = 0usize;
    let mut vdc_seconds = 0u64;
    let mut active_vdc = 0usize;
    let mut slots_target = 0usize;
    let mut last_completion = t0;

    let mut instant_series = Vec::new();
    let mut slots_series = Vec::new();
    // Completions per second within the sliding window.
    let mut window: VecDeque<u32> = VecDeque::with_capacity(policy.window_s as usize);
    let mut window_sum: u64 = 0;
    let mut windowed_samples: Vec<f64> = Vec::new();

    let t_end_cap = input.batch.terminate_s + 86_400;
    let mut t = t0;
    while completed < n && t <= t_end_cap {
        let mut completions_now = 0u32;

        // OSG completions from the record.
        for (i, job) in input.jobs.iter().enumerate() {
            if state[i] == State::Osg && job.terminate_s == Some(t) {
                state[i] = State::Done;
                completed += 1;
                completions_now += 1;
                last_completion = t;
            }
        }
        // VDC completions.
        for s in state.iter_mut() {
            if let State::Bursted(finish) = *s {
                if finish == t {
                    *s = State::Done;
                    completed += 1;
                    completions_now += 1;
                    active_vdc -= 1;
                    last_completion = t;
                }
            }
        }

        // Windowed throughput bookkeeping.
        window.push_back(completions_now);
        window_sum += completions_now as u64;
        if window.len() as u64 > policy.window_s {
            window_sum -= window.pop_front().map_or(0, u64::from);
        }
        let window_mins = window.len() as f64 / 60.0;
        let recent_jpm = if window_mins > 0.0 {
            window_sum as f64 / window_mins
        } else {
            0.0
        };
        if window.len() as u64 == policy.window_s {
            windowed_samples.push(recent_jpm);
        }

        // Controller: adjust the slot target every control period, but
        // only once the measurement window has filled — acting on an
        // empty window would burst before OSG has shown what it can do
        // (the elastic analogue of Policy 1's arming rule).
        if window.len() as u64 >= policy.window_s
            && (t - t0).is_multiple_of(policy.control_period_s)
        {
            let error = policy.target_jpm - recent_jpm;
            let delta = (policy.gain * error).round() as i64;
            slots_target =
                (slots_target as i64 + delta).clamp(0, policy.max_vdc_slots as i64) as usize;
        }

        // Fill free VDC slots: longest-queued job first, then the last
        // unsubmitted one.
        while active_vdc < slots_target && completed + active_vdc_count(&state) < n {
            let candidate = pick_candidate(input, &state, t);
            let Some(i) = candidate else { break };
            let dur = vdc_duration_secs(input.jobs[i].phase);
            state[i] = State::Bursted(t + dur);
            active_vdc += 1;
            bursted += 1;
            vdc_seconds += dur;
        }

        // Eq. (5) instant throughput.
        let mins = ((t - t0).max(1)) as f64 / 60.0;
        instant_series.push(completed as f64 / mins);
        slots_series.push(active_vdc as u32);
        t += 1;
    }

    let unfinished = state.iter().filter(|s| !matches!(s, State::Done)).count();
    let vdc_minutes = vdc_seconds as f64 / 60.0;
    let ait = if instant_series.is_empty() {
        0.0
    } else {
        instant_series.iter().sum::<f64>() / instant_series.len() as f64
    };
    let mean_slots = if slots_series.is_empty() {
        0.0
    } else {
        slots_series.iter().map(|v| *v as f64).sum::<f64>() / slots_series.len() as f64
    };
    let sd = if windowed_samples.is_empty() {
        0.0
    } else {
        let m = windowed_samples.iter().sum::<f64>() / windowed_samples.len() as f64;
        (windowed_samples
            .iter()
            .map(|x| (x - m).powi(2))
            .sum::<f64>()
            / windowed_samples.len() as f64)
            .sqrt()
    };
    Ok(ElasticOutcome {
        peak_vdc_slots: slots_series.iter().copied().max().unwrap_or(0) as usize,
        mean_vdc_slots: mean_slots,
        windowed_throughput_sd: sd,
        slots_series,
        base: BurstOutcome {
            instant_series,
            ait_jpm: ait,
            runtime_secs: last_completion - t0,
            total_jobs: n,
            bursted_jobs: bursted,
            unfinished_jobs: unfinished,
            vdc_minutes,
            cost_usd: vdc_minutes * CLOUD_COST_PER_MIN,
        },
    })
}

fn active_vdc_count(state: &[State]) -> usize {
    state
        .iter()
        .filter(|s| matches!(s, State::Bursted(_)))
        .count()
}

/// The next job to burst: the queued OSG job waiting longest, else the
/// unsubmitted job with the latest submit time.
fn pick_candidate(input: &BatchInput, state: &[State], t: u64) -> Option<usize> {
    let queued = input
        .jobs
        .iter()
        .enumerate()
        .filter(|(i, j)| {
            state[*i] == State::Osg && j.submit_s <= t && j.execute_s.map(|e| e > t).unwrap_or(true)
        })
        .min_by_key(|(_, j)| j.submit_s);
    if let Some((i, _)) = queued {
        return Some(i);
    }
    input
        .jobs
        .iter()
        .enumerate()
        .filter(|(i, j)| state[*i] == State::Osg && j.submit_s > t)
        .max_by_key(|(_, j)| j.submit_s)
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{BatchRecord, JobPhase, JobRecord};

    fn slow_batch(n: u64) -> BatchInput {
        let jobs: Vec<JobRecord> = (0..n)
            .map(|i| JobRecord {
                job: i,
                phase: JobPhase::Waveform,
                submit_s: i * 10,
                execute_s: Some(600 + i * 120),
                terminate_s: Some(1600 + i * 120),
            })
            .collect();
        let term = jobs.iter().filter_map(|j| j.terminate_s).max().unwrap();
        BatchInput {
            batch: BatchRecord {
                submit_s: 0,
                execute_s: 600,
                terminate_s: term,
            },
            jobs,
        }
    }

    #[test]
    fn zero_target_never_bursts() {
        let input = slow_batch(20);
        let out = simulate_elastic(
            &input,
            &ElasticPolicy {
                target_jpm: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.base.bursted_jobs, 0);
        assert_eq!(out.base.runtime_secs, input.batch.runtime_secs());
        assert_eq!(out.peak_vdc_slots, 0);
    }

    #[test]
    fn high_target_scales_up_and_finishes_early() {
        let input = slow_batch(40);
        let out = simulate_elastic(
            &input,
            &ElasticPolicy {
                target_jpm: 30.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.base.bursted_jobs > 0);
        assert!(out.peak_vdc_slots > 0);
        assert!(
            out.base.runtime_secs < input.batch.runtime_secs(),
            "elastic bursting must shorten this slow batch"
        );
        assert_eq!(out.base.unfinished_jobs, 0);
        assert!(out.base.cost_usd > 0.0);
    }

    #[test]
    fn slot_cap_respected() {
        let input = slow_batch(60);
        let out = simulate_elastic(
            &input,
            &ElasticPolicy {
                target_jpm: 1_000.0,
                max_vdc_slots: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.peak_vdc_slots <= 3, "peak {}", out.peak_vdc_slots);
        assert!(out.slots_series.iter().all(|s| *s <= 3));
    }

    #[test]
    fn controller_downscales_when_target_met() {
        // A batch that completes quickly on its own: after the initial
        // ramp the controller should retire slots (mean well below peak).
        let jobs: Vec<JobRecord> = (0..200)
            .map(|i| JobRecord {
                job: i,
                phase: JobPhase::Rupture,
                submit_s: 0,
                execute_s: Some(5),
                terminate_s: Some(10 + i / 2), // ~2 jobs per second early on
            })
            .collect();
        let input = BatchInput {
            batch: BatchRecord {
                submit_s: 0,
                execute_s: 5,
                terminate_s: 110,
            },
            jobs,
        };
        let out = simulate_elastic(
            &input,
            &ElasticPolicy {
                target_jpm: 30.0,
                window_s: 30,
                ..Default::default()
            },
        )
        .unwrap();
        // OSG alone delivers ~120 JPM, far above target: no slots needed.
        assert_eq!(out.base.bursted_jobs, 0, "controller must not burst");
    }

    #[test]
    fn invalid_policy_rejected() {
        let input = slow_batch(5);
        assert!(simulate_elastic(
            &input,
            &ElasticPolicy {
                control_period_s: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(simulate_elastic(
            &input,
            &ElasticPolicy {
                window_s: 0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn conservation_and_cost() {
        let input = slow_batch(30);
        let out = simulate_elastic(
            &input,
            &ElasticPolicy {
                target_jpm: 10.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.base.total_jobs, 30);
        assert_eq!(out.base.unfinished_jobs, 0);
        assert!((out.base.cost_usd - out.base.vdc_minutes * CLOUD_COST_PER_MIN).abs() < 1e-12);
        // Every bursted waveform job contributes exactly 144 s.
        assert!((out.base.vdc_minutes - out.base.bursted_jobs as f64 * 144.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic() {
        let input = slow_batch(25);
        let p = ElasticPolicy {
            target_jpm: 15.0,
            ..Default::default()
        };
        let a = simulate_elastic(&input, &p).unwrap();
        let b = simulate_elastic(&input, &p).unwrap();
        assert_eq!(a.base.instant_series, b.base.instant_series);
        assert_eq!(a.slots_series, b.slots_series);
    }
}
