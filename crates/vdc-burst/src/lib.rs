//! # vdc-burst — the VDC cloud-bursting simulator
//!
//! Reimplementation of the Python bursting simulator of Adair et al.,
//! SC-W 2023 §3.1: replay a recorded DAGMan batch second by second,
//! offload jobs to simulated Virtual Data Collaboratory (VDC) resources
//! according to three OSG-tailored policies, and report instant
//! throughput, runtime, VDC utilisation and cost.
//!
//! * [`records`] — the two-CSV input format (batch times + per-job times),
//!   parseable from `htcsim` run reports;
//! * [`policy`] — Policy 1 (low throughput), Policy 2 (congested queue),
//!   Policy 3 (submission gaps), plus the ≤30 % bursted-jobs cap;
//! * [`simulator`] — the per-second main loop with the paper's constant
//!   VDC job times (rupture 287 s, waveform 144 s);
//! * [`report`] — the per-second throughput CSV and Fig. 5/6 sweep tables.
//!
//! ```
//! use vdc_burst::prelude::*;
//!
//! let batch = "submit_s,execute_s,terminate_s\n0,60,600\n";
//! let jobs = "job,owner,phase,submit_s,execute_s,terminate_s\n\
//!             0,0,waveform,0,60,600\n";
//! let input = BatchInput::from_csv(batch, jobs).unwrap();
//! let control = simulate(&input, &BurstPolicies::control()).unwrap();
//! assert_eq!(control.bursted_jobs, 0);
//! assert_eq!(control.runtime_secs, 600);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod elastic;
pub mod policy;
pub mod records;
pub mod report;
pub mod simulator;

/// Glob import of the most-used types.
pub mod prelude {
    pub use crate::elastic::{simulate_elastic, ElasticOutcome, ElasticPolicy};
    pub use crate::policy::{
        BurstPolicies, QueueTimePolicy, SubmissionGapPolicy, ThroughputPolicy,
    };
    pub use crate::records::{BatchInput, BatchRecord, JobPhase, JobRecord, RecordError};
    pub use crate::report::{format_sweep_table, sweep_csv, throughput_csv, SweepRow};
    pub use crate::simulator::{simulate, vdc_duration_secs, BurstOutcome};
}
