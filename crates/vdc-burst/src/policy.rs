//! The three OSG-tailored bursting policies (§3.1.2).
//!
//! * **Policy 1** — low throughput: probe the batch's instant throughput
//!   every `probe_secs`; once it has been armed (reached the threshold at
//!   least once), burst the last unsubmitted job whenever it falls below
//!   the threshold.
//! * **Policy 2** — congested queue: jobs waiting in the queue longer than
//!   `max_queue_secs` are removed and bursted.
//! * **Policy 3** — submission gaps: if no job has entered the queue for
//!   `max_gap_secs`, periodically burst the last unsubmitted job.

/// Policy 1 parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputPolicy {
    /// Probe interval in seconds (the paper sweeps 1–120 s).
    pub probe_secs: u64,
    /// Instant-throughput threshold in jobs/minute (paper uses 34).
    pub threshold_jpm: f64,
}

impl Default for ThroughputPolicy {
    fn default() -> Self {
        Self {
            probe_secs: 10,
            threshold_jpm: 34.0,
        }
    }
}

/// Policy 2 parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueTimePolicy {
    /// Maximum tolerated queue wait in seconds (paper uses 90 and 120
    /// minutes).
    pub max_queue_secs: u64,
    /// How often the queue is scanned, seconds.
    pub check_secs: u64,
}

impl Default for QueueTimePolicy {
    fn default() -> Self {
        Self {
            max_queue_secs: 90 * 60,
            check_secs: 60,
        }
    }
}

/// Policy 3 parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubmissionGapPolicy {
    /// Maximum tolerated gap since the last submission, seconds.
    pub max_gap_secs: u64,
    /// How often the gap is checked (and one job bursted), seconds.
    pub check_secs: u64,
}

impl Default for SubmissionGapPolicy {
    fn default() -> Self {
        Self {
            max_gap_secs: 20 * 60,
            check_secs: 60,
        }
    }
}

/// The bursting configuration: any combination of the three policies plus
/// an optional cap on the fraction of jobs bursted (the paper's cost
/// experiment keeps it ≤ 30 %).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BurstPolicies {
    /// Policy 1 (low throughput), if enabled.
    pub throughput: Option<ThroughputPolicy>,
    /// Policy 2 (congested queue), if enabled.
    pub queue_time: Option<QueueTimePolicy>,
    /// Policy 3 (submission gaps), if enabled.
    pub submission_gap: Option<SubmissionGapPolicy>,
    /// Maximum fraction of total jobs that may be bursted (None =
    /// unlimited).
    pub max_burst_fraction: Option<f64>,
}

impl BurstPolicies {
    /// The configuration of the paper's Fig. 5 sweep: Policy 1 with the
    /// given probe time, Policy 2 with the given queue limit.
    pub fn paper_sweep(probe_secs: u64, max_queue_mins: u64) -> Self {
        Self {
            throughput: Some(ThroughputPolicy {
                probe_secs,
                threshold_jpm: 34.0,
            }),
            queue_time: Some(QueueTimePolicy {
                max_queue_secs: max_queue_mins * 60,
                check_secs: 60,
            }),
            submission_gap: None,
            max_burst_fraction: None,
        }
    }

    /// No bursting at all — the control replays the OSG record untouched.
    pub fn control() -> Self {
        Self::default()
    }

    /// True when no policy is enabled.
    pub fn is_control(&self) -> bool {
        self.throughput.is_none() && self.queue_time.is_none() && self.submission_gap.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        assert_eq!(ThroughputPolicy::default().threshold_jpm, 34.0);
        assert_eq!(QueueTimePolicy::default().max_queue_secs, 5400);
    }

    #[test]
    fn paper_sweep_config() {
        let p = BurstPolicies::paper_sweep(5, 120);
        assert_eq!(p.throughput.unwrap().probe_secs, 5);
        assert_eq!(p.queue_time.unwrap().max_queue_secs, 7200);
        assert!(p.submission_gap.is_none());
        assert!(!p.is_control());
    }

    #[test]
    fn control_is_empty() {
        assert!(BurstPolicies::control().is_control());
    }
}
