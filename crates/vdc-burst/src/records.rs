//! Input records of the bursting simulator: the two `.csv` files the paper
//! describes (§3.1) — one row of batch-level times and one row per job —
//! plus direct construction from an `htcsim` run report.
//!
//! Parsing is strict and errors are typed ([`RecordError`]): hand-edited
//! or truncated CSVs are rejected with the 1-based line number of the
//! offending row, and records whose timestamps run backwards (a negative
//! queue or execution duration) never reach the simulation loop.

use std::fmt;

use htcsim::cluster::RunReport;
use htcsim::csvlite;

/// Why a recorded batch could not be parsed or validated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The CSV text itself is malformed: bad quoting, ragged rows, or a
    /// missing required column.
    Malformed(String),
    /// A field failed to parse on the given 1-based CSV line.
    BadField {
        /// 1-based line number in the CSV text (line 1 is the header).
        line: usize,
        /// Column the bad value sat in.
        column: &'static str,
        /// The raw offending value.
        value: String,
    },
    /// Timestamps run backwards between consecutive rows on the given
    /// 1-based CSV line (job records are exported in submission order).
    NonMonotonic {
        /// 1-based line number of the out-of-order row.
        line: usize,
        /// The submit time that went backwards.
        submit_s: u64,
        /// The previous row's submit time it undercut.
        prev_s: u64,
    },
    /// A record describes a negative duration (execution before
    /// submission, or termination before execution).
    NegativeDuration {
        /// 1-based CSV line number, when the record came from a CSV
        /// (records built in memory report line 0).
        line: usize,
        /// What ran backwards.
        detail: String,
    },
    /// Cross-record consistency failure found at validate time.
    Inconsistent(String),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Malformed(d) => write!(f, "malformed CSV: {d}"),
            RecordError::BadField {
                line,
                column,
                value,
            } => write!(f, "line {line}: bad {column} value '{value}'"),
            RecordError::NonMonotonic {
                line,
                submit_s,
                prev_s,
            } => write!(
                f,
                "line {line}: non-monotonic submit time {submit_s} after {prev_s}"
            ),
            RecordError::NegativeDuration { line, detail } if *line == 0 => {
                write!(f, "negative duration: {detail}")
            }
            RecordError::NegativeDuration { line, detail } => {
                write!(f, "line {line}: negative duration: {detail}")
            }
            RecordError::Inconsistent(d) => write!(f, "inconsistent records: {d}"),
        }
    }
}

impl std::error::Error for RecordError {}

impl From<RecordError> for String {
    fn from(e: RecordError) -> Self {
        e.to_string()
    }
}

impl RecordError {
    fn malformed(detail: String) -> Self {
        RecordError::Malformed(detail)
    }
}

/// Parse one `u64` field, reporting the 1-based CSV line on failure.
fn field_u64(line: usize, column: &'static str, value: &str) -> Result<u64, RecordError> {
    value.parse().map_err(|_| RecordError::BadField {
        line,
        column,
        value: value.to_string(),
    })
}

/// Which FDW phase a job belongs to; bursted completion times differ per
/// phase (§3.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// A-phase rupture job (bursted completion 287 s).
    Rupture,
    /// C-phase waveform job (bursted completion 144 s).
    Waveform,
    /// Everything else (matrix/GF); treated like rupture jobs when
    /// bursted.
    Other,
}

impl JobPhase {
    /// Parse the phase label used in the jobs CSV.
    pub fn parse(s: &str) -> Self {
        match s {
            "rupture" => JobPhase::Rupture,
            "waveform" => JobPhase::Waveform,
            _ => JobPhase::Other,
        }
    }
}

/// Batch-level times of one recorded DAGMan run (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRecord {
    /// First submission.
    pub submit_s: u64,
    /// First execution start.
    pub execute_s: u64,
    /// Termination (last completion).
    pub terminate_s: u64,
}

impl BatchRecord {
    /// Parse the batch CSV (`submit_s,execute_s,terminate_s`, one row).
    pub fn parse_csv(text: &str) -> Result<Self, RecordError> {
        let (header, rows) = csvlite::parse(text).map_err(RecordError::malformed)?;
        let row = rows
            .first()
            .ok_or_else(|| RecordError::malformed("batch CSV has no data row".into()))?;
        let col = |name: &'static str| -> Result<u64, RecordError> {
            let idx = csvlite::column(&header, name).map_err(RecordError::malformed)?;
            field_u64(2, name, &row[idx])
        };
        let rec = Self {
            submit_s: col("submit_s")?,
            execute_s: col("execute_s")?,
            terminate_s: col("terminate_s")?,
        };
        if rec.execute_s < rec.submit_s {
            return Err(RecordError::NegativeDuration {
                line: 2,
                detail: format!(
                    "batch executes at {} before submitting at {}",
                    rec.execute_s, rec.submit_s
                ),
            });
        }
        if rec.terminate_s < rec.execute_s {
            return Err(RecordError::NegativeDuration {
                line: 2,
                detail: format!(
                    "batch terminates at {} before executing at {}",
                    rec.terminate_s, rec.execute_s
                ),
            });
        }
        Ok(rec)
    }

    /// Batch runtime in seconds.
    pub fn runtime_secs(&self) -> u64 {
        self.terminate_s - self.submit_s
    }
}

/// Per-job times of one recorded DAGMan run (seconds; times are absolute
/// in the same clock as the batch record).
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Job id from the log.
    pub job: u64,
    /// Phase of the FDW this job belongs to.
    pub phase: JobPhase,
    /// Submission time.
    pub submit_s: u64,
    /// Execution start (None if it never started).
    pub execute_s: Option<u64>,
    /// Completion time (None if it never completed).
    pub terminate_s: Option<u64>,
}

impl JobRecord {
    /// Check this record's internal timeline; `line` is the 1-based CSV
    /// line for error messages (0 for records built in memory).
    fn check_times(&self, line: usize) -> Result<(), RecordError> {
        if let Some(e) = self.execute_s {
            if e < self.submit_s {
                return Err(RecordError::NegativeDuration {
                    line,
                    detail: format!(
                        "job {} executes at {e} before its submission at {}",
                        self.job, self.submit_s
                    ),
                });
            }
            if let Some(t) = self.terminate_s {
                if t < e {
                    return Err(RecordError::NegativeDuration {
                        line,
                        detail: format!(
                            "job {} terminates at {t} before executing at {e}",
                            self.job
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Parse the jobs CSV exported by
    /// [`htcsim::userlog::UserLog::jobs_csv`]. Rows must be in
    /// submission order (the exporter's order); out-of-order or
    /// backwards-running timestamps are rejected with their line number.
    pub fn parse_csv(text: &str) -> Result<Vec<Self>, RecordError> {
        let (header, rows) = csvlite::parse(text).map_err(RecordError::malformed)?;
        let col = |name: &str| csvlite::column(&header, name).map_err(RecordError::malformed);
        let job_i = col("job")?;
        let phase_i = col("phase")?;
        let submit_i = col("submit_s")?;
        let exec_i = col("execute_s")?;
        let term_i = col("terminate_s")?;
        let mut out: Vec<Self> = Vec::with_capacity(rows.len());
        let mut prev_submit = 0u64;
        for (n, row) in rows.iter().enumerate() {
            let line = n + 2;
            let parse_opt = |column: &'static str, s: &str| -> Result<Option<u64>, RecordError> {
                if s.is_empty() {
                    Ok(None)
                } else {
                    field_u64(line, column, s).map(Some)
                }
            };
            let rec = Self {
                job: field_u64(line, "job", &row[job_i])?,
                phase: JobPhase::parse(&row[phase_i]),
                submit_s: field_u64(line, "submit_s", &row[submit_i])?,
                execute_s: parse_opt("execute_s", &row[exec_i])?,
                terminate_s: parse_opt("terminate_s", &row[term_i])?,
            };
            if rec.submit_s < prev_submit {
                return Err(RecordError::NonMonotonic {
                    line,
                    submit_s: rec.submit_s,
                    prev_s: prev_submit,
                });
            }
            prev_submit = rec.submit_s;
            rec.check_times(line)?;
            out.push(rec);
        }
        Ok(out)
    }
}

/// Batch + jobs records of one DAGMan — the simulator's full input.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchInput {
    /// Batch-level times.
    pub batch: BatchRecord,
    /// Per-job times.
    pub jobs: Vec<JobRecord>,
}

impl BatchInput {
    /// Parse from the two CSV texts.
    pub fn from_csv(batch_csv: &str, jobs_csv: &str) -> Result<Self, RecordError> {
        Ok(Self {
            batch: BatchRecord::parse_csv(batch_csv)?,
            jobs: JobRecord::parse_csv(jobs_csv)?,
        })
    }

    /// Extract directly from an `htcsim` run report (single-owner runs).
    pub fn from_report(report: &RunReport) -> Result<Self, RecordError> {
        let name_of = report.name_of();
        Self::from_csv(&report.log.batch_csv(), &report.log.jobs_csv(name_of))
    }

    /// Validate internal consistency (job times within batch bounds,
    /// execute ≥ submit, terminate ≥ execute). CSV-parsed inputs are
    /// already checked; this covers records built in memory.
    pub fn validate(&self) -> Result<(), RecordError> {
        if self.jobs.is_empty() {
            return Err(RecordError::Inconsistent("no job records".into()));
        }
        for j in &self.jobs {
            j.check_times(0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BATCH: &str = "submit_s,execute_s,terminate_s\n0,60,1000\n";
    const JOBS: &str = "\
job,owner,phase,submit_s,execute_s,terminate_s
0,0,rupture,0,60,200
1,0,waveform,0,300,900
3,0,gf,0,,
2,0,waveform,500,800,1000
";

    #[test]
    fn batch_record_parses() {
        let b = BatchRecord::parse_csv(BATCH).unwrap();
        assert_eq!(b.submit_s, 0);
        assert_eq!(b.runtime_secs(), 1000);
    }

    #[test]
    fn batch_record_rejects_inverted_times() {
        assert!(matches!(
            BatchRecord::parse_csv("submit_s,execute_s,terminate_s\n100,0,50\n"),
            Err(RecordError::NegativeDuration { line: 2, .. })
        ));
        assert!(matches!(
            BatchRecord::parse_csv("submit_s,execute_s\n1,2\n"),
            Err(RecordError::Malformed(_))
        ));
        assert!(matches!(
            BatchRecord::parse_csv("submit_s,execute_s,terminate_s\n"),
            Err(RecordError::Malformed(_))
        ));
    }

    #[test]
    fn job_records_parse_with_phases_and_missing_times() {
        let jobs = JobRecord::parse_csv(JOBS).unwrap();
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].phase, JobPhase::Rupture);
        assert_eq!(jobs[1].phase, JobPhase::Waveform);
        assert_eq!(jobs[2].phase, JobPhase::Other);
        assert_eq!(jobs[2].execute_s, None);
        assert_eq!(jobs[2].terminate_s, None);
        assert_eq!(jobs[3].terminate_s, Some(1000));
    }

    #[test]
    fn malformed_csv_is_rejected_with_line_numbers() {
        // Ragged row.
        let ragged = "job,owner,phase,submit_s,execute_s,terminate_s\n0,0,rupture,0,60\n";
        let err = JobRecord::parse_csv(ragged).unwrap_err();
        assert!(matches!(err, RecordError::Malformed(_)));
        assert!(err.to_string().contains("row 2"), "{err}");
        // Unparseable field carries its line and column.
        let bad = "job,owner,phase,submit_s,execute_s,terminate_s\n\
                   0,0,rupture,0,60,200\n1,0,waveform,soon,80,220\n";
        let err = JobRecord::parse_csv(bad).unwrap_err();
        assert_eq!(
            err,
            RecordError::BadField {
                line: 3,
                column: "submit_s",
                value: "soon".into()
            }
        );
        assert!(err.to_string().contains("line 3"), "{err}");
        // Negative times never parse as u64 — rejected, not wrapped.
        let neg = "job,owner,phase,submit_s,execute_s,terminate_s\n0,0,rupture,-5,60,200\n";
        assert!(matches!(
            JobRecord::parse_csv(neg),
            Err(RecordError::BadField { line: 2, .. })
        ));
        // Missing required column.
        let err = JobRecord::parse_csv("job,owner,phase\n0,0,rupture\n").unwrap_err();
        assert!(matches!(err, RecordError::Malformed(_)));
    }

    #[test]
    fn non_monotonic_and_backwards_rows_are_rejected() {
        // Submission order must be non-decreasing.
        let shuffled = "job,owner,phase,submit_s,execute_s,terminate_s\n\
                        0,0,rupture,500,560,700\n1,0,waveform,100,300,900\n";
        let err = JobRecord::parse_csv(shuffled).unwrap_err();
        assert_eq!(
            err,
            RecordError::NonMonotonic {
                line: 3,
                submit_s: 100,
                prev_s: 500
            }
        );
        // A job executing before its own submission is a negative queue
        // duration, flagged with its line.
        let backwards = "job,owner,phase,submit_s,execute_s,terminate_s\n\
                         0,0,rupture,100,50,200\n";
        let err = JobRecord::parse_csv(backwards).unwrap_err();
        assert!(matches!(err, RecordError::NegativeDuration { line: 2, .. }));
        assert!(err.to_string().contains("line 2"), "{err}");
        // Terminate before execute is a negative execution duration.
        let inverted = "job,owner,phase,submit_s,execute_s,terminate_s\n\
                        0,0,rupture,0,100,90\n";
        assert!(matches!(
            JobRecord::parse_csv(inverted),
            Err(RecordError::NegativeDuration { line: 2, .. })
        ));
    }

    #[test]
    fn batch_input_validates() {
        let input = BatchInput::from_csv(BATCH, JOBS).unwrap();
        assert!(input.validate().is_ok());
        let bad = "job,owner,phase,submit_s,execute_s,terminate_s\n0,0,rupture,100,50,200\n";
        assert!(BatchInput::from_csv(BATCH, bad).is_err());
        let empty = "job,owner,phase,submit_s,execute_s,terminate_s\n";
        let input = BatchInput::from_csv(BATCH, empty).unwrap();
        assert!(matches!(
            input.validate(),
            Err(RecordError::Inconsistent(_))
        ));
    }

    #[test]
    fn phase_parse_labels() {
        assert_eq!(JobPhase::parse("rupture"), JobPhase::Rupture);
        assert_eq!(JobPhase::parse("waveform"), JobPhase::Waveform);
        assert_eq!(JobPhase::parse("matrix"), JobPhase::Other);
    }
}
