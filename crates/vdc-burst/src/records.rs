//! Input records of the bursting simulator: the two `.csv` files the paper
//! describes (§3.1) — one row of batch-level times and one row per job —
//! plus direct construction from an `htcsim` run report.

use htcsim::cluster::RunReport;
use htcsim::csvlite;

/// Which FDW phase a job belongs to; bursted completion times differ per
/// phase (§3.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// A-phase rupture job (bursted completion 287 s).
    Rupture,
    /// C-phase waveform job (bursted completion 144 s).
    Waveform,
    /// Everything else (matrix/GF); treated like rupture jobs when
    /// bursted.
    Other,
}

impl JobPhase {
    /// Parse the phase label used in the jobs CSV.
    pub fn parse(s: &str) -> Self {
        match s {
            "rupture" => JobPhase::Rupture,
            "waveform" => JobPhase::Waveform,
            _ => JobPhase::Other,
        }
    }
}

/// Batch-level times of one recorded DAGMan run (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRecord {
    /// First submission.
    pub submit_s: u64,
    /// First execution start.
    pub execute_s: u64,
    /// Termination (last completion).
    pub terminate_s: u64,
}

impl BatchRecord {
    /// Parse the batch CSV (`submit_s,execute_s,terminate_s`, one row).
    pub fn parse_csv(text: &str) -> Result<Self, String> {
        let (header, rows) = csvlite::parse(text)?;
        let row = rows.first().ok_or("batch CSV has no data row")?;
        let col = |name: &str| -> Result<u64, String> {
            let idx = csvlite::column(&header, name)?;
            row[idx]
                .parse()
                .map_err(|_| format!("bad {name} value '{}'", row[idx]))
        };
        let rec = Self {
            submit_s: col("submit_s")?,
            execute_s: col("execute_s")?,
            terminate_s: col("terminate_s")?,
        };
        if rec.terminate_s < rec.submit_s {
            return Err("batch terminates before it submits".into());
        }
        Ok(rec)
    }

    /// Batch runtime in seconds.
    pub fn runtime_secs(&self) -> u64 {
        self.terminate_s - self.submit_s
    }
}

/// Per-job times of one recorded DAGMan run (seconds; times are absolute
/// in the same clock as the batch record).
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Job id from the log.
    pub job: u64,
    /// Phase of the FDW this job belongs to.
    pub phase: JobPhase,
    /// Submission time.
    pub submit_s: u64,
    /// Execution start (None if it never started).
    pub execute_s: Option<u64>,
    /// Completion time (None if it never completed).
    pub terminate_s: Option<u64>,
}

impl JobRecord {
    /// Parse the jobs CSV exported by
    /// [`htcsim::userlog::UserLog::jobs_csv`].
    pub fn parse_csv(text: &str) -> Result<Vec<Self>, String> {
        let (header, rows) = csvlite::parse(text)?;
        let job_i = csvlite::column(&header, "job")?;
        let phase_i = csvlite::column(&header, "phase")?;
        let submit_i = csvlite::column(&header, "submit_s")?;
        let exec_i = csvlite::column(&header, "execute_s")?;
        let term_i = csvlite::column(&header, "terminate_s")?;
        let mut out = Vec::with_capacity(rows.len());
        for (n, row) in rows.iter().enumerate() {
            let parse_opt = |s: &str| -> Result<Option<u64>, String> {
                if s.is_empty() {
                    Ok(None)
                } else {
                    s.parse()
                        .map(Some)
                        .map_err(|_| format!("row {}: bad time '{s}'", n + 2))
                }
            };
            out.push(Self {
                job: row[job_i]
                    .parse()
                    .map_err(|_| format!("row {}: bad job id", n + 2))?,
                phase: JobPhase::parse(&row[phase_i]),
                submit_s: row[submit_i]
                    .parse()
                    .map_err(|_| format!("row {}: bad submit time", n + 2))?,
                execute_s: parse_opt(&row[exec_i])?,
                terminate_s: parse_opt(&row[term_i])?,
            });
        }
        Ok(out)
    }
}

/// Batch + jobs records of one DAGMan — the simulator's full input.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchInput {
    /// Batch-level times.
    pub batch: BatchRecord,
    /// Per-job times.
    pub jobs: Vec<JobRecord>,
}

impl BatchInput {
    /// Parse from the two CSV texts.
    pub fn from_csv(batch_csv: &str, jobs_csv: &str) -> Result<Self, String> {
        Ok(Self {
            batch: BatchRecord::parse_csv(batch_csv)?,
            jobs: JobRecord::parse_csv(jobs_csv)?,
        })
    }

    /// Extract directly from an `htcsim` run report (single-owner runs).
    pub fn from_report(report: &RunReport) -> Result<Self, String> {
        let name_of = report.name_of();
        Self::from_csv(&report.log.batch_csv(), &report.log.jobs_csv(name_of))
    }

    /// Validate internal consistency (job times within batch bounds,
    /// execute ≥ submit, terminate ≥ execute).
    pub fn validate(&self) -> Result<(), String> {
        if self.jobs.is_empty() {
            return Err("no job records".into());
        }
        for j in &self.jobs {
            if let Some(e) = j.execute_s {
                if e < j.submit_s {
                    return Err(format!("job {} executes before submission", j.job));
                }
                if let Some(t) = j.terminate_s {
                    if t < e {
                        return Err(format!("job {} terminates before executing", j.job));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BATCH: &str = "submit_s,execute_s,terminate_s\n0,60,1000\n";
    const JOBS: &str = "\
job,owner,phase,submit_s,execute_s,terminate_s
0,0,rupture,0,60,200
1,0,waveform,0,300,900
2,0,waveform,500,800,1000
3,0,gf,0,,
";

    #[test]
    fn batch_record_parses() {
        let b = BatchRecord::parse_csv(BATCH).unwrap();
        assert_eq!(b.submit_s, 0);
        assert_eq!(b.runtime_secs(), 1000);
    }

    #[test]
    fn batch_record_rejects_inverted_times() {
        assert!(BatchRecord::parse_csv("submit_s,execute_s,terminate_s\n100,0,50\n").is_err());
        assert!(BatchRecord::parse_csv("submit_s,execute_s\n1,2\n").is_err());
        assert!(BatchRecord::parse_csv("submit_s,execute_s,terminate_s\n").is_err());
    }

    #[test]
    fn job_records_parse_with_phases_and_missing_times() {
        let jobs = JobRecord::parse_csv(JOBS).unwrap();
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].phase, JobPhase::Rupture);
        assert_eq!(jobs[1].phase, JobPhase::Waveform);
        assert_eq!(jobs[3].phase, JobPhase::Other);
        assert_eq!(jobs[3].execute_s, None);
        assert_eq!(jobs[3].terminate_s, None);
        assert_eq!(jobs[2].terminate_s, Some(1000));
    }

    #[test]
    fn batch_input_validates() {
        let input = BatchInput::from_csv(BATCH, JOBS).unwrap();
        assert!(input.validate().is_ok());
        let bad = "job,owner,phase,submit_s,execute_s,terminate_s\n0,0,rupture,100,50,200\n";
        let input = BatchInput::from_csv(BATCH, bad).unwrap();
        assert!(input.validate().is_err());
        let empty = "job,owner,phase,submit_s,execute_s,terminate_s\n";
        let input = BatchInput::from_csv(BATCH, empty).unwrap();
        assert!(input.validate().is_err());
    }

    #[test]
    fn phase_parse_labels() {
        assert_eq!(JobPhase::parse("rupture"), JobPhase::Rupture);
        assert_eq!(JobPhase::parse("waveform"), JobPhase::Waveform);
        assert_eq!(JobPhase::parse("matrix"), JobPhase::Other);
    }
}
