//! Reporting: the "detailed output" and per-second throughput `.csv` the
//! paper's simulator generates (§3.1), plus a sweep table formatter for
//! the Fig. 5/6 harness.

use htcsim::csvlite;

use crate::simulator::BurstOutcome;

/// Serialise the per-second instant-throughput series as CSV
/// (`second,throughput_jpm`), exactly the artifact §3.1 describes.
pub fn throughput_csv(outcome: &BurstOutcome) -> String {
    let rows: Vec<Vec<String>> = outcome
        .instant_series
        .iter()
        .enumerate()
        .map(|(s, jpm)| vec![s.to_string(), format!("{jpm:.4}")])
        .collect();
    csvlite::encode(&["second", "throughput_jpm"], &rows)
}

/// One row of the Fig. 5 sweep table.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Batch label ("batch1"/"batch2"/…).
    pub batch: String,
    /// Policy-1 probe time, seconds (0 = control).
    pub probe_secs: u64,
    /// Policy-2 queue limit, minutes (0 = control).
    pub queue_mins: u64,
    /// The simulation outcome.
    pub outcome: BurstOutcome,
}

/// Format a sweep as the human-readable table the harness prints.
pub fn format_sweep_table(rows: &[SweepRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:>6} {:>6} {:>9} {:>8} {:>8} {:>9} {:>9}\n",
        "batch", "probe", "queue", "AIT(jpm)", "VDC(%)", "runtime", "bursted", "cost($)"
    ));
    for r in rows {
        let probe = if r.probe_secs == 0 {
            "ctrl".to_string()
        } else {
            r.probe_secs.to_string()
        };
        let queue = if r.queue_mins == 0 {
            "-".to_string()
        } else {
            r.queue_mins.to_string()
        };
        out.push_str(&format!(
            "{:<8} {:>6} {:>6} {:>9.1} {:>8.1} {:>8.2}h {:>9} {:>9.2}\n",
            r.batch,
            probe,
            queue,
            r.outcome.ait_jpm,
            r.outcome.vdc_usage_pct(),
            r.outcome.runtime_secs as f64 / 3600.0,
            r.outcome.bursted_jobs,
            r.outcome.cost_usd,
        ));
    }
    out
}

/// Serialise a sweep as machine-readable CSV.
pub fn sweep_csv(rows: &[SweepRow]) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.batch.clone(),
                r.probe_secs.to_string(),
                r.queue_mins.to_string(),
                format!("{:.4}", r.outcome.ait_jpm),
                format!("{:.4}", r.outcome.vdc_usage_pct()),
                r.outcome.runtime_secs.to_string(),
                r.outcome.bursted_jobs.to_string(),
                format!("{:.4}", r.outcome.cost_usd),
            ]
        })
        .collect();
    csvlite::encode(
        &[
            "batch",
            "probe_secs",
            "queue_mins",
            "ait_jpm",
            "vdc_usage_pct",
            "runtime_secs",
            "bursted_jobs",
            "cost_usd",
        ],
        &data,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> BurstOutcome {
        BurstOutcome {
            instant_series: vec![0.0, 0.5, 1.0],
            ait_jpm: 0.5,
            runtime_secs: 7200,
            total_jobs: 100,
            bursted_jobs: 25,
            unfinished_jobs: 0,
            vdc_minutes: 60.0,
            cost_usd: 0.102,
        }
    }

    #[test]
    fn throughput_csv_one_row_per_second() {
        let csv = throughput_csv(&outcome());
        let (h, rows) = csvlite::parse(&csv).unwrap();
        assert_eq!(h, vec!["second", "throughput_jpm"]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2][0], "2");
        assert_eq!(rows[2][1], "1.0000");
    }

    #[test]
    fn sweep_table_formats() {
        let rows = vec![
            SweepRow {
                batch: "batch1".into(),
                probe_secs: 0,
                queue_mins: 0,
                outcome: outcome(),
            },
            SweepRow {
                batch: "batch1".into(),
                probe_secs: 5,
                queue_mins: 90,
                outcome: outcome(),
            },
        ];
        let table = format_sweep_table(&rows);
        assert!(table.contains("ctrl"));
        assert!(table.contains("batch1"));
        assert!(table.contains("2.00h"));
        let csv = sweep_csv(&rows);
        let (_, parsed) = csvlite::parse(&csv).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1][1], "5");
        assert_eq!(parsed[1][4], "25.0000");
    }
}
