//! The bursting simulation loop (§3.1.1): iterate through each second of a
//! recorded DAGMan run, detect OSG completions from the record, apply the
//! bursting policies, and advance simulated VDC jobs by one second until
//! they hit their constant completion times (287 s rupture / 144 s
//! waveform).

use crate::policy::BurstPolicies;
use crate::records::{BatchInput, JobPhase};

/// Seconds a bursted job of each phase takes on VDC (§3.1.1).
pub fn vdc_duration_secs(phase: JobPhase) -> u64 {
    match phase {
        JobPhase::Waveform => 144,
        JobPhase::Rupture | JobPhase::Other => 287,
    }
}

/// Where a job ended up running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Disposition {
    /// Follows its OSG record untouched.
    Osg,
    /// Bursted to VDC at `start`; completes at `start + duration`.
    Bursted {
        /// Second the burst began.
        start: u64,
        /// VDC execution time.
        duration: u64,
    },
    /// Completed (either path).
    Done,
}

/// Result of one bursting simulation.
#[derive(Debug, Clone)]
pub struct BurstOutcome {
    /// Instant throughput (jobs/minute) for every second of the run
    /// (eq. 5), starting at the batch submit time.
    pub instant_series: Vec<f64>,
    /// Average instant throughput (eq. 6).
    pub ait_jpm: f64,
    /// Total runtime in seconds (batch submit → last completion).
    pub runtime_secs: u64,
    /// Total jobs in the batch.
    pub total_jobs: usize,
    /// Jobs bursted to VDC.
    pub bursted_jobs: usize,
    /// Jobs that never completed (incomplete records never bursted).
    pub unfinished_jobs: usize,
    /// Total VDC compute minutes consumed.
    pub vdc_minutes: f64,
    /// Simulated bursting cost in USD (eq. 7).
    pub cost_usd: f64,
}

impl BurstOutcome {
    /// Fraction of jobs bursted to VDC in [0, 1].
    pub fn burst_fraction(&self) -> f64 {
        if self.total_jobs == 0 {
            0.0
        } else {
            self.bursted_jobs as f64 / self.total_jobs as f64
        }
    }

    /// VDC usage as a percentage of jobs (the Fig. 5 metric).
    pub fn vdc_usage_pct(&self) -> f64 {
        self.burst_fraction() * 100.0
    }
}

/// Cloud cost per VDC minute (EC2 a1.xlarge on-demand; §4.3 eq. 7).
pub const CLOUD_COST_PER_MIN: f64 = 0.0017;

/// Run the bursting simulation over one recorded batch.
pub fn simulate(input: &BatchInput, policies: &BurstPolicies) -> Result<BurstOutcome, String> {
    input.validate()?;
    let t0 = input.batch.submit_s;
    let n = input.jobs.len();
    let burst_cap = policies
        .max_burst_fraction
        .map(|f| (f * n as f64).floor() as usize)
        .unwrap_or(usize::MAX);

    let mut disp = vec![Disposition::Osg; n];
    let mut completed = 0usize;
    let mut bursted = 0usize;
    let mut vdc_seconds = 0u64;
    let mut armed = policies
        .throughput
        .map(|p| p.threshold_jpm <= 0.0)
        .unwrap_or(false);
    let mut instant_series = Vec::new();
    let mut last_completion = t0;

    // Hard stop: a day past the recorded termination is enough for any
    // bursted tail to drain.
    let t_end_cap = input.batch.terminate_s + 86_400;

    let mut t = t0;
    while completed < n && t <= t_end_cap {
        // 1. OSG completions at this second.
        for (i, job) in input.jobs.iter().enumerate() {
            if disp[i] == Disposition::Osg && job.terminate_s == Some(t) {
                disp[i] = Disposition::Done;
                completed += 1;
                last_completion = t;
            }
        }
        // 2. Bursted completions at this second.
        for d in disp.iter_mut() {
            if let Disposition::Bursted { start, duration } = *d {
                if start + duration == t {
                    *d = Disposition::Done;
                    completed += 1;
                    vdc_seconds += duration;
                    last_completion = t;
                }
            }
        }

        // Instant throughput at this second (eq. 5).
        let elapsed_min = ((t - t0).max(1)) as f64 / 60.0;
        let omega = completed as f64 / elapsed_min;
        instant_series.push(omega);

        // 3. Policies.
        let elapsed = t - t0;
        let can_burst = |bursted: usize| bursted < burst_cap;

        // Policy 1: low throughput (armed once the threshold is reached).
        if let Some(p) = policies.throughput {
            if omega >= p.threshold_jpm {
                armed = true;
            }
            if p.probe_secs > 0
                && elapsed.is_multiple_of(p.probe_secs)
                && armed
                && omega < p.threshold_jpm
                && can_burst(bursted)
            {
                if let Some(i) = last_unsubmitted(&input.jobs, &disp, t) {
                    disp[i] = Disposition::Bursted {
                        start: t,
                        duration: vdc_duration_secs(input.jobs[i].phase),
                    };
                    bursted += 1;
                }
            }
        }

        // Policy 2: congested queue.
        if let Some(p) = policies.queue_time {
            if p.check_secs > 0 && elapsed.is_multiple_of(p.check_secs) {
                for (i, job) in input.jobs.iter().enumerate() {
                    if !can_burst(bursted) {
                        break;
                    }
                    let queued = disp[i] == Disposition::Osg
                        && job.submit_s <= t
                        && job.execute_s.map(|e| e > t).unwrap_or(true);
                    if queued && t - job.submit_s > p.max_queue_secs {
                        disp[i] = Disposition::Bursted {
                            start: t,
                            duration: vdc_duration_secs(job.phase),
                        };
                        bursted += 1;
                    }
                }
            }
        }

        // Policy 3: submission gaps.
        if let Some(p) = policies.submission_gap {
            if p.check_secs > 0 && elapsed.is_multiple_of(p.check_secs) && can_burst(bursted) {
                let last_sub = input
                    .jobs
                    .iter()
                    .filter(|j| j.submit_s <= t)
                    .map(|j| j.submit_s)
                    .max()
                    .unwrap_or(t0);
                if t - last_sub > p.max_gap_secs {
                    if let Some(i) = last_unsubmitted(&input.jobs, &disp, t) {
                        disp[i] = Disposition::Bursted {
                            start: t,
                            duration: vdc_duration_secs(input.jobs[i].phase),
                        };
                        bursted += 1;
                    }
                }
            }
        }

        t += 1;
    }

    let unfinished = disp
        .iter()
        .filter(|d| !matches!(d, Disposition::Done))
        .count();
    let runtime_secs = last_completion - t0;
    let ait = if instant_series.is_empty() {
        0.0
    } else {
        instant_series.iter().sum::<f64>() / instant_series.len() as f64
    };
    let vdc_minutes = vdc_seconds as f64 / 60.0;
    Ok(BurstOutcome {
        instant_series,
        ait_jpm: ait,
        runtime_secs,
        total_jobs: n,
        bursted_jobs: bursted,
        unfinished_jobs: unfinished,
        vdc_minutes,
        cost_usd: vdc_minutes * CLOUD_COST_PER_MIN,
    })
}

/// Index of the not-yet-submitted OSG job with the latest submit time
/// ("the last unsubmitted OSG job for the phase", §3.1.2).
fn last_unsubmitted(
    jobs: &[crate::records::JobRecord],
    disp: &[Disposition],
    t: u64,
) -> Option<usize> {
    jobs.iter()
        .enumerate()
        .filter(|(i, j)| disp[*i] == Disposition::Osg && j.submit_s > t)
        .max_by_key(|(_, j)| j.submit_s)
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BurstPolicies, QueueTimePolicy, SubmissionGapPolicy, ThroughputPolicy};
    use crate::records::{BatchRecord, JobRecord};

    /// A batch of `n` waveform jobs completing one per minute after a slow
    /// start.
    fn slow_batch(n: u64) -> BatchInput {
        let jobs: Vec<JobRecord> = (0..n)
            .map(|i| JobRecord {
                job: i,
                phase: JobPhase::Waveform,
                submit_s: i * 30,
                execute_s: Some(1000 + i * 60),
                terminate_s: Some(2000 + i * 60),
            })
            .collect();
        let term = jobs.iter().filter_map(|j| j.terminate_s).max().unwrap();
        BatchInput {
            batch: BatchRecord {
                submit_s: 0,
                execute_s: 1000,
                terminate_s: term,
            },
            jobs,
        }
    }

    #[test]
    fn control_replays_record_exactly() {
        let input = slow_batch(20);
        let out = simulate(&input, &BurstPolicies::control()).unwrap();
        assert_eq!(out.bursted_jobs, 0);
        assert_eq!(out.cost_usd, 0.0);
        assert_eq!(out.runtime_secs, input.batch.runtime_secs());
        assert_eq!(out.total_jobs, 20);
        assert_eq!(out.unfinished_jobs, 0);
        assert_eq!(
            out.instant_series.len() as u64,
            input.batch.runtime_secs() + 1
        );
        // Final instant throughput equals jobs/total-minutes.
        let last = *out.instant_series.last().unwrap();
        let expected = 20.0 / (input.batch.runtime_secs() as f64 / 60.0);
        assert!((last - expected).abs() < 1e-9);
    }

    #[test]
    fn queue_policy_bursts_long_waiters_and_shortens_runtime() {
        let input = slow_batch(20);
        let policies = BurstPolicies {
            queue_time: Some(QueueTimePolicy {
                max_queue_secs: 300,
                check_secs: 30,
            }),
            ..Default::default()
        };
        let out = simulate(&input, &policies).unwrap();
        assert!(out.bursted_jobs > 0, "long-queued jobs must burst");
        assert!(
            out.runtime_secs < input.batch.runtime_secs(),
            "bursting must shorten this tail-heavy batch"
        );
        assert!(out.cost_usd > 0.0);
        assert_eq!(out.unfinished_jobs, 0);
    }

    #[test]
    fn throughput_policy_requires_arming() {
        // Batch whose throughput never reaches the threshold: policy 1
        // must never fire.
        let input = slow_batch(10);
        let policies = BurstPolicies {
            throughput: Some(ThroughputPolicy {
                probe_secs: 1,
                threshold_jpm: 1000.0,
            }),
            ..Default::default()
        };
        let out = simulate(&input, &policies).unwrap();
        assert_eq!(out.bursted_jobs, 0, "unarmed policy must not burst");
    }

    #[test]
    fn throughput_policy_bursts_after_arming() {
        // Fast initial completions arm the policy; the long tail then
        // triggers bursting of unsubmitted jobs.
        let mut jobs: Vec<JobRecord> = (0..30)
            .map(|i| JobRecord {
                job: i,
                phase: JobPhase::Rupture,
                submit_s: 0,
                execute_s: Some(10),
                terminate_s: Some(60 + i), // 30 jobs inside the first 90 s
            })
            .collect();
        // Late tail submitted much later.
        for i in 30..40 {
            jobs.push(JobRecord {
                job: i,
                phase: JobPhase::Waveform,
                submit_s: 4000 + (i - 30) * 100,
                execute_s: Some(8000),
                terminate_s: Some(12_000),
            });
        }
        let input = BatchInput {
            batch: BatchRecord {
                submit_s: 0,
                execute_s: 10,
                terminate_s: 12_000,
            },
            jobs,
        };
        let policies = BurstPolicies {
            throughput: Some(ThroughputPolicy {
                probe_secs: 1,
                threshold_jpm: 15.0,
            }),
            ..Default::default()
        };
        let out = simulate(&input, &policies).unwrap();
        assert!(out.bursted_jobs > 0);
        assert!(out.runtime_secs < 12_000);
    }

    #[test]
    fn faster_probing_bursts_more() {
        let input = slow_batch(40);
        let run = |probe| {
            let policies = BurstPolicies {
                throughput: Some(ThroughputPolicy {
                    probe_secs: probe,
                    // Low threshold so arming happens with the first
                    // completion spike.
                    threshold_jpm: 0.5,
                }),
                ..Default::default()
            };
            simulate(&input, &policies).unwrap()
        };
        let fast = run(1);
        let slow = run(120);
        assert!(
            fast.bursted_jobs >= slow.bursted_jobs,
            "probe 1 s bursted {} < probe 120 s {}",
            fast.bursted_jobs,
            slow.bursted_jobs
        );
        assert!(fast.ait_jpm >= slow.ait_jpm * 0.95);
    }

    #[test]
    fn gap_policy_fires_on_submission_gaps() {
        // Submissions stop after t=100 but late jobs arrive at t=5000.
        let mut jobs: Vec<JobRecord> = (0..5)
            .map(|i| JobRecord {
                job: i,
                phase: JobPhase::Rupture,
                submit_s: i * 20,
                execute_s: Some(200),
                terminate_s: Some(400 + i * 10),
            })
            .collect();
        jobs.push(JobRecord {
            job: 5,
            phase: JobPhase::Waveform,
            submit_s: 5000,
            execute_s: Some(5100),
            terminate_s: Some(6000),
        });
        let input = BatchInput {
            batch: BatchRecord {
                submit_s: 0,
                execute_s: 200,
                terminate_s: 6000,
            },
            jobs,
        };
        let policies = BurstPolicies {
            submission_gap: Some(SubmissionGapPolicy {
                max_gap_secs: 600,
                check_secs: 60,
            }),
            ..Default::default()
        };
        let out = simulate(&input, &policies).unwrap();
        assert_eq!(out.bursted_jobs, 1, "the late job must be bursted");
        assert!(out.runtime_secs < 6000);
    }

    #[test]
    fn burst_cap_enforced() {
        let input = slow_batch(40);
        let policies = BurstPolicies {
            queue_time: Some(QueueTimePolicy {
                max_queue_secs: 60,
                check_secs: 10,
            }),
            max_burst_fraction: Some(0.30),
            ..Default::default()
        };
        let out = simulate(&input, &policies).unwrap();
        assert!(
            out.burst_fraction() <= 0.30 + 1e-9,
            "{}",
            out.burst_fraction()
        );
        assert!(out.bursted_jobs <= 12);
    }

    #[test]
    fn vdc_durations_match_paper() {
        assert_eq!(vdc_duration_secs(JobPhase::Rupture), 287);
        assert_eq!(vdc_duration_secs(JobPhase::Waveform), 144);
        assert_eq!(vdc_duration_secs(JobPhase::Other), 287);
    }

    #[test]
    fn cost_is_minutes_times_rate() {
        let input = slow_batch(20);
        let policies = BurstPolicies {
            queue_time: Some(QueueTimePolicy {
                max_queue_secs: 120,
                check_secs: 10,
            }),
            ..Default::default()
        };
        let out = simulate(&input, &policies).unwrap();
        assert!((out.cost_usd - out.vdc_minutes * CLOUD_COST_PER_MIN).abs() < 1e-12);
        // Every bursted waveform job costs 144 s of VDC time.
        assert!((out.vdc_minutes - out.bursted_jobs as f64 * 144.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn incomplete_records_without_bursting_stay_unfinished() {
        let jobs = vec![JobRecord {
            job: 0,
            phase: JobPhase::Waveform,
            submit_s: 0,
            execute_s: None,
            terminate_s: None,
        }];
        let input = BatchInput {
            batch: BatchRecord {
                submit_s: 0,
                execute_s: 0,
                terminate_s: 100,
            },
            jobs,
        };
        let out = simulate(&input, &BurstPolicies::control()).unwrap();
        assert_eq!(out.unfinished_jobs, 1);
        // …but policy 2 rescues it.
        let policies = BurstPolicies {
            queue_time: Some(QueueTimePolicy {
                max_queue_secs: 50,
                check_secs: 10,
            }),
            ..Default::default()
        };
        let out = simulate(&input, &policies).unwrap();
        assert_eq!(out.unfinished_jobs, 0);
        assert_eq!(out.bursted_jobs, 1);
    }
}
