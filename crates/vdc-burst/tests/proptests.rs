//! Property-based tests of the bursting simulator: conservation laws that
//! must hold for any recorded batch and any policy configuration.

use proptest::prelude::*;

use vdc_burst::policy::{BurstPolicies, QueueTimePolicy, SubmissionGapPolicy, ThroughputPolicy};
use vdc_burst::records::{BatchInput, BatchRecord, JobPhase, JobRecord};
use vdc_burst::simulator::{simulate, CLOUD_COST_PER_MIN};

/// Strategy: a random but internally consistent batch of complete job
/// records.
fn arb_batch() -> impl Strategy<Value = BatchInput> {
    proptest::collection::vec(
        (0u64..5_000, 0u64..5_000, 1u64..5_000, any::<bool>()),
        1..40,
    )
    .prop_map(|mut rows| {
        // The CSV exporter writes rows in submission order; the strict
        // parser rejects anything else, so the generator matches.
        rows.sort_by_key(|(submit, ..)| *submit);
        let jobs: Vec<JobRecord> = rows
            .iter()
            .enumerate()
            .map(|(i, (submit, wait, exec, is_wave))| JobRecord {
                job: i as u64,
                phase: if *is_wave {
                    JobPhase::Waveform
                } else {
                    JobPhase::Rupture
                },
                submit_s: *submit,
                execute_s: Some(submit + wait),
                terminate_s: Some(submit + wait + exec),
            })
            .collect();
        let submit = jobs.iter().map(|j| j.submit_s).min().unwrap();
        let execute = jobs.iter().filter_map(|j| j.execute_s).min().unwrap();
        let term = jobs.iter().filter_map(|j| j.terminate_s).max().unwrap();
        BatchInput {
            batch: BatchRecord {
                submit_s: submit,
                execute_s: execute,
                terminate_s: term,
            },
            jobs,
        }
    })
}

fn arb_policies() -> impl Strategy<Value = BurstPolicies> {
    (
        proptest::option::of((1u64..180, 0.1..100.0f64)),
        proptest::option::of((10u64..7200, 1u64..300)),
        proptest::option::of((10u64..3600, 1u64..300)),
        proptest::option::of(0.0..1.0f64),
    )
        .prop_map(|(t, q, g, cap)| BurstPolicies {
            throughput: t.map(|(probe_secs, threshold_jpm)| ThroughputPolicy {
                probe_secs,
                threshold_jpm,
            }),
            queue_time: q.map(|(max_queue_secs, check_secs)| QueueTimePolicy {
                max_queue_secs,
                check_secs,
            }),
            submission_gap: g.map(|(max_gap_secs, check_secs)| SubmissionGapPolicy {
                max_gap_secs,
                check_secs,
            }),
            max_burst_fraction: cap,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: for complete records, completed + unfinished = total,
    /// nothing goes unfinished, cost tracks VDC minutes exactly, and the
    /// burst cap is honoured.
    #[test]
    fn conservation_for_any_batch_and_policy(
        input in arb_batch(),
        policies in arb_policies(),
    ) {
        let out = simulate(&input, &policies).unwrap();
        prop_assert_eq!(out.total_jobs, input.jobs.len());
        prop_assert_eq!(out.unfinished_jobs, 0, "complete records always finish");
        prop_assert!(out.bursted_jobs <= out.total_jobs);
        prop_assert!((out.cost_usd - out.vdc_minutes * CLOUD_COST_PER_MIN).abs() < 1e-9);
        if let Some(cap) = policies.max_burst_fraction {
            prop_assert!(
                out.bursted_jobs as f64 <= (cap * out.total_jobs as f64).floor() + 1e-9
            );
        }
        // Instant throughput is nonnegative and starts at zero.
        prop_assert!(out.instant_series.iter().all(|v| *v >= 0.0));
        prop_assert_eq!(out.instant_series[0], 0.0);
        // AIT is the mean of the series (eq. 6).
        let mean =
            out.instant_series.iter().sum::<f64>() / out.instant_series.len() as f64;
        prop_assert!((out.ait_jpm - mean).abs() < 1e-9);
        // Runtime never exceeds the recorded termination + one VDC job.
        prop_assert!(
            out.runtime_secs <= input.batch.runtime_secs() + 287,
            "runtime {} vs record {}",
            out.runtime_secs,
            input.batch.runtime_secs()
        );
    }

    /// The control exactly replays the record.
    #[test]
    fn control_is_identity(input in arb_batch()) {
        let out = simulate(&input, &BurstPolicies::control()).unwrap();
        prop_assert_eq!(out.bursted_jobs, 0);
        prop_assert_eq!(out.vdc_minutes, 0.0);
        prop_assert_eq!(out.cost_usd, 0.0);
        prop_assert_eq!(out.runtime_secs, input.batch.runtime_secs());
    }

    /// Monotonicity of the cap: allowing more bursting never yields fewer
    /// bursted jobs, for the deterministic queue policy.
    #[test]
    fn burst_cap_monotonicity(input in arb_batch(), cap in 0.0..0.5f64) {
        let mk = |cap: Option<f64>| BurstPolicies {
            queue_time: Some(QueueTimePolicy { max_queue_secs: 60, check_secs: 10 }),
            max_burst_fraction: cap,
            ..Default::default()
        };
        let capped = simulate(&input, &mk(Some(cap))).unwrap();
        let uncapped = simulate(&input, &mk(None)).unwrap();
        prop_assert!(capped.bursted_jobs <= uncapped.bursted_jobs);
    }

    /// CSV roundtrip: records survive serialisation through the public
    /// CSV formats.
    #[test]
    fn record_csv_roundtrip(input in arb_batch()) {
        let batch_csv = format!(
            "submit_s,execute_s,terminate_s\n{},{},{}\n",
            input.batch.submit_s, input.batch.execute_s, input.batch.terminate_s
        );
        let mut jobs_csv =
            String::from("job,owner,phase,submit_s,execute_s,terminate_s\n");
        for j in &input.jobs {
            jobs_csv.push_str(&format!(
                "{},0,{},{},{},{}\n",
                j.job,
                match j.phase {
                    JobPhase::Rupture => "rupture",
                    JobPhase::Waveform => "waveform",
                    JobPhase::Other => "gf",
                },
                j.submit_s,
                j.execute_s.unwrap(),
                j.terminate_s.unwrap(),
            ));
        }
        let parsed = BatchInput::from_csv(&batch_csv, &jobs_csv).unwrap();
        prop_assert_eq!(parsed.batch, input.batch);
        prop_assert_eq!(parsed.jobs.len(), input.jobs.len());
        for (a, b) in parsed.jobs.iter().zip(&input.jobs) {
            prop_assert_eq!(a.submit_s, b.submit_s);
            prop_assert_eq!(a.execute_s, b.execute_s);
            prop_assert_eq!(a.terminate_s, b.terminate_s);
            prop_assert_eq!(a.phase, b.phase);
        }
    }
}
