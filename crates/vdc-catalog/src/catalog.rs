//! The catalog: deposition, curation, tagging and discovery — the VDC
//! data services the paper integrates the FDW with (§6, Fig. 7).

use std::collections::{BTreeSet, HashMap};

use fdw_core::archive::ArchiveManifest;

use crate::record::{CurationState, DataRecord, RecordId};

/// A query over the catalog; all set criteria must match (conjunctive).
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// Product kind filter.
    pub kind: Option<String>,
    /// Region filter.
    pub region: Option<String>,
    /// Tags the record must all carry.
    pub tags_all: Vec<String>,
    /// Inclusive magnitude range filter (records without magnitude never
    /// match a magnitude-filtered query).
    pub mw_range: Option<(f64, f64)>,
    /// Substring match on the path.
    pub path_contains: Option<String>,
    /// Include raw (uncurated) records; default is curated-only, the
    /// discoverability rule of the VDC.
    pub include_raw: bool,
}

impl Query {
    /// A query matching every curated record.
    pub fn all() -> Self {
        Self::default()
    }

    /// Filter by kind.
    pub fn kind(mut self, k: &str) -> Self {
        self.kind = Some(k.to_string());
        self
    }

    /// Filter by region.
    pub fn region(mut self, r: &str) -> Self {
        self.region = Some(r.to_string());
        self
    }

    /// Require a tag.
    pub fn tag(mut self, t: &str) -> Self {
        self.tags_all.push(t.to_string());
        self
    }

    /// Filter by inclusive magnitude range.
    pub fn mw(mut self, lo: f64, hi: f64) -> Self {
        self.mw_range = Some((lo, hi));
        self
    }

    /// Filter by path substring.
    pub fn path_contains(mut self, s: &str) -> Self {
        self.path_contains = Some(s.to_string());
        self
    }

    /// Include uncurated records.
    pub fn include_raw(mut self) -> Self {
        self.include_raw = true;
        self
    }

    fn matches(&self, r: &DataRecord) -> bool {
        if !self.include_raw && !r.is_curated() {
            return false;
        }
        if let Some(k) = &self.kind {
            if &r.kind != k {
                return false;
            }
        }
        if let Some(reg) = &self.region {
            if &r.region != reg {
                return false;
            }
        }
        for t in &self.tags_all {
            if !r.tags.contains(t) {
                return false;
            }
        }
        if let Some((lo, hi)) = self.mw_range {
            match r.mw {
                Some(mw) if mw >= lo && mw <= hi => {}
                _ => return false,
            }
        }
        if let Some(s) = &self.path_contains {
            if !r.path.contains(s) {
                return false;
            }
        }
        true
    }
}

/// The VDC data catalog.
#[derive(Debug, Default)]
pub struct VdcCatalog {
    records: Vec<DataRecord>,
    by_path: HashMap<String, RecordId>,
    /// Inverted tag index: tag → record ids carrying it.
    tag_index: HashMap<String, BTreeSet<RecordId>>,
}

impl VdcCatalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records (any curation state).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are deposited.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Deposit a product. Paths are unique; re-depositing an existing
    /// path is an error (immutable data products).
    pub fn deposit(
        &mut self,
        path: &str,
        kind: &str,
        region: &str,
        mw: Option<f64>,
        size_mb: f64,
        deposited_at: u64,
    ) -> Result<RecordId, String> {
        if self.by_path.contains_key(path) {
            return Err(format!("path '{path}' already deposited"));
        }
        let id = RecordId(self.records.len() as u64);
        let record = DataRecord {
            id,
            path: path.to_string(),
            kind: kind.to_string(),
            region: region.to_string(),
            mw,
            size_mb,
            tags: BTreeSet::new(),
            deposited_at,
            state: CurationState::Raw,
        };
        record.validate()?;
        self.by_path.insert(record.path.clone(), id);
        self.records.push(record);
        Ok(id)
    }

    /// Deposit every entry of an FDW archive manifest under a region
    /// label, returning the new ids.
    pub fn deposit_manifest(
        &mut self,
        manifest: &ArchiveManifest,
        region: &str,
        deposited_at: u64,
    ) -> Result<Vec<RecordId>, String> {
        let mut ids = Vec::with_capacity(manifest.len());
        for e in &manifest.entries {
            ids.push(self.deposit(&e.path, &e.kind, region, None, e.size_mb, deposited_at)?);
        }
        Ok(ids)
    }

    /// Borrow a record.
    pub fn record(&self, id: RecordId) -> Option<&DataRecord> {
        self.records.get(id.0 as usize)
    }

    /// Look up by path.
    pub fn by_path(&self, path: &str) -> Option<&DataRecord> {
        self.by_path.get(path).and_then(|id| self.record(*id))
    }

    /// Curate a record: re-validate its metadata and mark it
    /// discoverable.
    pub fn curate(&mut self, id: RecordId) -> Result<(), String> {
        let r = self
            .records
            .get_mut(id.0 as usize)
            .ok_or_else(|| format!("unknown record {id:?}"))?;
        r.validate()?;
        r.state = CurationState::Curated;
        Ok(())
    }

    /// Set a record's magnitude metadata (curation enrichment).
    pub fn set_magnitude(&mut self, id: RecordId, mw: f64) -> Result<(), String> {
        let r = self
            .records
            .get_mut(id.0 as usize)
            .ok_or_else(|| format!("unknown record {id:?}"))?;
        r.mw = Some(mw);
        r.validate()
    }

    /// Add a tag to a record.
    pub fn tag(&mut self, id: RecordId, tag: &str) -> Result<(), String> {
        let tag = tag.trim();
        if tag.is_empty() {
            return Err("tags cannot be empty".into());
        }
        let r = self
            .records
            .get_mut(id.0 as usize)
            .ok_or_else(|| format!("unknown record {id:?}"))?;
        if r.tags.insert(tag.to_string()) {
            self.tag_index
                .entry(tag.to_string())
                .or_default()
                .insert(id);
        }
        Ok(())
    }

    /// Remove a tag from a record (no-op if absent).
    pub fn untag(&mut self, id: RecordId, tag: &str) {
        if let Some(r) = self.records.get_mut(id.0 as usize) {
            if r.tags.remove(tag) {
                if let Some(set) = self.tag_index.get_mut(tag) {
                    set.remove(&id);
                }
            }
        }
    }

    /// Run a query; results in deposition order. Tag-filtered queries go
    /// through the inverted index.
    pub fn query(&self, q: &Query) -> Vec<&DataRecord> {
        // Seed the candidate set from the rarest tag when possible.
        if let Some(first_tag) = q.tags_all.first() {
            let Some(seed) = self.tag_index.get(first_tag) else {
                return Vec::new();
            };
            return seed
                .iter()
                .filter_map(|id| self.record(*id))
                .filter(|r| q.matches(r))
                .collect();
        }
        self.records.iter().filter(|r| q.matches(r)).collect()
    }

    /// Total size of a query's results in megabytes (what a delivery
    /// service would need to move).
    pub fn query_size_mb(&self, q: &Query) -> f64 {
        self.query(q).iter().map(|r| r.size_mb).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> VdcCatalog {
        let mut c = VdcCatalog::new();
        for i in 0..10 {
            let id = c
                .deposit(
                    &format!("run1/waveforms/s{i:03}.mseed"),
                    "waveform",
                    "chile",
                    Some(7.5 + 0.15 * i as f64),
                    10.0,
                    100 + i,
                )
                .unwrap();
            c.curate(id).unwrap();
            c.tag(id, "eew-training").unwrap();
            if i % 2 == 0 {
                c.tag(id, "validated").unwrap();
            }
        }
        let gf = c
            .deposit("run1/gf/gf.mseed", "gf", "chile", None, 1100.0, 99)
            .unwrap();
        c.curate(gf).unwrap();
        // An uncurated deposit from another region.
        c.deposit(
            "run2/waveforms/x.mseed",
            "waveform",
            "cascadia",
            Some(8.0),
            10.0,
            200,
        )
        .unwrap();
        c
    }

    #[test]
    fn deposit_and_lookup() {
        let c = seeded();
        assert_eq!(c.len(), 12);
        assert!(!c.is_empty());
        let r = c.by_path("run1/gf/gf.mseed").unwrap();
        assert_eq!(r.kind, "gf");
        assert!(c.by_path("nope").is_none());
    }

    #[test]
    fn duplicate_paths_rejected() {
        let mut c = seeded();
        assert!(c
            .deposit("run1/gf/gf.mseed", "gf", "chile", None, 1.0, 0)
            .is_err());
    }

    #[test]
    fn invalid_metadata_rejected_at_deposit() {
        let mut c = VdcCatalog::new();
        assert!(c.deposit("p", "", "chile", None, 1.0, 0).is_err());
        assert!(c.deposit("p", "gf", "chile", None, 0.0, 0).is_err());
        assert!(c.deposit("p", "gf", "chile", Some(15.0), 1.0, 0).is_err());
        assert!(c.is_empty(), "failed deposits must not leak records");
    }

    #[test]
    fn default_queries_see_only_curated() {
        let c = seeded();
        let all = c.query(&Query::all());
        assert_eq!(all.len(), 11, "the raw cascadia record is hidden");
        let with_raw = c.query(&Query::all().include_raw());
        assert_eq!(with_raw.len(), 12);
    }

    #[test]
    fn conjunctive_filters() {
        let c = seeded();
        let q = Query::all().kind("waveform").region("chile").mw(8.0, 9.0);
        let hits = c.query(&q);
        assert!(!hits.is_empty());
        for r in &hits {
            assert_eq!(r.kind, "waveform");
            assert!(r.mw.unwrap() >= 8.0);
        }
        // GF record has no magnitude: never matches an mw filter.
        let q = Query::all().kind("gf").mw(0.0, 100.0);
        assert!(c.query(&q).is_empty());
    }

    #[test]
    fn tag_index_queries() {
        let c = seeded();
        assert_eq!(c.query(&Query::all().tag("eew-training")).len(), 10);
        assert_eq!(
            c.query(&Query::all().tag("eew-training").tag("validated"))
                .len(),
            5
        );
        assert!(c.query(&Query::all().tag("nonexistent")).is_empty());
    }

    #[test]
    fn untag_updates_index() {
        let mut c = seeded();
        let id = c.by_path("run1/waveforms/s000.mseed").unwrap().id;
        c.untag(id, "validated");
        assert_eq!(c.query(&Query::all().tag("validated")).len(), 4);
        c.untag(id, "validated"); // idempotent
        assert!(c.tag(id, "  ").is_err());
    }

    #[test]
    fn path_substring_and_size() {
        let c = seeded();
        let q = Query::all().path_contains("waveforms");
        assert_eq!(c.query(&q).len(), 10);
        assert!((c.query_size_mb(&q) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn manifest_ingest() {
        use fdw_core::config::FdwConfig;
        let manifest = ArchiveManifest::for_run(
            "runX",
            &FdwConfig {
                n_waveforms: 5,
                ..Default::default()
            },
        );
        let mut c = VdcCatalog::new();
        let ids = c.deposit_manifest(&manifest, "chile", 1).unwrap();
        assert_eq!(ids.len(), manifest.len());
        for id in &ids {
            c.curate(*id).unwrap();
        }
        assert_eq!(c.query(&Query::all().kind("waveform")).len(), 5);
        assert_eq!(c.query(&Query::all().kind("gf")).len(), 1);
    }

    #[test]
    fn magnitude_enrichment() {
        let mut c = seeded();
        let id = c.by_path("run1/gf/gf.mseed").unwrap().id;
        c.set_magnitude(id, 8.5).unwrap();
        assert_eq!(c.record(id).unwrap().mw, Some(8.5));
        assert!(c.set_magnitude(id, 99.0).is_err());
        assert!(c.set_magnitude(RecordId(999), 8.0).is_err());
        assert!(c.curate(RecordId(999)).is_err());
    }
}
