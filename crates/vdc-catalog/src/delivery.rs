//! Intelligent data delivery: the caching-plus-prefetching service the
//! paper's §6 envisions ("large datasets will be able to be efficiently
//! distributed via optimized caching systems and even prefetched for
//! users via AI-based 'intelligent data delivery services' that utilize
//! user query traces", citing Qin et al. 2022).
//!
//! The model: a delivery cache of bounded size (MB) with LRU eviction,
//! optionally fronted by a first-order Markov prefetcher trained on past
//! access traces — after serving record `a`, the most frequent historical
//! successor of `a` is prefetched into the cache.

use std::collections::HashMap;

use crate::catalog::VdcCatalog;
use crate::record::RecordId;

/// A first-order Markov model over record accesses.
#[derive(Debug, Default)]
pub struct TransitionModel {
    counts: HashMap<RecordId, HashMap<RecordId, u64>>,
}

impl TransitionModel {
    /// Learn transitions from an access trace.
    pub fn train(&mut self, trace: &[RecordId]) {
        for w in trace.windows(2) {
            *self
                .counts
                .entry(w[0])
                .or_default()
                .entry(w[1])
                .or_insert(0) += 1;
        }
    }

    /// Most frequent successor of `from`, if any was observed.
    pub fn predict(&self, from: RecordId) -> Option<RecordId> {
        self.counts.get(&from).and_then(|succ| {
            succ.iter()
                .max_by_key(|(id, n)| (**n, std::cmp::Reverse(id.0)))
                .map(|(id, _)| *id)
        })
    }

    /// Number of distinct source records with learned transitions.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when nothing has been learned yet.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// Outcome of replaying a trace through the delivery service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeliveryStats {
    /// Requests served.
    pub requests: usize,
    /// Requests served from cache.
    pub hits: usize,
    /// Megabytes fetched from origin storage (misses + prefetches).
    pub origin_mb: f64,
    /// Prefetches issued.
    pub prefetches: usize,
}

impl DeliveryStats {
    /// Cache hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

/// An LRU delivery cache over catalog records, with optional prefetching.
pub struct DeliveryCache<'a> {
    catalog: &'a VdcCatalog,
    capacity_mb: f64,
    used_mb: f64,
    /// LRU order: front = coldest.
    lru: Vec<RecordId>,
    stats: DeliveryStats,
}

impl<'a> DeliveryCache<'a> {
    /// Create a cache of `capacity_mb` megabytes over `catalog`.
    pub fn new(catalog: &'a VdcCatalog, capacity_mb: f64) -> Self {
        assert!(capacity_mb > 0.0, "cache capacity must be positive");
        Self {
            catalog,
            capacity_mb,
            used_mb: 0.0,
            lru: Vec::new(),
            stats: DeliveryStats {
                requests: 0,
                hits: 0,
                origin_mb: 0.0,
                prefetches: 0,
            },
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> DeliveryStats {
        self.stats
    }

    /// Records currently cached.
    pub fn cached(&self) -> &[RecordId] {
        &self.lru
    }

    fn size_of(&self, id: RecordId) -> f64 {
        self.catalog.record(id).map(|r| r.size_mb).unwrap_or(0.0)
    }

    fn touch(&mut self, id: RecordId) {
        if let Some(pos) = self.lru.iter().position(|x| *x == id) {
            self.lru.remove(pos);
        }
        self.lru.push(id);
    }

    /// Insert `id`, evicting LRU entries until it fits. Records larger
    /// than the whole cache are fetched but not retained.
    fn insert(&mut self, id: RecordId) {
        let size = self.size_of(id);
        if size > self.capacity_mb {
            return;
        }
        while self.used_mb + size > self.capacity_mb {
            let victim = self.lru.remove(0);
            self.used_mb -= self.size_of(victim);
        }
        self.used_mb += size;
        self.lru.push(id);
    }

    /// Serve one request; returns true on a cache hit.
    pub fn request(&mut self, id: RecordId) -> bool {
        self.stats.requests += 1;
        if self.lru.contains(&id) {
            self.stats.hits += 1;
            self.touch(id);
            true
        } else {
            self.stats.origin_mb += self.size_of(id);
            self.insert(id);
            false
        }
    }

    /// Prefetch a record (no request accounting; counts origin traffic
    /// only when it was not already cached).
    pub fn prefetch(&mut self, id: RecordId) {
        if !self.lru.contains(&id) {
            self.stats.origin_mb += self.size_of(id);
            self.insert(id);
            self.stats.prefetches += 1;
        }
    }

    /// Replay a trace without prefetching.
    pub fn replay(&mut self, trace: &[RecordId]) {
        for &id in trace {
            self.request(id);
        }
    }

    /// Replay a trace with model-driven prefetching: after serving each
    /// request, prefetch the model's predicted successor.
    pub fn replay_with_prefetch(&mut self, trace: &[RecordId], model: &TransitionModel) {
        for &id in trace {
            self.request(id);
            if let Some(next) = model.predict(id) {
                self.prefetch(next);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A catalog of 20 curated 10 MB waveform products.
    fn catalog() -> VdcCatalog {
        let mut c = VdcCatalog::new();
        for i in 0..20 {
            let id = c
                .deposit(
                    &format!("w{i:02}.mseed"),
                    "waveform",
                    "chile",
                    Some(8.0),
                    10.0,
                    i,
                )
                .unwrap();
            c.curate(id).unwrap();
        }
        c
    }

    fn ids(n: u64) -> Vec<RecordId> {
        (0..n).map(RecordId).collect()
    }

    #[test]
    fn cold_cache_misses_then_hits() {
        let c = catalog();
        let mut cache = DeliveryCache::new(&c, 1000.0);
        let trace: Vec<RecordId> = ids(5);
        cache.replay(&trace);
        cache.replay(&trace);
        let s = cache.stats();
        assert_eq!(s.requests, 10);
        assert_eq!(s.hits, 5);
        assert_eq!(s.hit_rate(), 0.5);
        assert!((s.origin_mb - 50.0).abs() < 1e-9);
    }

    #[test]
    fn lru_evicts_coldest() {
        let c = catalog();
        // Room for exactly 3 records.
        let mut cache = DeliveryCache::new(&c, 30.0);
        cache.request(RecordId(0));
        cache.request(RecordId(1));
        cache.request(RecordId(2));
        cache.request(RecordId(0)); // warm 0
        cache.request(RecordId(3)); // evicts 1 (coldest)
        assert!(cache.cached().contains(&RecordId(0)));
        assert!(!cache.cached().contains(&RecordId(1)));
        assert!(cache.cached().contains(&RecordId(2)));
        assert!(cache.cached().contains(&RecordId(3)));
    }

    #[test]
    fn oversized_records_bypass_cache() {
        let mut c = catalog();
        let big = c
            .deposit("huge.mseed", "gf", "chile", None, 5000.0, 0)
            .unwrap();
        c.curate(big).unwrap();
        let mut cache = DeliveryCache::new(&c, 100.0);
        assert!(!cache.request(big));
        assert!(!cache.request(big), "never cached, always a miss");
        assert!(cache.cached().is_empty());
    }

    #[test]
    fn transition_model_learns_most_frequent_successor() {
        let mut m = TransitionModel::default();
        m.train(&[
            RecordId(0),
            RecordId(1),
            RecordId(0),
            RecordId(1),
            RecordId(0),
            RecordId(2),
        ]);
        assert_eq!(m.predict(RecordId(0)), Some(RecordId(1)));
        assert_eq!(m.predict(RecordId(9)), None);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn prefetching_beats_plain_lru_on_sequential_scans() {
        // The EEW-training access pattern: repeated sequential scans of
        // the same product list (epochs over a training set).
        let c = catalog();
        let epoch: Vec<RecordId> = ids(20);
        // Train the model on one historical epoch.
        let mut model = TransitionModel::default();
        model.train(&epoch);

        // Cache holds only 8 of 20 records: plain LRU gets zero hits on a
        // cyclic scan (the classic LRU worst case).
        let mut plain = DeliveryCache::new(&c, 80.0);
        for _ in 0..3 {
            plain.replay(&epoch);
        }
        let mut smart = DeliveryCache::new(&c, 80.0);
        for _ in 0..3 {
            smart.replay_with_prefetch(&epoch, &model);
        }
        assert!(
            smart.stats().hit_rate() > plain.stats().hit_rate(),
            "prefetch {} <= plain {}",
            smart.stats().hit_rate(),
            plain.stats().hit_rate()
        );
        assert!(smart.stats().prefetches > 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let c = catalog();
        DeliveryCache::new(&c, 0.0);
    }
}
