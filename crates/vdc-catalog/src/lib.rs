//! # vdc-catalog — Virtual Data Collaboratory data services
//!
//! The data-side of the paper's Fig. 7: once the FDW produces AI-ready
//! synthetic products, the VDC provides "data deposition, curation, and
//! tagging with metadata, allowing synthetic data products to be accessed
//! more easily and timely for training EEW models" (§6), plus the
//! "intelligent data delivery services" of Qin et al. 2022 that prefetch
//! data from user access traces.
//!
//! * [`record`] — deposited products with validated metadata and a
//!   curation lifecycle;
//! * [`catalog`] — deposition (incl. FDW archive-manifest ingest),
//!   curation, tagging with an inverted index, and conjunctive discovery
//!   queries;
//! * [`delivery`] — an LRU delivery cache with a trace-trained Markov
//!   prefetcher and hit-rate accounting.
//!
//! ```
//! use vdc_catalog::prelude::*;
//!
//! let mut cat = VdcCatalog::new();
//! let id = cat.deposit("run/w1.mseed", "waveform", "chile", Some(8.1), 10.0, 0).unwrap();
//! cat.curate(id).unwrap();
//! cat.tag(id, "eew-training").unwrap();
//! let hits = cat.query(&Query::all().tag("eew-training").mw(8.0, 9.0));
//! assert_eq!(hits.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod delivery;
pub mod persist;
pub mod record;

/// Glob import of the most-used types.
pub mod prelude {
    pub use crate::catalog::{Query, VdcCatalog};
    pub use crate::delivery::{DeliveryCache, DeliveryStats, TransitionModel};
    pub use crate::persist::{from_text, load, save, to_text};
    pub use crate::record::{CurationState, DataRecord, RecordId};
}
