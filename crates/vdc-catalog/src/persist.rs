//! Catalog persistence: a line-oriented text format so a VDC catalog
//! survives across sessions (data services must be durable — a registry
//! that forgets its deposits curates nothing).
//!
//! Format (tab-separated, one record per line after the header):
//! ```text
//! #vdc-catalog v1
//! <id>\t<state>\t<kind>\t<region>\t<mw|-\t><size_mb>\t<deposited_at>\t<tags,csv|->\t<path>
//! ```
//! The path is last because it is the only field that may be long; tags
//! and paths never contain tabs (enforced at deposit/tag time by
//! validation).

use std::collections::BTreeSet;

use crate::catalog::VdcCatalog;
use crate::record::{CurationState, DataRecord, RecordId};

const HEADER: &str = "#vdc-catalog v1";

/// Serialise a catalog to the persistence format.
pub fn to_text(catalog: &VdcCatalog) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    for id in 0..catalog.len() {
        let r = catalog.record(RecordId(id as u64)).expect("dense ids");
        let state = match r.state {
            CurationState::Raw => "raw",
            CurationState::Curated => "curated",
        };
        let mw = r.mw.map(|m| format!("{m}")).unwrap_or_else(|| "-".into());
        let tags = if r.tags.is_empty() {
            "-".to_string()
        } else {
            r.tags.iter().cloned().collect::<Vec<_>>().join(",")
        };
        out.push_str(&format!(
            "{}\t{state}\t{}\t{}\t{mw}\t{}\t{}\t{tags}\t{}\n",
            r.id.0, r.kind, r.region, r.size_mb, r.deposited_at, r.path
        ));
    }
    out
}

/// Parse the persistence format back into a catalog. Ids are reassigned
/// densely in file order (they are stable because [`to_text`] writes in
/// id order).
pub fn from_text(text: &str) -> Result<VdcCatalog, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h.trim() == HEADER => {}
        other => {
            return Err(format!(
                "not a vdc-catalog file (header {other:?}, expected '{HEADER}')"
            ))
        }
    }
    let mut catalog = VdcCatalog::new();
    for (lineno, line) in lines.enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 9 {
            return Err(format!(
                "line {}: expected 9 fields, got {}",
                lineno + 2,
                fields.len()
            ));
        }
        let err = |what: &str| format!("line {}: bad {what}", lineno + 2);
        let state = match fields[1] {
            "raw" => CurationState::Raw,
            "curated" => CurationState::Curated,
            _ => return Err(err("state")),
        };
        let mw = if fields[4] == "-" {
            None
        } else {
            Some(fields[4].parse::<f64>().map_err(|_| err("mw"))?)
        };
        let size_mb: f64 = fields[5].parse().map_err(|_| err("size"))?;
        let deposited_at: u64 = fields[6].parse().map_err(|_| err("timestamp"))?;
        let tags: BTreeSet<String> = if fields[7] == "-" {
            BTreeSet::new()
        } else {
            fields[7].split(',').map(str::to_string).collect()
        };
        let id = catalog
            .deposit(fields[8], fields[2], fields[3], mw, size_mb, deposited_at)
            .map_err(|e| format!("line {}: {e}", lineno + 2))?;
        for t in &tags {
            catalog
                .tag(id, t)
                .map_err(|e| format!("line {}: {e}", lineno + 2))?;
        }
        if state == CurationState::Curated {
            catalog
                .curate(id)
                .map_err(|e| format!("line {}: {e}", lineno + 2))?;
        }
    }
    Ok(catalog)
}

/// Write a catalog to disk.
pub fn save(catalog: &VdcCatalog, path: &std::path::Path) -> Result<(), String> {
    std::fs::write(path, to_text(catalog)).map_err(|e| e.to_string())
}

/// Load a catalog from disk.
pub fn load(path: &std::path::Path) -> Result<VdcCatalog, String> {
    from_text(&std::fs::read_to_string(path).map_err(|e| e.to_string())?)
}

/// Check two records carry the same metadata (used by tests and
/// consistency checks after reload).
pub fn records_equal(a: &DataRecord, b: &DataRecord) -> bool {
    a.path == b.path
        && a.kind == b.kind
        && a.region == b.region
        && a.mw == b.mw
        && (a.size_mb - b.size_mb).abs() < 1e-9
        && a.tags == b.tags
        && a.deposited_at == b.deposited_at
        && a.state == b.state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Query;

    fn seeded() -> VdcCatalog {
        let mut c = VdcCatalog::new();
        for i in 0..6 {
            let id = c
                .deposit(
                    &format!("run/w{i}.mseed"),
                    "waveform",
                    if i % 2 == 0 { "chile" } else { "cascadia" },
                    if i < 4 {
                        Some(7.5 + i as f64 * 0.3)
                    } else {
                        None
                    },
                    10.0 + i as f64,
                    1000 + i as u64,
                )
                .unwrap();
            if i != 5 {
                c.curate(id).unwrap();
            }
            if i % 2 == 0 {
                c.tag(id, "eew-training").unwrap();
                c.tag(id, "validated").unwrap();
            }
        }
        c
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let original = seeded();
        let text = to_text(&original);
        let loaded = from_text(&text).unwrap();
        assert_eq!(loaded.len(), original.len());
        for i in 0..original.len() {
            let a = original.record(RecordId(i as u64)).unwrap();
            let b = loaded.record(RecordId(i as u64)).unwrap();
            assert!(records_equal(a, b), "record {i} differs:\n{a:?}\n{b:?}");
        }
        // Queries behave identically, including the tag index.
        let q = Query::all().tag("eew-training");
        assert_eq!(loaded.query(&q).len(), original.query(&q).len());
        let q = Query::all().include_raw();
        assert_eq!(loaded.query(&q).len(), original.query(&q).len());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("vdc_catalog_persist");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.tsv");
        let original = seeded();
        save(&original, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), original.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_text("").is_err());
        assert!(from_text("#wrong header\n").is_err());
        assert!(from_text(&format!("{HEADER}\nnot\tenough\tfields\n")).is_err());
        assert!(from_text(&format!(
            "{HEADER}\n0\tcurated\tgf\tchile\tnotamw\t1\t0\t-\tp\n"
        ))
        .is_err());
        assert!(from_text(&format!("{HEADER}\n0\tfrozen\tgf\tchile\t-\t1\t0\t-\tp\n")).is_err());
        // Duplicate paths in the file are rejected by deposit.
        assert!(from_text(&format!(
            "{HEADER}\n0\traw\tgf\tchile\t-\t1\t0\t-\tp\n1\traw\tgf\tchile\t-\t1\t0\t-\tp\n"
        ))
        .is_err());
    }

    #[test]
    fn empty_catalog_roundtrips() {
        let c = VdcCatalog::new();
        let loaded = from_text(&to_text(&c)).unwrap();
        assert!(loaded.is_empty());
    }
}
