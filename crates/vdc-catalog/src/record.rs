//! Data records: the metadata the VDC attaches to deposited products so
//! they can be "accessed more easily and timely for training EEW models"
//! (paper §6, Fig. 7).

use std::collections::BTreeSet;

/// Identifier of a deposited record within one catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId(pub u64);

/// Curation state of a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CurationState {
    /// Deposited but not yet validated by a curator.
    Raw,
    /// Metadata validated; discoverable by default.
    Curated,
}

/// A deposited data product with its metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct DataRecord {
    /// Catalog-assigned id.
    pub id: RecordId,
    /// Storage path (e.g. an archive-manifest path).
    pub path: String,
    /// Product kind (`rupture`, `gf`, `waveform`, `npy`, …).
    pub kind: String,
    /// Geographic region label (`chile`, `cascadia`, …).
    pub region: String,
    /// Moment magnitude, for per-scenario products.
    pub mw: Option<f64>,
    /// Size in megabytes.
    pub size_mb: f64,
    /// Free-form metadata tags.
    pub tags: BTreeSet<String>,
    /// Deposition timestamp (seconds; caller-defined epoch).
    pub deposited_at: u64,
    /// Curation state.
    pub state: CurationState,
}

impl DataRecord {
    /// Validate the metadata a curator checks before marking a record
    /// curated: non-empty path/kind/region, positive size, magnitude in
    /// the physical range when present.
    pub fn validate(&self) -> Result<(), String> {
        if self.path.trim().is_empty() {
            return Err("record path is empty".into());
        }
        if self.kind.trim().is_empty() {
            return Err(format!("record '{}' has no kind", self.path));
        }
        if self.region.trim().is_empty() {
            return Err(format!("record '{}' has no region", self.path));
        }
        if self.size_mb.is_nan() || self.size_mb <= 0.0 {
            return Err(format!("record '{}' has non-positive size", self.path));
        }
        if let Some(mw) = self.mw {
            if !(4.0..=10.0).contains(&mw) {
                return Err(format!(
                    "record '{}' has unphysical magnitude {mw}",
                    self.path
                ));
            }
        }
        Ok(())
    }

    /// True once curated (discoverable in default queries).
    pub fn is_curated(&self) -> bool {
        self.state == CurationState::Curated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> DataRecord {
        DataRecord {
            id: RecordId(1),
            path: "run/waveforms/scenario_000001.mseed".into(),
            kind: "waveform".into(),
            region: "chile".into(),
            mw: Some(8.2),
            size_mb: 10.0,
            tags: BTreeSet::new(),
            deposited_at: 0,
            state: CurationState::Raw,
        }
    }

    #[test]
    fn valid_record_passes() {
        assert!(record().validate().is_ok());
        assert!(!record().is_curated());
    }

    #[test]
    fn validation_catches_bad_metadata() {
        let mut r = record();
        r.path = "  ".into();
        assert!(r.validate().is_err());
        let mut r = record();
        r.kind.clear();
        assert!(r.validate().is_err());
        let mut r = record();
        r.region.clear();
        assert!(r.validate().is_err());
        let mut r = record();
        r.size_mb = 0.0;
        assert!(r.validate().is_err());
        let mut r = record();
        r.mw = Some(12.0);
        assert!(r.validate().is_err());
        let mut r = record();
        r.mw = None;
        assert!(r.validate().is_ok());
    }
}
