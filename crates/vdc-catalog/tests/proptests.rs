//! Property-based tests of the VDC catalog and delivery services.

use proptest::prelude::*;

use vdc_catalog::prelude::*;

/// Strategy: a list of (kind, region, mw, size, tags) deposits.
/// (kind, region, mw, size_mb, tags) for one deposit.
type Deposit = (String, String, Option<f64>, f64, Vec<String>);

fn arb_deposits() -> impl Strategy<Value = Vec<Deposit>> {
    proptest::collection::vec(
        (
            prop_oneof![
                Just("waveform".to_string()),
                Just("rupture".to_string()),
                Just("gf".to_string())
            ],
            prop_oneof![Just("chile".to_string()), Just("cascadia".to_string())],
            proptest::option::of(6.0..9.5f64),
            0.1..2000.0f64,
            proptest::collection::vec("[a-z]{1,6}", 0..4),
        ),
        1..40,
    )
}

fn build(deposits: &[Deposit]) -> (VdcCatalog, Vec<RecordId>) {
    let mut cat = VdcCatalog::new();
    let mut ids = Vec::new();
    for (i, (kind, region, mw, size, tags)) in deposits.iter().enumerate() {
        let id = cat
            .deposit(&format!("p{i:04}"), kind, region, *mw, *size, i as u64)
            .unwrap();
        cat.curate(id).unwrap();
        for t in tags {
            cat.tag(id, t).unwrap();
        }
        ids.push(id);
    }
    (cat, ids)
}

proptest! {
    #[test]
    fn query_results_always_satisfy_filters(deposits in arb_deposits()) {
        let (cat, _) = build(&deposits);
        let q = Query::all().kind("waveform").region("chile").mw(7.0, 9.0);
        for r in cat.query(&q) {
            prop_assert_eq!(&r.kind, "waveform");
            prop_assert_eq!(&r.region, "chile");
            let mw = r.mw.unwrap();
            prop_assert!((7.0..=9.0).contains(&mw));
            prop_assert!(r.is_curated());
        }
    }

    #[test]
    fn tag_index_agrees_with_linear_scan(deposits in arb_deposits()) {
        let (cat, ids) = build(&deposits);
        // For each tag used anywhere, the indexed query must equal a
        // brute-force filter.
        let mut all_tags: Vec<String> = deposits
            .iter()
            .flat_map(|(_, _, _, _, t)| t.iter().cloned())
            .collect();
        all_tags.sort();
        all_tags.dedup();
        for tag in all_tags {
            let indexed: Vec<RecordId> =
                cat.query(&Query::all().tag(&tag)).iter().map(|r| r.id).collect();
            let brute: Vec<RecordId> = ids
                .iter()
                .filter(|id| cat.record(**id).unwrap().tags.contains(&tag))
                .copied()
                .collect();
            prop_assert_eq!(indexed, brute, "tag '{}'", tag);
        }
    }

    #[test]
    fn query_size_is_sum_of_result_sizes(deposits in arb_deposits()) {
        let (cat, _) = build(&deposits);
        let q = Query::all();
        let total: f64 = cat.query(&q).iter().map(|r| r.size_mb).sum();
        prop_assert!((cat.query_size_mb(&q) - total).abs() < 1e-9);
    }

    #[test]
    fn delivery_accounting_invariants(
        sizes in proptest::collection::vec(1.0..50.0f64, 1..20),
        trace_idx in proptest::collection::vec(0usize..20, 1..100),
        capacity in 20.0..500.0f64,
    ) {
        let mut cat = VdcCatalog::new();
        let mut ids = Vec::new();
        for (i, s) in sizes.iter().enumerate() {
            let id = cat
                .deposit(&format!("d{i}"), "waveform", "chile", None, *s, 0)
                .unwrap();
            cat.curate(id).unwrap();
            ids.push(id);
        }
        let trace: Vec<RecordId> =
            trace_idx.iter().map(|i| ids[i % ids.len()]).collect();
        let mut cache = DeliveryCache::new(&cat, capacity);
        cache.replay(&trace);
        let s = cache.stats();
        prop_assert_eq!(s.requests, trace.len());
        prop_assert!(s.hits <= s.requests);
        prop_assert!((0.0..=1.0).contains(&s.hit_rate()));
        // Origin traffic equals the sum of missed record sizes.
        let miss_mb: f64 = s.origin_mb;
        let max_possible: f64 = trace
            .iter()
            .map(|id| cat.record(*id).unwrap().size_mb)
            .sum();
        prop_assert!(miss_mb <= max_possible + 1e-9);
        // Cached contents never exceed capacity.
        let cached_mb: f64 = cache
            .cached()
            .iter()
            .map(|id| cat.record(*id).unwrap().size_mb)
            .sum();
        prop_assert!(cached_mb <= capacity + 1e-9);
    }

    #[test]
    fn prefetch_never_hurts_hit_rate_on_repeated_traces(
        n in 2usize..15,
        capacity_frac in 0.2..1.5f64,
    ) {
        let mut cat = VdcCatalog::new();
        let mut ids = Vec::new();
        for i in 0..n {
            let id = cat
                .deposit(&format!("d{i}"), "waveform", "chile", None, 10.0, 0)
                .unwrap();
            cat.curate(id).unwrap();
            ids.push(id);
        }
        let capacity = (n as f64 * 10.0 * capacity_frac).max(10.0);
        let mut model = TransitionModel::default();
        model.train(&ids);
        let mut plain = DeliveryCache::new(&cat, capacity);
        let mut smart = DeliveryCache::new(&cat, capacity);
        for _ in 0..4 {
            plain.replay(&ids);
            smart.replay_with_prefetch(&ids, &model);
        }
        prop_assert!(
            smart.stats().hit_rate() >= plain.stats().hit_rate() - 1e-9,
            "prefetch {} < plain {}",
            smart.stats().hit_rate(),
            plain.stats().hit_rate()
        );
    }
}
