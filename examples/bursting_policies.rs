//! Bursting policies: record a real (simulated-OSG) FDW batch, export it
//! to the two-CSV format of the paper's bursting simulator, then compare
//! the three OSG-tailored policies against the control.
//!
//! Run with: `cargo run --release --example bursting_policies`

use fakequakes::stations::ChileanInput;
use fdw_core::prelude::*;
use fdw_suite::vdc_burst::prelude::*;

fn main() {
    // Record one 4,000-waveform full-input batch on the simulated pool.
    let cfg = FdwConfig {
        n_waveforms: 4_000,
        station_input: StationInput::Chilean(ChileanInput::Full),
        ..Default::default()
    };
    println!(
        "recording a {}-job FDW batch on the simulated OSPool...",
        cfg.total_jobs()
    );
    let out = run_fdw(&cfg, osg_cluster_config(), 5).expect("recording run");

    // The CSV pair is the simulator's actual input format (§3.1).
    let batch_csv = out.report.log.batch_csv();
    let jobs_csv = out.report.log.jobs_csv(out.report.name_of());
    let input = BatchInput::from_csv(&batch_csv, &jobs_csv).expect("CSV parse");
    println!(
        "batch record: {} jobs over {:.2} h\n",
        input.jobs.len(),
        input.batch.runtime_secs() as f64 / 3600.0
    );

    let scenarios: Vec<(&str, BurstPolicies)> = vec![
        ("control (no bursting)", BurstPolicies::control()),
        (
            "policy 1: throughput < 34 JPM, 5 s probe",
            BurstPolicies {
                throughput: Some(ThroughputPolicy {
                    probe_secs: 5,
                    threshold_jpm: 34.0,
                }),
                ..Default::default()
            },
        ),
        (
            "policy 2: queue > 90 min",
            BurstPolicies {
                queue_time: Some(QueueTimePolicy {
                    max_queue_secs: 90 * 60,
                    check_secs: 60,
                }),
                ..Default::default()
            },
        ),
        (
            "policy 3: submission gap > 20 min",
            BurstPolicies {
                submission_gap: Some(SubmissionGapPolicy {
                    max_gap_secs: 20 * 60,
                    check_secs: 60,
                }),
                ..Default::default()
            },
        ),
        (
            "all three, <=30% bursted",
            BurstPolicies {
                throughput: Some(ThroughputPolicy {
                    probe_secs: 5,
                    threshold_jpm: 34.0,
                }),
                queue_time: Some(QueueTimePolicy {
                    max_queue_secs: 90 * 60,
                    check_secs: 60,
                }),
                submission_gap: Some(SubmissionGapPolicy {
                    max_gap_secs: 20 * 60,
                    check_secs: 60,
                }),
                max_burst_fraction: Some(0.30),
            },
        ),
    ];

    println!(
        "{:<42} {:>9} {:>9} {:>9} {:>9}",
        "policy", "AIT(jpm)", "runtime", "bursted", "cost($)"
    );
    for (label, policies) in scenarios {
        let r = simulate(&input, &policies).expect("simulation");
        println!(
            "{:<42} {:>9.1} {:>8.2}h {:>9} {:>9.2}",
            label,
            r.ait_jpm,
            r.runtime_secs as f64 / 3600.0,
            r.bursted_jobs,
            r.cost_usd
        );
    }

    // The per-second CSV artifact the paper's simulator emits.
    let control = simulate(&input, &BurstPolicies::control()).unwrap();
    let csv = throughput_csv(&control);
    let path = std::env::temp_dir().join("fdw_control_throughput.csv");
    std::fs::write(&path, &csv).expect("write CSV");
    println!(
        "\nwrote per-second instant-throughput CSV ({} rows) to {}",
        control.instant_series.len(),
        path.display()
    );
}
