//! Chile catalog: generate a small synthetic earthquake catalog for the
//! Chilean subduction zone with the real science path and write the
//! products to disk in the FDW's artifact formats (`.npy` distance
//! matrices, `.mseed` GF bundle and waveforms, archive manifest) — the
//! data a downstream EEW-training pipeline would consume.
//!
//! Run with: `cargo run --release --example chile_catalog`

use fakequakes::artifacts;
use fakequakes::prelude::*;
use fdw_core::archive::ArchiveManifest;
use fdw_core::config::{FdwConfig, StationInput};

fn main() {
    let out_dir = std::env::temp_dir().join("fdw_chile_catalog");
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    // A realistic-but-quick setup: 24x10 mesh, 12 stations, 8 scenarios.
    let fault = FaultModel::chilean_subduction(24, 10).expect("fault");
    let network = StationNetwork::chilean(12, 11).expect("network");

    println!("computing recyclable artifacts (the A/B-phase bootstrap)...");
    let matrices = DistanceMatrices::compute(&fault, &network);
    let gfs = GfLibrary::compute(&fault, &network).expect("GF library");

    // Persist them exactly as the FDW ships them through the Stash cache.
    let (sub_npy, sta_npy) = artifacts::distance_matrices_to_npy(&matrices);
    std::fs::write(out_dir.join("subfault_distances.npy"), &sub_npy).unwrap();
    std::fs::write(out_dir.join("station_distances.npy"), &sta_npy).unwrap();
    let gf_mseed = artifacts::gf_library_to_mseed(&gfs);
    gf_mseed
        .write(&out_dir.join("gf_chile.mseed"))
        .expect("write GF mseed");
    println!(
        "  wrote {} + {} bytes of .npy, {} bytes of .mseed",
        sub_npy.len(),
        sta_npy.len(),
        gf_mseed.nbytes()
    );

    println!("generating 8 rupture scenarios + waveforms (recycling artifacts)...");
    let catalog = generate_catalog(
        &fault,
        &network,
        Some(matrices),
        Some(gfs),
        RuptureConfig {
            mw_range: (7.8, 9.0),
            ..Default::default()
        },
        WaveformConfig {
            duration_s: 512.0,
            ..Default::default()
        },
        8,
        42,
    )
    .expect("catalog");

    // One .mseed per scenario, all stations.
    for (scenario, wfs) in catalog.scenarios.iter().zip(&catalog.waveforms) {
        let mut file = MseedFile::new();
        for w in wfs {
            artifacts::waveform_to_mseed(&mut file, w);
        }
        let path = out_dir.join(format!("scenario_{:03}.mseed", scenario.id));
        file.write(&path).expect("write waveforms");
    }

    println!(
        "\n{:>4} {:>6} {:>8} {:>10} {:>10} {:>9}",
        "id", "Mw", "patches", "peak slip", "max PGD", "duration"
    );
    for s in catalog.summaries() {
        println!(
            "{:>4} {:>6.2} {:>8} {:>8.1} m {:>8.3} m {:>7.0} s",
            s.id, s.mw, s.active_subfaults, s.peak_slip_m, s.max_pgd_m, s.duration_s
        );
    }

    // Archive manifest, as the FDW congregates and labels outputs.
    let manifest = ArchiveManifest::for_run(
        "chile_demo",
        &FdwConfig {
            n_waveforms: 8,
            station_input: StationInput::Count(12),
            ..Default::default()
        },
    );
    std::fs::write(out_dir.join("MANIFEST.txt"), manifest.to_manifest_file()).unwrap();
    println!(
        "\nwrote {} products ({:.1} MB manifest total) under {}",
        manifest.len(),
        manifest.total_mb(),
        out_dir.display()
    );
}
