//! Concurrent DAGMans: the paper's §4.2 question at example scale —
//! should you split a workload across several simultaneously running
//! DAGMan workflows on a shared pool? (Answer, per the paper and
//! reproduced here: no.)
//!
//! Run with: `cargo run --release --example concurrent_dagmans`

use fakequakes::stations::ChileanInput;
use fdw_core::prelude::*;
use fdw_suite::dagman::monitor::mean_sd;

const TOTAL: u64 = 8_000;

fn main() {
    let base = FdwConfig {
        station_input: StationInput::Chilean(ChileanInput::Full),
        ..Default::default()
    };
    println!("splitting {TOTAL} full-input waveforms across concurrent DAGMans\n");
    println!(
        "{:>8} {:>16} {:>20} {:>22}",
        "DAGMans", "jobs/DAGMan", "runtime h (mean±sd)", "per-DAG JPM (mean±sd)"
    );
    for n in [1usize, 2, 4, 8] {
        let out =
            run_concurrent_fdw(&base, n, TOTAL, osg_cluster_config(), 3).expect("run completes");
        let rt = mean_sd(&out.runtimes_hours());
        let thpts: Vec<f64> = out
            .throughput_inputs()
            .iter()
            .map(|(j, r)| *j as f64 / r)
            .collect();
        let tp = mean_sd(&thpts);
        println!(
            "{:>8} {:>16} {:>12.1} ± {:<5.1} {:>14.2} ± {:<5.2}",
            n, out.stats[0].completed, rt.mean, rt.sd, tp.mean, tp.sd
        );
    }
    println!("\nPartitioning work into concurrent DAGMans does not shrink runtime —");
    println!("each DAGMan's share of the pool shrinks instead (fair share), so");
    println!("per-DAGMan throughput collapses while wall time stays roughly flat.");
}
