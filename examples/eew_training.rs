//! EEW training: the paper's Fig. 7 data flow end to end — generate an
//! FDW synthetic catalog (the "AI-ready data products"), fit a
//! PGD-scaling magnitude model on it, and evaluate how well the model
//! recovers the magnitudes of held-out synthetic events.
//!
//! This is why the workflow exists: large earthquakes are too rare
//! (~one Mw 8+ per year) to train early-warning models on real data.
//!
//! Run with: `cargo run --release --example eew_training`

use fdw_suite::eew::prelude::*;
use fdw_suite::fakequakes::prelude::*;

fn main() {
    // 1. An FDW-style synthetic catalog: 48 large Chilean scenarios
    //    recorded at 40 GNSS stations.
    println!("generating a 48-event synthetic training catalog...");
    let fault = FaultModel::chilean_subduction(28, 10).expect("fault");
    let network = StationNetwork::chilean(40, 3).expect("network");
    let catalog = generate_catalog(
        &fault,
        &network,
        None,
        None,
        RuptureConfig {
            mw_range: (7.5, 9.0),
            ..Default::default()
        },
        WaveformConfig {
            duration_s: 512.0,
            ..Default::default()
        },
        48,
        2024,
    )
    .expect("catalog");

    // 2. Extract PGD observations and split train/test by event.
    let obs = fdw_suite::eew::dataset::observations_from_catalog(&catalog, &fault, &network, 0.01);
    println!(
        "extracted {} PGD observations above the 1 cm noise floor",
        obs.len()
    );
    let (train, test) = fdw_suite::eew::dataset::split(&obs, 4);

    // 3. Fit the scaling law on the training observations.
    let model = PgdScalingModel::fit(&train).expect("fit");
    println!(
        "fitted scaling:  log10(PGD_cm) = {:.3} + {:.3}·Mw + {:.3}·Mw·log10(R)",
        model.a, model.b, model.c
    );
    let reference = PgdScalingModel::MELGAR_2015;
    println!(
        "Melgar et al. 2015 reference:    {:.3} / {:.3} / {:.3}",
        reference.a, reference.b, reference.c
    );

    // 4. Held-out per-observation inversion quality.
    let estimates: Vec<(f64, f64)> = test
        .iter()
        .filter_map(|o| {
            model
                .estimate_mw_single(o.pgd_m, o.distance_km)
                .map(|e| (e, o.mw))
        })
        .collect();
    let errs = fdw_suite::eew::dataset::score(&estimates);
    println!(
        "\nheld-out single-station inversion: MAE {:.2} Mw units, bias {:+.2} (n = {})",
        errs.mae, errs.bias, errs.n
    );

    // 5. The EEW scenario: network median magnitude for fresh events the
    //    model never saw.
    println!("\nnetwork magnitude estimates for 6 fresh events:");
    println!(
        "{:>8} {:>10} {:>10} {:>8}",
        "event", "true Mw", "est Mw", "error"
    );
    let fresh = generate_catalog(
        &fault,
        &network,
        None,
        None,
        RuptureConfig {
            mw_range: (7.6, 8.9),
            ..Default::default()
        },
        WaveformConfig {
            duration_s: 512.0,
            ..Default::default()
        },
        6,
        9_999,
    )
    .expect("fresh catalog");
    let mut event_estimates = Vec::new();
    for (scenario, waveforms) in fresh.scenarios.iter().zip(&fresh.waveforms) {
        let hypo = fault.subfault(scenario.hypocenter_idx).center;
        let readings: Vec<(f64, f64)> = waveforms
            .iter()
            .filter(|w| w.pgd_m() > 0.01)
            .map(|w| {
                let st = network
                    .stations()
                    .iter()
                    .find(|s| s.code == w.station_code)
                    .unwrap();
                (w.pgd_m(), st.location.distance_3d_km(&hypo).max(1.0))
            })
            .collect();
        if let Some(est) = model.estimate_mw(&readings) {
            println!(
                "{:>8} {:>10.2} {:>10.2} {:>+8.2}",
                scenario.id,
                scenario.mw,
                est,
                est - scenario.mw
            );
            event_estimates.push((est, scenario.mw));
        }
    }
    let ev = fdw_suite::eew::dataset::score(&event_estimates);
    println!(
        "\nevent-level network MAE: {:.2} Mw units over {} events",
        ev.mae, ev.n
    );
    println!("(Lin et al. 2021 report deep models on FakeQuakes data resolving");
    println!(" large-event magnitudes to a few tenths of a unit — same regime.)");
}
