//! Quickstart: simulate a small FDW run end to end.
//!
//! Builds the three-phase DAG from a config file, runs it on the
//! simulated OSPool, prints the statistics the paper's monitoring
//! extracts from HTCondor logs, and then computes one scenario's actual
//! science products with the live path.
//!
//! Run with: `cargo run --release --example quickstart`

use fdw_core::prelude::*;
use fdw_suite::dagman::monitor::DagmanStats;

fn main() {
    // 1. The user-facing configuration file (the one thing the paper says
    //    a user edits).
    let config_text = "\
# my_fdw_run.cfg — 256 waveforms over the small Chilean input
station_input = small
n_waveforms = 256
mw_min = 7.6
mw_max = 8.8
seed = 7
";
    let cfg = FdwConfig::parse(config_text).expect("config parses");
    println!("== FDW configuration ==\n{}", cfg.to_config_file());

    // 2. Inspect the generated DAG (HTCondor DAGMan dialect).
    let dag = build_fdw_dag(&cfg).expect("DAG builds");
    println!(
        "DAG: {} nodes ({} rupture + {} waveform + GF + matrix)\n",
        dag.len(),
        cfg.n_rupture_jobs(),
        cfg.n_waveform_jobs()
    );

    // 3. Run it on the simulated OSPool.
    let out = run_fdw(&cfg, osg_cluster_config(), cfg.seed).expect("run completes");
    let s = &out.stats[0];
    println!("== simulated OSG run ==");
    println!("jobs completed:   {}", s.completed);
    println!("total runtime:    {:.2} h", s.runtime_hours());
    println!("avg throughput:   {:.1} jobs/min", s.throughput_jpm());
    println!(
        "mean job wait:    {:.1} min",
        DagmanStats::mean_mins(&s.wait_secs).unwrap_or(0.0)
    );
    println!("evictions:        {}", out.report.evictions);
    println!(
        "stash cache hits: {:.1}%",
        out.report.cache_hit_rate * 100.0
    );

    // 4. The live science path: what each job actually computes.
    let live_cfg = FdwConfig {
        n_waveforms: 2,
        fault_nx: 16,
        fault_nd: 8,
        ..cfg
    };
    let catalog = fdw_core::live::live_full_run(&live_cfg, 256.0).expect("live run");
    println!("\n== live science products (2 scenarios) ==");
    for summary in catalog.summaries() {
        println!(
            "scenario {}: Mw {:.2}, peak slip {:.1} m, max PGD {:.3} m",
            summary.id, summary.mw, summary.peak_slip_m, summary.max_pgd_m
        );
    }
}
