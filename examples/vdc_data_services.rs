//! VDC data services: the paper's Fig. 7 right-hand side — deposit an FDW
//! run's products into the Virtual Data Collaboratory catalog, curate and
//! tag them, discover them with metadata queries, and serve an
//! EEW-training access pattern through the intelligent delivery cache.
//!
//! Run with: `cargo run --release --example vdc_data_services`

use fdw_suite::fdw_core::archive::ArchiveManifest;
use fdw_suite::fdw_core::config::FdwConfig;
use fdw_suite::vdc_catalog::prelude::*;

fn main() {
    // 1. An FDW run's archive manifest (64 scenarios).
    let cfg = FdwConfig {
        n_waveforms: 64,
        ..Default::default()
    };
    let manifest = ArchiveManifest::for_run("chile_2026_run1", &cfg);
    println!(
        "FDW run produced {} products ({:.0} MB)",
        manifest.len(),
        manifest.total_mb()
    );

    // 2. Deposit into the VDC and curate with metadata enrichment.
    let mut catalog = VdcCatalog::new();
    let ids = catalog
        .deposit_manifest(&manifest, "chile", 1_700_000_000)
        .expect("deposition");
    for (i, id) in ids.iter().enumerate() {
        catalog.curate(*id).expect("curation");
        let rec = catalog.record(*id).unwrap().clone();
        if rec.kind == "waveform" {
            // Curators attach the scenario magnitude and training tags.
            catalog
                .set_magnitude(*id, 7.5 + (i % 15) as f64 * 0.1)
                .unwrap();
            catalog.tag(*id, "eew-training").unwrap();
            if i % 3 == 0 {
                catalog.tag(*id, "validated").unwrap();
            }
        }
    }
    println!("deposited + curated {} records", catalog.len());

    // 3. Discovery: what an EEW researcher actually asks for.
    let q = Query::all()
        .kind("waveform")
        .region("chile")
        .tag("eew-training")
        .mw(8.0, 9.0);
    let hits = catalog.query(&q);
    println!(
        "\nquery [waveform, chile, #eew-training, Mw 8.0-9.0]: {} records, {:.0} MB",
        hits.len(),
        catalog.query_size_mb(&q)
    );
    for r in hits.iter().take(3) {
        println!("  {}  Mw {:.1}  tags {:?}", r.path, r.mw.unwrap(), r.tags);
    }
    println!("  ...");

    // 4. Delivery: three training epochs over the query results, with and
    //    without the trace-trained prefetcher, on a cache that holds ~40%
    //    of the working set.
    let trace: Vec<RecordId> = hits.iter().map(|r| r.id).collect();
    let working_set = catalog.query_size_mb(&q);
    let cache_mb = (working_set * 0.4).max(20.0);

    let mut plain = DeliveryCache::new(&catalog, cache_mb);
    for _ in 0..3 {
        plain.replay(&trace);
    }
    let mut model = TransitionModel::default();
    model.train(&trace); // learned from the first epoch's trace
    let mut smart = DeliveryCache::new(&catalog, cache_mb);
    for _ in 0..3 {
        smart.replay_with_prefetch(&trace, &model);
    }
    println!(
        "\ndelivery over a {:.0} MB cache ({:.0}% of working set):",
        cache_mb,
        cache_mb / working_set * 100.0
    );
    println!(
        "  plain LRU:        hit rate {:>5.1}%, {:>6.0} MB from origin",
        plain.stats().hit_rate() * 100.0,
        plain.stats().origin_mb
    );
    println!(
        "  with prefetching: hit rate {:>5.1}%, {:>6.0} MB from origin, {} prefetches",
        smart.stats().hit_rate() * 100.0,
        smart.stats().origin_mb,
        smart.stats().prefetches
    );
    println!("\n(the paper: 'Large datasets will be able to be efficiently distributed");
    println!(" via optimized caching systems and even prefetched for users via AI-based");
    println!(" intelligent data delivery services' — Qin et al. 2022)");
}
