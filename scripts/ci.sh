#!/usr/bin/env bash
# Full local CI gate: build, test, lint, format. Run from the repo root;
# fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> fdwlint v2 (token + call-graph determinism lints vs ratchet baseline)"
# The graph pass (item parse, call resolution, taint over ~all workspace
# sources) runs on every commit — hold it to a 30s wall-time budget so it
# can never become the slow stage. The release binary is already built.
lint_t0=$(date +%s)
cargo run -q -p fdwlint --release
cargo run -q -p fdwlint --release -- --json > target/fdwlint.report.json
lint_wall=$(( $(date +%s) - lint_t0 ))
if [ "$lint_wall" -ge 30 ]; then
  echo "fdwlint stage took ${lint_wall}s — over the 30s budget; profile the graph pass"
  exit 1
fi
echo "  fdwlint wall time: ${lint_wall}s (budget 30s)"
cargo run -q -p fdw-bench --release --bin validate_trace -- \
  target/fdwlint.report.json

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> kernel bench smoke (compile + run benches in test mode)"
cargo bench -q -p fdw-bench --bench kernels -- --test

echo "==> perf snapshot smoke (FDW_SMOKE, reduced scale)"
FDW_SMOKE=1 FDW_BENCH_OUT=target/BENCH_kernels.smoke.json \
  cargo run -q -p fdw-bench --release --bin bench_snapshot >/dev/null

echo "==> kernel perf ratchet (fresh smoke vs committed BENCH_kernels.json)"
# The laned/blocked kernels must not quietly lose their speedups: the
# fresh FDW_SMOKE speedup of each headline kernel must stay above the
# committed figure minus tolerance — half the committed speedup, capped
# per kernel (absolute speedups grow with mesh size, so the full-scale
# committed number is an over-ask at smoke scale) and floored at 1.0x so
# "optimised" can never regress to "slower than the reference".
# symmetric_eigen_topk is deliberately absent: its ~1.2-1.7x win over the
# full eigensolve is inside measurement noise at smoke scale.
kernel_speedup() { # <file> <kernel> -> speedup of the first (primary-mesh) row
  awk -v k="$2" 'BEGIN { RS = "}" }
    index($0, "\"name\":\"" k "\"") && match($0, /"speedup":[0-9.]+/) {
      print substr($0, RSTART + 10, RLENGTH - 10); exit }' "$1"
}
for spec in assemble_covariance:3.0 matmul:1.8 cholesky:1.1 \
            distance_matrices:1.3 symmetric_eigen:5.0 \
            rupture_draw_end_to_end:5.0 gf_point_source_big_network:1.5; do
  k=${spec%%:*} cap=${spec##*:}
  committed=$(kernel_speedup BENCH_kernels.json "$k")
  fresh=$(kernel_speedup target/BENCH_kernels.smoke.json "$k")
  if [ -z "$committed" ] || [ -z "$fresh" ]; then
    echo "kernel ratchet: missing '$k' row (committed='$committed' fresh='$fresh')"
    exit 1
  fi
  awk -v c="$committed" -v f="$fresh" -v cap="$cap" -v k="$k" 'BEGIN {
    thr = c / 2; if (thr > cap) thr = cap; if (thr < 1.0) thr = 1.0
    if (f < thr) {
      printf "kernel ratchet: %s %.2fx below threshold %.2fx (committed %.2fx)\n", \
        k, f, thr, c
      exit 1
    }
    printf "  %-28s %8.2fx  (>= %.2fx, committed %.2fx)\n", k, f, thr, c
  }' || exit 1
done

echo "==> telemetry smoke (FDW_SMOKE, FDW_OBS_DIR)"
OBS_DIR=target/obs-smoke
rm -rf "$OBS_DIR"
FDW_SMOKE=1 FDW_OBS_DIR="$OBS_DIR" \
  cargo run -q -p fdw-bench --release --bin table_headline >/dev/null
FDW_SMOKE=1 FDW_OBS_DIR="$OBS_DIR" \
  cargo run -q -p fdw-bench --release --bin chaos_matrix >/dev/null
cargo run -q -p fdw-bench --release --bin validate_trace -- --min-cats 4 \
  "$OBS_DIR"/chaos_matrix.trace.json \
  "$OBS_DIR"/chaos_matrix.metrics.json \
  "$OBS_DIR"/chaos_matrix.dag.metrics \
  "$OBS_DIR"/table_headline.metrics.json

echo "==> defense ablation smoke (defenses-on badput must not exceed defenses-off)"
FDW_SMOKE=1 FDW_BENCH_OUT=target/BENCH_defenses.smoke.json \
  cargo run -q -p fdw-bench --release --bin defense_ablation >/dev/null

echo "==> failover ablation smoke (failover-on must not lose time-to-done or badput)"
FDW_SMOKE=1 FDW_BENCH_OUT=target/BENCH_failover.smoke.json \
  cargo run -q -p fdw-bench --release --bin failover_ablation >/dev/null

echo "==> service overload smoke (defended goodput >= undefended, science store-invariant)"
# The binary exits 1 itself on any goodput loss, digest drift, dropped
# request or determinism break; re-check the two headline gates from the
# JSON so a silent gate regression in the binary can't pass CI.
FDW_SMOKE=1 FDW_BENCH_OUT=target/BENCH_service.smoke.json \
  cargo run -q -p fdw-bench --release --bin overload_ablation >/dev/null
grep -q '"science_store_invariant":false' target/BENCH_service.smoke.json && {
  echo "service smoke: science digest drifted across store arms"; exit 1; }
grep -q '"deterministic":false' target/BENCH_service.smoke.json && {
  echo "service smoke: service decisions vary across threads/shards"; exit 1; }
if grep -o '"unaccounted":[0-9]*' target/BENCH_service.smoke.json | grep -qv ':0$'; then
  echo "service smoke: requests dropped without a terminal disposition"; exit 1
fi

echo "==> des-scaling smoke (sharded engine: identical digests, no slowdown)"
# The binary exits 1 itself on any digest mismatch or a sharded arm
# slower than the monolithic baseline; re-check the 2-thread arm from
# the JSON so a silent gate regression in the binary can't pass CI.
FDW_SMOKE=1 FDW_BENCH_OUT=target/BENCH_des.smoke.json \
  cargo run -q -p fdw-bench --release --bin des_scaling >/dev/null
grep -q '"digest_matches":false' target/BENCH_des.smoke.json && {
  echo "des-scaling smoke: digest mismatch in report"; exit 1; }
t2_speedup=$(grep -o '"label":"sharded-t2"[^}]*' target/BENCH_des.smoke.json \
  | grep -o '"speedup_vs_monolithic":[0-9.]*' | cut -d: -f2)
awk -v s="$t2_speedup" 'BEGIN { exit !(s >= 1.0) }' || {
  echo "des-scaling smoke: 2-thread speedup $t2_speedup < 1.0x vs monolithic"; exit 1; }

echo "CI green."
