#!/usr/bin/env bash
# Full local CI gate: build, test, lint, format. Run from the repo root;
# fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI green."
