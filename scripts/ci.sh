#!/usr/bin/env bash
# Full local CI gate: build, test, lint, format. Run from the repo root;
# fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> fdwlint (determinism lints vs ratchet baseline)"
cargo run -q -p fdwlint
cargo run -q -p fdwlint -- --json > target/fdwlint.report.json
cargo run -q -p fdw-bench --release --bin validate_trace -- \
  target/fdwlint.report.json

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> kernel bench smoke (compile + run benches in test mode)"
cargo bench -q -p fdw-bench --bench kernels -- --test

echo "==> perf snapshot smoke (FDW_SMOKE, reduced scale)"
FDW_SMOKE=1 FDW_BENCH_OUT=target/BENCH_kernels.smoke.json \
  cargo run -q -p fdw-bench --release --bin bench_snapshot >/dev/null

echo "==> telemetry smoke (FDW_SMOKE, FDW_OBS_DIR)"
OBS_DIR=target/obs-smoke
rm -rf "$OBS_DIR"
FDW_SMOKE=1 FDW_OBS_DIR="$OBS_DIR" \
  cargo run -q -p fdw-bench --release --bin table_headline >/dev/null
FDW_SMOKE=1 FDW_OBS_DIR="$OBS_DIR" \
  cargo run -q -p fdw-bench --release --bin chaos_matrix >/dev/null
cargo run -q -p fdw-bench --release --bin validate_trace -- --min-cats 4 \
  "$OBS_DIR"/chaos_matrix.trace.json \
  "$OBS_DIR"/chaos_matrix.metrics.json \
  "$OBS_DIR"/chaos_matrix.dag.metrics \
  "$OBS_DIR"/table_headline.metrics.json

echo "==> defense ablation smoke (defenses-on badput must not exceed defenses-off)"
FDW_SMOKE=1 FDW_BENCH_OUT=target/BENCH_defenses.smoke.json \
  cargo run -q -p fdw-bench --release --bin defense_ablation >/dev/null

echo "==> failover ablation smoke (failover-on must not lose time-to-done or badput)"
FDW_SMOKE=1 FDW_BENCH_OUT=target/BENCH_failover.smoke.json \
  cargo run -q -p fdw-bench --release --bin failover_ablation >/dev/null

echo "==> des-scaling smoke (sharded engine: identical digests, no slowdown)"
# The binary exits 1 itself on any digest mismatch or a sharded arm
# slower than the monolithic baseline; re-check the 2-thread arm from
# the JSON so a silent gate regression in the binary can't pass CI.
FDW_SMOKE=1 FDW_BENCH_OUT=target/BENCH_des.smoke.json \
  cargo run -q -p fdw-bench --release --bin des_scaling >/dev/null
grep -q '"digest_matches":false' target/BENCH_des.smoke.json && {
  echo "des-scaling smoke: digest mismatch in report"; exit 1; }
t2_speedup=$(grep -o '"label":"sharded-t2"[^}]*' target/BENCH_des.smoke.json \
  | grep -o '"speedup_vs_monolithic":[0-9.]*' | cut -d: -f2)
awk -v s="$t2_speedup" 'BEGIN { exit !(s >= 1.0) }' || {
  echo "des-scaling smoke: 2-thread speedup $t2_speedup < 1.0x vs monolithic"; exit 1; }

echo "CI green."
