#!/usr/bin/env bash
# Opt-in dynamic determinism pass (DESIGN.md §9) — the runtime complement
# of the static `fdwlint` gate. Two stages:
#
#   1. Thread-count determinism smoke: run the artifact-writing science
#      path at FDW_THREADS ∈ {1, 2, 8} and byte-compare every `.npy` and
#      `.mseed` product across thread counts. Parallel must equal
#      sequential bitwise, all the way down to the serialised bytes.
#   2. ThreadSanitizer over the parallel kernels — requires a nightly
#      toolchain with the rust-src component; skipped (with a notice,
#      exit 0) when unavailable, so the script is safe to run anywhere.
#
# Not part of scripts/ci.sh: run it by hand or from a scheduled job.
# (A cargo-test promotion of the byte-compare idea runs on every push:
# htcsim/tests/des_differential.rs re-runs the golden scenarios across
# the FDW_THREADS × shards matrix in-process and via subprocesses.)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> fdwlint report (static flows, for sink cross-referencing)"
# A dynamic mismatch below is only tolerable when the static pass has a
# *justified* (allow-annotated) source->sink flow of the matching sink
# kind on record; regenerate the report so the cross-reference is fresh.
FDWLINT_REPORT="target/fdwlint.report.json"
cargo run -q -p fdwlint --release -- --json > "$FDWLINT_REPORT" || true

# Sink kinds carrying an fdwlint-allowed flow, one per line.
allowed_sink_kinds() {
  grep -o '"sink_kind": "[a-z-]*"' "$FDWLINT_REPORT" 2>/dev/null \
    | cut -d'"' -f4 | sort -u
}

# Report a byte mismatch on a serialized artifact: tolerated (with the
# justification surfaced) iff a matching allowed flow exists, otherwise a
# hard failure pointing at the static analysis.
#   check_mismatch <artifact> <sink-kind> <threads>  -> sets fail=1 or not
check_mismatch() {
  local artifact="$1" kind="$2" n="$3"
  if allowed_sink_kinds | grep -qx "$kind"; then
    echo "  BYTE MISMATCH: $artifact differs between FDW_THREADS=1 and FDW_THREADS=$n"
    echo "    ...but an fdwlint-allowed $kind flow is on record — see allowed_flows in $FDWLINT_REPORT"
  else
    echo "  BYTE MISMATCH: $artifact differs between FDW_THREADS=1 and FDW_THREADS=$n"
    echo "    and no allowed $kind flow is on record: an unreported nondeterministic"
    echo "    dataflow reaches this sink — run 'cargo run -p fdwlint' to locate it"
    fail=1
  fi
}

echo "==> thread-count determinism smoke (FDW_THREADS 1/2/8)"
SMOKE_ROOT="$PWD/target/sanitize"
rm -rf "$SMOKE_ROOT"
for n in 1 2 8; do
  dir="$SMOKE_ROOT/threads-$n"
  mkdir -p "$dir"
  echo "  -> FDW_THREADS=$n"
  # fakequakes::par sizes its fan-out from the Rayon pool, so the
  # suite's FDW_THREADS knob maps onto RAYON_NUM_THREADS; the example
  # writes its products under \$TMPDIR.
  FDW_THREADS="$n" RAYON_NUM_THREADS="$n" TMPDIR="$dir" \
    cargo run -q --release --example chile_catalog >/dev/null
done

baseline_dir="$SMOKE_ROOT/threads-1/fdw_chile_catalog"
artifacts=$(cd "$baseline_dir" && ls ./*.npy ./*.mseed)
[ -n "$artifacts" ] || { echo "no .npy/.mseed artifacts produced"; exit 1; }
fail=0
for n in 2 8; do
  for f in $artifacts; do
    if cmp -s "$baseline_dir/$f" "$SMOKE_ROOT/threads-$n/fdw_chile_catalog/$f"; then
      :
    else
      case "$f" in
        *.npy) check_mismatch "$f" npy-serializer "$n" ;;
        *) check_mismatch "$f" mseed-serializer "$n" ;;
      esac
    fi
  done
  echo "  -> threads-$n vs threads-1: $(echo "$artifacts" | wc -w) artifact(s) compared"
done
[ "$fail" -eq 0 ] || { echo "thread-count determinism smoke FAILED"; exit 1; }
echo "  byte-identical across FDW_THREADS 1/2/8."

echo "==> failover-path determinism (FDW_THREADS 1/2/8, BENCH_failover bytes)"
# The failover ablation digests its science products in-binary and embeds
# makespans, badput and federation counters in its JSON: byte-comparing
# the report across thread counts pins the whole federated path — sim,
# controller, and the rayon-parallel science kernels behind the digest.
for n in 1 2 8; do
  echo "  -> FDW_THREADS=$n"
  FDW_SMOKE=1 FDW_THREADS="$n" RAYON_NUM_THREADS="$n" \
    FDW_BENCH_OUT="$SMOKE_ROOT/failover-threads-$n.json" \
    cargo run -q -p fdw-bench --release --bin failover_ablation >/dev/null
done
for n in 2 8; do
  if ! cmp -s "$SMOKE_ROOT/failover-threads-1.json" \
              "$SMOKE_ROOT/failover-threads-$n.json"; then
    check_mismatch "BENCH_failover" bench-json "$n"
  fi
done
[ "$fail" -eq 0 ] || { echo "failover-path determinism smoke FAILED"; exit 1; }
echo "  failover report byte-identical across FDW_THREADS 1/2/8."

echo "==> service-path determinism (FDW_THREADS 1/2/8, BENCH_service bytes)"
# The overload ablation runs every arm twice across DES thread and
# executor-shard counts, folds the completed campaigns' rupture draws
# through the shared-store and isolated science passes, and embeds every
# decision counter and digest in its JSON: byte-comparing the report
# across thread counts pins the whole multi-tenant front-end path — the
# admission/shedding decisions, the artifact store, and the rayon-
# parallel factorisations behind the science digest.
for n in 1 2 8; do
  echo "  -> FDW_THREADS=$n"
  FDW_SMOKE=1 FDW_THREADS="$n" RAYON_NUM_THREADS="$n" \
    FDW_BENCH_OUT="$SMOKE_ROOT/service-threads-$n.json" \
    cargo run -q -p fdw-bench --release --bin overload_ablation >/dev/null
done
for n in 2 8; do
  if ! cmp -s "$SMOKE_ROOT/service-threads-1.json" \
              "$SMOKE_ROOT/service-threads-$n.json"; then
    check_mismatch "BENCH_service" bench-json "$n"
  fi
done
[ "$fail" -eq 0 ] || { echo "service-path determinism smoke FAILED"; exit 1; }
echo "  service report byte-identical across FDW_THREADS 1/2/8."

echo "==> simd kernel-chain determinism (FDW_THREADS 1/2/8, bench_snapshot digest)"
# bench_snapshot's child mode folds every laned/blocked kernel output —
# distance matrices, von Kármán covariance, Cholesky, matmul, matvec and
# the hoisted Green's functions — into one FNV-1a digest (DESIGN.md §13).
# Comparing that digest across thread counts pins the simd layer the same
# way the artifact byte-compare above pins the catalog path.
simd_ref=""
for n in 1 2 8; do
  d=$(FDW_BENCH_CHILD=digest FDW_SMOKE=1 FDW_THREADS="$n" RAYON_NUM_THREADS="$n" \
    cargo run -q -p fdw-bench --release --bin bench_snapshot)
  echo "  -> FDW_THREADS=$n: $d"
  case "$d" in digest=*) : ;; *)
    echo "  bench_snapshot child printed no digest"; exit 1 ;; esac
  if [ -z "$simd_ref" ]; then
    simd_ref="$d"
  elif [ "$d" != "$simd_ref" ]; then
    echo "  DIGEST MISMATCH: simd kernel chain differs at FDW_THREADS=$n"
    fail=1
  fi
done
[ "$fail" -eq 0 ] || { echo "simd kernel-chain determinism smoke FAILED"; exit 1; }
echo "  simd kernel digest identical across FDW_THREADS 1/2/8."

echo "==> ThreadSanitizer (nightly, opt-in)"
if ! command -v rustup >/dev/null 2>&1; then
  echo "  rustup not installed — skipping TSan stage."
  exit 0
fi
if ! rustup toolchain list 2>/dev/null | grep -q nightly; then
  echo "  no nightly toolchain installed — skipping TSan stage."
  echo "  (install with: rustup toolchain install nightly --component rust-src)"
  exit 0
fi
if ! rustup component list --toolchain nightly 2>/dev/null \
    | grep -q '^rust-src (installed)'; then
  echo "  nightly lacks rust-src (needed for -Zbuild-std) — skipping TSan stage."
  echo "  (install with: rustup component add rust-src --toolchain nightly)"
  exit 0
fi
host=$(rustc -vV | sed -n 's/^host: //p')
echo "  running TSan over the parallel kernels (fakequakes) on $host..."
RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
  cargo +nightly test -Zbuild-std --target "$host" -p fakequakes --lib
echo "  running TSan over the sharded DES event loop (htcsim) on $host..."
# The des module's epoch-parallel lane drain is the only fork-join in
# the simulator; its unit tests run it at up to 8 threads.
RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
  cargo +nightly test -Zbuild-std --target "$host" -p htcsim --lib des::
echo "sanitize pass green."
