//! # fdw-suite — FakeQuakes DAGMan Workflow reproduction suite
//!
//! Umbrella crate re-exporting the whole stack built for the reproduction
//! of *"Accelerating Data-Intensive Seismic Research Through Parallel
//! Workflow Optimization and Federated Cyberinfrastructure"* (Adair,
//! Rodero, Parashar, Melgar — SC-W 2023):
//!
//! * [`fakequakes`] — stochastic rupture + synthetic GNSS waveform engine
//!   (the MudPy/FakeQuakes substitute);
//! * [`htcsim`] — discrete-event HTCondor-style pool simulator (the
//!   OSG/OSPool substitute);
//! * [`dagman`] — DAG workflow engine with throttles, retries, rescue
//!   DAGs and monitoring;
//! * [`fdw_core`] — the FakeQuakes DAGMan Workflow itself (the paper's
//!   contribution);
//! * [`fdw_service`] — the multi-tenant campaign front-end: admission
//!   control, fair share, load shedding and the content-addressed
//!   shared artifact store;
//! * [`vdc_burst`] — the VDC cloud-bursting simulator with the three
//!   OSG-tailored policies;
//! * [`fdw_obs`] — the observability layer: sim-time tracing, metrics
//!   registry, Chrome-trace and `.dag.metrics` exporters.
//!
//! See `examples/quickstart.rs` for a five-minute tour and the
//! `fdw-bench` crate for the per-figure experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dagman;
pub use eew;
pub use fakequakes;
pub use fdw_core;
pub use fdw_obs;
pub use fdw_service;
pub use htcsim;
pub use vdc_burst;
pub use vdc_catalog;
