//! Workspace-wide determinism: identical seeds must reproduce identical
//! results across every layer — the property DESIGN.md §5 promises and
//! the paper's "3 replications" methodology depends on.

use fdw_suite::fakequakes::prelude::*;
use fdw_suite::fdw_core::prelude::*;
use fdw_suite::htcsim::cluster::ClusterConfig;
use fdw_suite::htcsim::pool::PoolConfig;
use fdw_suite::vdc_burst::prelude::*;

fn cluster() -> ClusterConfig {
    ClusterConfig {
        pool: PoolConfig {
            target_slots: 64,
            glidein_slots: 8,
            ..Default::default()
        },
        transfer: Default::default(),
        cache_enabled: true,
        max_evictions_per_job: 0,
        faults: Default::default(),
        defense: Default::default(),
        federation: Default::default(),
        shards: 1,
    }
}

#[test]
fn full_stack_replay_is_bit_identical() {
    let cfg = FdwConfig::parse("station_input = small\nn_waveforms = 96\n").unwrap();
    let run = || {
        let out = run_fdw(&cfg, cluster(), 11).unwrap();
        let jobs_csv = out.report.log.jobs_csv(out.report.name_of());
        let batch_csv = out.report.log.batch_csv();
        (
            out.report.makespan,
            out.report.evictions,
            batch_csv,
            jobs_csv,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "makespan");
    assert_eq!(a.1, b.1, "evictions");
    assert_eq!(a.2, b.2, "batch CSV");
    assert_eq!(a.3, b.3, "jobs CSV");
}

#[test]
fn bursting_replay_is_deterministic() {
    let cfg = FdwConfig::parse("station_input = small\nn_waveforms = 96\n").unwrap();
    let out = run_fdw(&cfg, cluster(), 13).unwrap();
    let input = BatchInput::from_report(&out.report).unwrap();
    let policies = BurstPolicies::paper_sweep(5, 90);
    let x = simulate(&input, &policies).unwrap();
    let y = simulate(&input, &policies).unwrap();
    assert_eq!(x.bursted_jobs, y.bursted_jobs);
    assert_eq!(x.runtime_secs, y.runtime_secs);
    assert_eq!(x.instant_series, y.instant_series);
}

#[test]
fn science_is_seed_stable_across_catalog_sizes() {
    // Scenario k of a batch must not depend on how many other scenarios
    // the batch contains — the contract that lets the FDW partition the
    // id space across jobs arbitrarily.
    let fault = FaultModel::chilean_subduction(10, 5).unwrap();
    let net = StationNetwork::chilean(3, 2).unwrap();
    let wcfg = WaveformConfig {
        duration_s: 64.0,
        noise: NoiseModel::none(),
        ..Default::default()
    };
    let small = generate_catalog(
        &fault,
        &net,
        None,
        None,
        RuptureConfig::default(),
        wcfg,
        2,
        9,
    )
    .unwrap();
    let large = generate_catalog(
        &fault,
        &net,
        None,
        None,
        RuptureConfig::default(),
        wcfg,
        6,
        9,
    )
    .unwrap();
    for k in 0..2 {
        assert_eq!(small.scenarios[k].slip_m, large.scenarios[k].slip_m);
        for (a, b) in small.waveforms[k].iter().zip(&large.waveforms[k]) {
            assert_eq!(a.east_m, b.east_m);
        }
    }
}

#[test]
fn telemetry_exports_are_byte_identical_across_replays() {
    // The observability layer must add zero nondeterminism: two same-seed
    // runs export byte-identical Chrome traces, registry JSON, and
    // .dag.metrics documents. This is what makes a trace diffable as a
    // regression artifact.
    let cfg = FdwConfig::parse("station_input = small\nn_waveforms = 96\n").unwrap();
    let run = || {
        let obs = Obs::enabled();
        let out = run_concurrent_fdw_with_obs(&cfg, 2, 96, cluster(), 17, &obs).unwrap();
        (obs.chrome_trace(), obs.registry_json(), out.dag_metrics)
    };
    let (trace_a, reg_a, dm_a) = run();
    let (trace_b, reg_b, dm_b) = run();
    assert_eq!(trace_a, trace_b, "Chrome trace");
    assert_eq!(reg_a, reg_b, "registry JSON");
    assert_eq!(dm_a, dm_b, ".dag.metrics documents");
    // And the artifacts are well-formed, not just stable.
    fdw_suite::fdw_obs::json::validate(&trace_a).unwrap();
    fdw_suite::fdw_obs::json::validate(&reg_a).unwrap();
    for doc in &dm_a {
        fdw_suite::fdw_obs::json::validate(doc).unwrap();
    }
    assert_eq!(dm_a.len(), 2, "one .dag.metrics per DAGMan");
}

#[test]
fn chaos_telemetry_is_byte_identical_across_replays() {
    let cfg = FdwConfig::parse(
        "station_input = small\nn_waveforms = 8\nruptures_per_job = 2\nwaveforms_per_job = 2\n\
         fault_nx = 10\nfault_nd = 5\nretries = 3\nretry_defer_s = 30\nseed = 5\n",
    )
    .unwrap();
    let run = || {
        let obs = Obs::enabled();
        let rep = run_chaos_campaign_with_obs(
            FaultClass::TransferFail,
            0.6,
            &cfg,
            &chaos_cluster_config(),
            4,
            &obs,
        )
        .unwrap();
        (obs.chrome_trace(), obs.registry_json(), rep.round_metrics)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "chaos telemetry replay");
}

#[test]
fn parallel_covariance_and_distance_npy_bytes_match_sequential() {
    // The blocked/parallel kernels must not change a single bit of the
    // serialised science artifacts relative to their sequential oracles.
    use fdw_suite::fakequakes::{artifacts, npy, stochastic, vonkarman::VonKarman};
    let fault = FaultModel::chilean_subduction(12, 6).unwrap();
    let net = StationNetwork::chilean(4, 3).unwrap();
    let par = DistanceMatrices::compute(&fault, &net);
    let seq = DistanceMatrices::compute_seq(&fault, &net);
    assert_eq!(
        artifacts::distance_matrices_to_npy(&par),
        artifacts::distance_matrices_to_npy(&seq),
        "distance-matrix .npy bytes"
    );
    let kernel = VonKarman::default();
    let cov_par = stochastic::assemble_covariance(&par.subfault_to_subfault, &kernel);
    let cov_seq = stochastic::assemble_covariance_seq(&seq.subfault_to_subfault, &kernel);
    assert_eq!(
        npy::to_npy_bytes(&cov_par),
        npy::to_npy_bytes(&cov_seq),
        "covariance .npy bytes"
    );
}

#[test]
fn parallel_waveform_mseed_bytes_match_sequential() {
    use fdw_suite::fakequakes::{artifacts, mseed::MseedFile, waveform};
    let fault = FaultModel::chilean_subduction(10, 5).unwrap();
    let net = StationNetwork::chilean(4, 2).unwrap();
    let dists = DistanceMatrices::compute(&fault, &net);
    let gfs = GfLibrary::compute(&fault, &net).unwrap();
    let generator = RuptureGenerator::new(
        &fault,
        &dists.subfault_to_subfault,
        RuptureConfig::default(),
    )
    .unwrap();
    let scenario = generator.generate(3, 1);
    let cfg = WaveformConfig {
        duration_s: 64.0,
        ..Default::default()
    };
    let to_bytes = |wfs: &[GnssWaveform]| {
        let mut f = MseedFile::new();
        for w in wfs {
            artifacts::waveform_to_mseed(&mut f, w);
        }
        f.to_bytes().unwrap()
    };
    let par = waveform::synthesize_all_stations(
        &fault,
        &gfs,
        &dists.station_to_subfault,
        &scenario,
        &cfg,
        5,
    )
    .unwrap();
    let seq = waveform::synthesize_all_stations_seq(
        &fault,
        &gfs,
        &dists.station_to_subfault,
        &scenario,
        &cfg,
        5,
    )
    .unwrap();
    assert_eq!(to_bytes(&par), to_bytes(&seq), "waveform .mseed bytes");
}

#[test]
fn different_seeds_give_different_worlds() {
    let cfg = FdwConfig::parse("station_input = small\nn_waveforms = 96\n").unwrap();
    let a = run_fdw(&cfg, cluster(), 1).unwrap().report.makespan;
    let b = run_fdw(&cfg, cluster(), 2).unwrap().report.makespan;
    assert_ne!(a, b);
}
