//! End-to-end integration: config file → DAG → simulated OSG run →
//! monitoring statistics → bursting-simulator CSVs → bursting replay.
//! Exercises every crate of the workspace in one pipeline.

use fdw_suite::dagman::monitor::per_dagman_stats;
use fdw_suite::fdw_core::prelude::*;
use fdw_suite::htcsim::cluster::ClusterConfig;
use fdw_suite::htcsim::pool::PoolConfig;
use fdw_suite::vdc_burst::prelude::*;

/// A fast pool for integration tests: high availability, no churn.
fn test_cluster() -> ClusterConfig {
    ClusterConfig {
        pool: PoolConfig {
            target_slots: 96,
            glidein_slots: 8,
            avail_mean: 0.9,
            avail_sigma: 0.05,
            glidein_lifetime_s: 1e9,
            ..Default::default()
        },
        transfer: Default::default(),
        cache_enabled: true,
        max_evictions_per_job: 0,
        faults: Default::default(),
        defense: Default::default(),
        federation: Default::default(),
        shards: 1,
    }
}

#[test]
fn config_to_bursting_pipeline() {
    // 1. Parse a user config.
    let cfg = FdwConfig::parse("station_input = small\nn_waveforms = 128\nseed = 3\n")
        .expect("config parses");
    assert_eq!(cfg.total_jobs(), 8 + 64 + 2);

    // 2. Build and sanity-check the DAG.
    let dag = build_fdw_dag(&cfg).expect("DAG builds");
    assert_eq!(dag.len() as u64, cfg.total_jobs());
    dag.topological_order().expect("DAG acyclic");

    // 3. Run on the simulated pool.
    let out = run_fdw(&cfg, test_cluster(), 3).expect("run completes");
    assert_eq!(out.stats[0].completed as u64, cfg.total_jobs());

    // 4. Monitoring statistics exist and are sane.
    let stats = per_dagman_stats(&out.report);
    assert_eq!(stats.len(), 1);
    assert!(stats[0].throughput_jpm() > 0.0);
    assert_eq!(
        stats[0].rupture_exec_secs.len() as u64,
        cfg.n_rupture_jobs()
    );
    assert_eq!(
        stats[0].waveform_exec_secs.len() as u64,
        cfg.n_waveform_jobs()
    );

    // 5. Export the bursting-simulator CSVs and replay them.
    let batch_csv = out.report.log.batch_csv();
    let jobs_csv = out.report.log.jobs_csv(out.report.name_of());
    let input = BatchInput::from_csv(&batch_csv, &jobs_csv).expect("CSV parse");
    assert_eq!(input.jobs.len() as u64, cfg.total_jobs());

    let control = simulate(&input, &BurstPolicies::control()).expect("control");
    assert_eq!(control.bursted_jobs, 0);
    assert_eq!(control.unfinished_jobs, 0);
    assert_eq!(
        control.runtime_secs,
        out.report.makespan.as_secs() - input.batch.submit_s
    );

    // 6. An aggressive queue policy bursts something and never loses jobs.
    let policies = BurstPolicies {
        queue_time: Some(QueueTimePolicy {
            max_queue_secs: 60,
            check_secs: 10,
        }),
        ..Default::default()
    };
    let bursted = simulate(&input, &policies).expect("bursted");
    assert_eq!(bursted.unfinished_jobs, 0);
    // Bursting is not guaranteed to shorten a batch (paper §5.3.3: batch 2
    // barely moved) but can exceed the control by at most one VDC job
    // duration — a job bursted just before the batch would have finished.
    assert!(
        bursted.runtime_secs <= control.runtime_secs + 287,
        "bursted {} vs control {}",
        bursted.runtime_secs,
        control.runtime_secs
    );
    assert!(
        (bursted.cost_usd - bursted.vdc_minutes * 0.0017).abs() < 1e-9,
        "eq. (7) must hold"
    );

    // 7. The HTCondor-dialect text log round-trips and stays greppable —
    //    the artifact the paper's shell scripts actually parse.
    let condor_text = fdw_suite::htcsim::condor_log::to_condor_log(&out.report.log);
    let reparsed = fdw_suite::htcsim::condor_log::parse_condor_log(&condor_text).unwrap();
    assert_eq!(reparsed.completed_count(), out.report.completed);
    let grep_005 = condor_text
        .lines()
        .filter(|l| l.starts_with("005 "))
        .count();
    assert_eq!(grep_005 as u64, cfg.total_jobs());
}

#[test]
fn concurrent_dagmans_fair_share_shape() {
    // The §4.2 result at integration-test scale: doubling DAGMans must
    // substantially cut per-DAGMan throughput while total runtime does
    // not shrink accordingly.
    let base = FdwConfig::parse("station_input = small\nn_waveforms = 256\n").unwrap();
    let one = run_concurrent_fdw(&base, 1, 256, test_cluster(), 5).unwrap();
    let four = run_concurrent_fdw(&base, 4, 256, test_cluster(), 5).unwrap();
    let thpt = |o: &FdwOutcome| {
        let inputs = o.throughput_inputs();
        inputs.iter().map(|(j, r)| *j as f64 / r).sum::<f64>() / inputs.len() as f64
    };
    let t1 = thpt(&one);
    let t4 = thpt(&four);
    assert!(
        t4 < t1 * 0.6,
        "per-DAGMan throughput should collapse: 1-way {t1:.2} vs 4-way {t4:.2}"
    );
    let rt1 = one.runtimes_hours()[0];
    let rt4 = four.runtimes_hours().iter().cloned().fold(0.0, f64::max);
    assert!(
        rt4 > rt1 * 0.5,
        "runtime must not drop 4x: 1-way {rt1:.2} h vs slowest of 4-way {rt4:.2} h"
    );
}

#[test]
fn recycled_npy_skips_matrix_job_in_real_run() {
    let cfg =
        FdwConfig::parse("station_input = small\nn_waveforms = 64\nrecycle_npy = true\n").unwrap();
    let out = run_fdw(&cfg, test_cluster(), 9).unwrap();
    assert!(
        !out.report
            .job_names
            .values()
            .any(|n| n.starts_with("matrix")),
        "recycled run must not submit a matrix job"
    );
    assert_eq!(out.stats[0].completed as u64, cfg.total_jobs());
}

#[test]
fn fdw_beats_single_machine_baseline() {
    // The §6 headline at test scale: the parallel workflow must beat the
    // 4-slot single machine. The batch must be large enough that the
    // serial GF phase (~2.9 h, identical on both sides) does not dominate
    // the 96-slot test pool's advantage.
    let cfg = FdwConfig::parse("station_input = full\nn_waveforms = 2000\n").unwrap();
    let fdw = run_fdw(&cfg, test_cluster(), 1).unwrap().stats[0].runtime_secs();
    let aws = aws_baseline(&cfg, 1).makespan.as_secs();
    assert!(
        fdw < aws,
        "FDW ({fdw}s) must beat the single machine ({aws}s)"
    );
}
