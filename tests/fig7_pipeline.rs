//! The paper's Fig. 7 data flow as one integration test: FDW simulation
//! products → archive manifest → VDC deposition/curation/tagging →
//! discovery → delivery → EEW model training. Every crate participates.

use fdw_suite::eew::prelude::*;
use fdw_suite::fdw_core::archive::ArchiveManifest;
use fdw_suite::fdw_core::config::{FdwConfig, StationInput};
use fdw_suite::fdw_core::live;
use fdw_suite::vdc_catalog::prelude::*;

#[test]
fn fig7_products_to_eew_model() {
    // 1. Live FDW science: a small catalog with real numerics.
    let cfg = FdwConfig {
        fault_nx: 20,
        fault_nd: 8,
        station_input: StationInput::Count(16),
        n_waveforms: 16,
        mw_range: (7.6, 8.9),
        seed: 6,
        ..Default::default()
    };
    let inputs = live::build_inputs(&cfg).unwrap();
    let catalog = live::live_full_run(&cfg, 256.0).unwrap();
    assert_eq!(catalog.len(), 16);

    // 2. Archive + deposit into the VDC with magnitude enrichment.
    let manifest = ArchiveManifest::for_run("fig7_run", &cfg);
    let mut vdc = VdcCatalog::new();
    let ids = vdc.deposit_manifest(&manifest, "chile", 0).unwrap();
    assert_eq!(ids.len(), manifest.len());
    for id in &ids {
        vdc.curate(*id).unwrap();
    }
    // Tag waveform products with their scenario magnitudes.
    for scenario in &catalog.scenarios {
        let path = format!("fig7_run/waveforms/scenario_{:06}.mseed", scenario.id);
        let rec_id = vdc.by_path(&path).expect("archived waveform").id;
        vdc.set_magnitude(rec_id, scenario.mw).unwrap();
        vdc.tag(rec_id, "eew-training").unwrap();
    }

    // 3. Discovery: an EEW researcher's query finds exactly the tagged
    //    large-event products.
    let q = Query::all().tag("eew-training").mw(7.6, 9.0);
    let hits = vdc.query(&q);
    assert_eq!(hits.len(), 16);

    // 4. Delivery: two training epochs through the prefetching cache.
    let trace: Vec<RecordId> = hits.iter().map(|r| r.id).collect();
    let mut model = TransitionModel::default();
    model.train(&trace);
    let mut cache = DeliveryCache::new(&vdc, vdc.query_size_mb(&q) * 0.5);
    cache.replay_with_prefetch(&trace, &model);
    cache.replay_with_prefetch(&trace, &model);
    assert!(
        cache.stats().hit_rate() > 0.3,
        "prefetching delivery should serve repeat epochs: {}",
        cache.stats().hit_rate()
    );

    // 5. EEW training on the delivered products.
    let obs = fdw_suite::eew::dataset::observations_from_catalog(
        &catalog,
        &inputs.fault,
        &inputs.network,
        0.005,
    );
    assert!(obs.len() > 50, "enough observations to fit: {}", obs.len());
    let (train, test) = fdw_suite::eew::dataset::split(&obs, 4);
    let model = PgdScalingModel::fit(&train).expect("scaling law fits");
    // PGD must grow with magnitude and decay with distance — the physics
    // the regression is supposed to capture from our synthetic data.
    assert!(model.b > 0.0, "magnitude slope {}", model.b);
    assert!(model.c < 0.0, "attenuation coefficient {}", model.c);

    let estimates: Vec<(f64, f64)> = test
        .iter()
        .filter_map(|o| {
            model
                .estimate_mw_single(o.pgd_m, o.distance_km)
                .map(|e| (e, o.mw))
        })
        .collect();
    let errs = fdw_suite::eew::dataset::score(&estimates);
    assert!(errs.n > 10);
    assert!(
        errs.mae < 1.5,
        "single-station inversion should be informative: MAE {}",
        errs.mae
    );
}

#[test]
fn fig7_pipeline_works_for_cascadia_too() {
    use fdw_suite::fdw_core::config::Region;
    let cfg = FdwConfig {
        region: Region::Cascadia,
        fault_nx: 14,
        fault_nd: 6,
        station_input: StationInput::Count(8),
        n_waveforms: 6,
        seed: 10,
        ..Default::default()
    };
    let inputs = live::build_inputs(&cfg).unwrap();
    let catalog = live::live_full_run(&cfg, 128.0).unwrap();
    let obs = fdw_suite::eew::dataset::observations_from_catalog(
        &catalog,
        &inputs.fault,
        &inputs.network,
        0.0,
    );
    assert_eq!(obs.len(), 6 * 8);
    // Cascadia products archive and deposit the same way.
    let manifest = ArchiveManifest::for_run("cascadia_run", &cfg);
    let mut vdc = VdcCatalog::new();
    let ids = vdc.deposit_manifest(&manifest, "cascadia", 0).unwrap();
    for id in &ids {
        vdc.curate(*id).unwrap();
    }
    assert_eq!(
        vdc.query(&Query::all().region("cascadia").kind("waveform"))
            .len(),
        6
    );
}
