//! Integration of the science substrate: live FakeQuakes products flowing
//! through the artifact formats that the workflow ships between phases —
//! exactly what A/B/C-phase jobs do with real files on OSG nodes.

use fdw_suite::fakequakes::artifacts;
use fdw_suite::fakequakes::prelude::*;
use fdw_suite::fdw_core::config::{FdwConfig, StationInput};
use fdw_suite::fdw_core::live;

fn tiny_cfg() -> FdwConfig {
    FdwConfig {
        fault_nx: 12,
        fault_nd: 6,
        station_input: StationInput::Count(5),
        n_waveforms: 4,
        ruptures_per_job: 2,
        waveforms_per_job: 2,
        seed: 21,
        ..Default::default()
    }
}

#[test]
fn phase_artifacts_roundtrip_through_files() {
    let cfg = tiny_cfg();
    let dir = std::env::temp_dir().join("fdw_it_artifacts");
    std::fs::create_dir_all(&dir).unwrap();

    // A-phase matrix job: compute and persist the .npy pair.
    let inputs = live::build_inputs(&cfg).unwrap();
    let matrices = live::live_matrix_phase(&inputs);
    let (sub, sta) = artifacts::distance_matrices_to_npy(&matrices);
    std::fs::write(dir.join("sub.npy"), &sub).unwrap();
    std::fs::write(dir.join("sta.npy"), &sta).unwrap();

    // A later job recycles them from disk.
    let sub_bytes = std::fs::read(dir.join("sub.npy")).unwrap();
    let sta_bytes = std::fs::read(dir.join("sta.npy")).unwrap();
    let recycled = artifacts::distance_matrices_from_npy(
        inputs.fault.name(),
        inputs.network.name(),
        &sub_bytes,
        &sta_bytes,
    )
    .unwrap();
    recycled
        .check_compatible(&inputs.fault, &inputs.network)
        .expect("recycled matrices must validate");

    // B-phase: GF library through its .mseed bundle.
    let gfs = live::live_gf_phase(&inputs).unwrap();
    let bundle = artifacts::gf_library_to_mseed(&gfs);
    bundle.write(&dir.join("gf.mseed")).unwrap();
    let loaded = MseedFile::read(&dir.join("gf.mseed")).unwrap();
    let gfs2 =
        artifacts::gf_library_from_mseed(inputs.fault.name(), inputs.network.name(), &loaded)
            .unwrap();
    assert_eq!(gfs2.n_stations(), 5);

    // C-phase with recycled artifacts equals C-phase with fresh ones.
    let scenarios = live::live_rupture_job(&cfg, &inputs, &recycled, 0, 4).unwrap();
    let fresh = live::live_waveform_job(&cfg, &inputs, &matrices, &gfs, &scenarios, 64.0).unwrap();
    let warm = live::live_waveform_job(&cfg, &inputs, &recycled, &gfs2, &scenarios, 64.0).unwrap();
    for (a, b) in fresh.iter().flatten().zip(warm.iter().flatten()) {
        assert_eq!(a.east_m, b.east_m, "recycling must be bit-exact");
        assert_eq!(a.up_m, b.up_m);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn waveform_products_roundtrip_and_carry_signal() {
    let cfg = FdwConfig {
        mw_range: (8.4, 8.4),
        ..tiny_cfg()
    };
    let catalog = live::live_full_run(&cfg, 256.0).unwrap();
    assert_eq!(catalog.len(), 4);

    // Ship one scenario's waveforms through the .mseed container.
    let mut file = MseedFile::new();
    for w in &catalog.waveforms[0] {
        artifacts::waveform_to_mseed(&mut file, w);
    }
    let bytes = file.to_bytes().unwrap();
    let loaded = MseedFile::from_bytes(&bytes).unwrap();
    for w in &catalog.waveforms[0] {
        let back = artifacts::waveform_from_mseed(&loaded, &w.station_code, w.scenario_id).unwrap();
        assert_eq!(back.east_m, w.east_m);
    }

    // A Mw 8.4 event must displace at least one station visibly.
    let max_pgd = catalog
        .waveforms
        .iter()
        .flatten()
        .map(|w| w.pgd_m())
        .fold(0.0f64, f64::max);
    assert!(max_pgd > 0.01, "max PGD {max_pgd} m too small for Mw 8.4");
}

#[test]
fn dag_counts_match_live_work_partition() {
    // The DAG's job count must exactly cover the scenario ids the live
    // path would compute: n_rupture_jobs * ruptures_per_job >= n and the
    // last job handles the remainder.
    let cfg = FdwConfig {
        n_waveforms: 7,
        ..tiny_cfg()
    };
    let dag = fdw_suite::fdw_core::phases::build_fdw_dag(&cfg).unwrap();
    let rupture_nodes = dag
        .nodes()
        .iter()
        .filter(|n| n.name.starts_with("rupture."))
        .count() as u64;
    assert_eq!(rupture_nodes, cfg.n_rupture_jobs());
    assert!(rupture_nodes * cfg.ruptures_per_job as u64 >= cfg.n_waveforms);
    let waveform_nodes = dag
        .nodes()
        .iter()
        .filter(|n| n.name.starts_with("waveform."))
        .count() as u64;
    assert_eq!(waveform_nodes, cfg.n_waveform_jobs());
    assert!(waveform_nodes * cfg.waveforms_per_job as u64 >= cfg.n_waveforms);
}
