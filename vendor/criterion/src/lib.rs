//! Offline minimal stand-in for the `criterion` benchmark API.
//!
//! The build environment has no registry access, so the workspace's
//! `harness = false` bench targets link against this shim instead. It
//! preserves the API shape (`Criterion`, groups, `BenchmarkId`,
//! `b.iter`, the `criterion_group!`/`criterion_main!` macros) and reports
//! a simple mean wall-clock per iteration — no statistics, outlier
//! rejection, or HTML reports.

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement budget per benchmark function.
const TARGET_BUDGET: Duration = Duration::from_millis(500);
const MAX_ITERS: u64 = 50;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _parent: self }
    }

    /// Run a single standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), f);
        self
    }
}

/// A group of benchmarks sharing a prefix (and, upstream, a config).
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// A benchmark label, optionally `function/parameter` structured.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label of the form `function/parameter`.
    pub fn new(function: &str, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to the closure under measurement; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `f` repeatedly until the time budget or iteration cap.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up run.
        std::hint::black_box(f());
        let start = Instant::now();
        loop {
            std::hint::black_box(f());
            self.iters += 1;
            self.elapsed = start.elapsed();
            if self.elapsed >= TARGET_BUDGET || self.iters >= MAX_ITERS {
                break;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &BenchmarkId, mut f: F) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed / b.iters as u32
    } else {
        Duration::ZERO
    };
    println!(
        "  {:<40} {:>12.3?}/iter ({} iters)",
        id.label, per_iter, b.iters
    );
}

/// Re-export for call sites that use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a named runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `fn main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
