//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of proptest its tests actually use: the `proptest!` macro,
//! `Strategy` with `prop_map`, ranges / `Just` / `any` / tuple / regex-lite
//! string strategies, `collection::{vec, hash_set}`, `option::of`,
//! `prop_oneof!`, and the `prop_assert*` macros. Failing inputs are
//! reported but **not shrunk**; generation is deterministic per test name
//! so failures reproduce exactly.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`vec`, `hash_set`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// A target size drawn from a range, mirroring proptest's `SizeRange`.
    pub trait IntoSizeRange {
        /// Inclusive lower bound and exclusive upper bound.
        fn bounds(&self) -> (usize, usize);
    }
    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end.max(self.start + 1))
        }
    }
    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }
    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.lo, self.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }

    /// Strategy for `HashSet<S::Value>` with a *distinct-element* count
    /// drawn from `size` (best-effort: bails out if the element domain is
    /// too small to reach the target).
    pub struct HashSetStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.lo, self.hi);
            let mut out = HashSet::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < 20 * (n + 1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `proptest::collection::hash_set(element, size)`.
    pub fn hash_set<S: Strategy>(element: S, size: impl IntoSizeRange) -> HashSetStrategy<S> {
        let (lo, hi) = size.bounds();
        HashSetStrategy { element, lo, hi }
    }
}

/// Option strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `None` half the time, `Some` otherwise.
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `proptest::option::of(element)`.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

/// The glob-import surface used by test files.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Run the test body over generated inputs.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(8))]   // optional
///     #[test]
///     fn name(a in strategy_a, b in strategy_b) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(
                    #[allow(unused_mut)]
                    let mut $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                let run = || -> () { $body };
                let result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(run),
                );
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {}/{} failed in '{}' (no shrinking in \
                         offline stub)",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Skip the current case when its precondition does not hold. The offline
/// stub simply abandons the case (the body runs as a closure per case), so
/// assumption-heavy tests see fewer effective cases rather than retries.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Uniform choice among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(
            a in 0u64..100,
            b in -5i64..5,
            pair in (1usize..4, 0.0..1.0f64),
            flag in any::<bool>(),
        ) {
            prop_assert!(a < 100);
            prop_assert!((-5..5).contains(&b));
            prop_assert!((1..4).contains(&pair.0));
            prop_assert!((0.0..1.0).contains(&pair.1));
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn collections_strings_oneof(
            names in crate::collection::vec("[a-z][a-z0-9]{0,8}", 0..20),
            uniq in crate::collection::hash_set("[a-z]{1,6}", 0..10),
            pick in prop_oneof![Just(0usize), 1usize..8],
            opt in crate::option::of(6.0..9.5f64),
            mapped in (0u8..3).prop_map(|k| k * 10),
        ) {
            for n in &names {
                prop_assert!(!n.is_empty() && n.len() <= 9);
                prop_assert!(n.chars().next().unwrap().is_ascii_lowercase());
            }
            prop_assert!(uniq.len() < 10);
            for u in &uniq {
                prop_assert!((1..=6).contains(&u.len()));
            }
            prop_assert!(pick < 8);
            if let Some(mw) = opt {
                prop_assert!((6.0..9.5).contains(&mw));
            }
            prop_assert!(mapped % 10 == 0 && mapped <= 20);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u64..1000, 5..10);
        let mut r1 = TestRng::for_test("x");
        let mut r2 = TestRng::for_test("x");
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}
