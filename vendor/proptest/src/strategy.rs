//! The `Strategy` trait and the value sources the workspace's tests use.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Unlike upstream proptest
/// there is no value tree and no shrinking: a strategy is just a
/// deterministic function of the runner RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Box a strategy for use in heterogeneous collections ([`Union`]).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies; the expansion of `prop_oneof!`.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.usize_in(0, self.options.len());
        self.options[ix].generate(rng)
    }
}

/// The output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Types with a canonical "anything goes" strategy, used via [`any`].
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only: upstream's NaN/∞ corner cases are not
        // something the workspace's numeric properties opt into.
        rng.unit_f64() * 2e9 - 1e9
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
range_strategy_float!(f32, f64);

// String literals are regex-lite strategies: a sequence of `[class]`
// atoms (or literal characters), each with an optional `{n}` / `{m,n}`
// repetition. This covers the patterns the workspace's tests use, e.g.
// "[a-z][a-z0-9]{0,8}" or "[a-zA-Z0-9_.-]{0,12}".
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0usize;
    while i < chars.len() {
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
            let body = &chars[i + 1..close];
            i = close + 1;
            expand_class(body, pattern)
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional repetition suffix.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().unwrap_or(0),
                    n.trim().parse::<usize>().unwrap_or(0),
                ),
                None => {
                    let n = body.trim().parse::<usize>().unwrap_or(1);
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = rng.usize_in(lo, hi + 1);
        for _ in 0..count {
            let ix = rng.usize_in(0, class.len());
            out.push(class[ix]);
        }
    }
    out
}

fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(
        !body.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    let mut class = Vec::new();
    let mut j = 0usize;
    while j < body.len() {
        // 'a-z' is a range unless the '-' is the final character.
        if j + 2 < body.len() && body[j + 1] == '-' {
            let (lo, hi) = (body[j], body[j + 2]);
            assert!(lo <= hi, "bad class range in pattern {pattern:?}");
            for c in lo..=hi {
                class.push(c);
            }
            j += 3;
        } else {
            class.push(body[j]);
            j += 1;
        }
    }
    class
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $ix:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$ix.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11, M: 12)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11, M: 12, N: 13)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11, M: 12, N: 13, O: 14)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11, M: 12, N: 13, O: 14, P: 15)
}
