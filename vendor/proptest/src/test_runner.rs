//! Test-runner configuration and the deterministic generation RNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-`proptest!` block configuration. Only `cases` is honoured by the
/// offline stub.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the offline stub trims that so the
        // heavier simulation properties keep the suite fast.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG used for strategy generation. Seeded from the test
/// function name so every run (and every machine) sees the same inputs.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for the named test function.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw in `[lo, hi)`; returns `lo` when the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            lo
        } else {
            self.inner.gen_range(lo..hi)
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }
}
