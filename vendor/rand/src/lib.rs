//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of `rand` it actually uses: `StdRng` (here a
//! xoshiro256++ generator seeded via splitmix64), `SeedableRng::seed_from_u64`,
//! and the `Rng::gen` / `Rng::gen_range` / `Rng::gen_bool` methods for the
//! primitive types the simulator samples. Determinism is the only contract
//! the workspace relies on; stream compatibility with upstream `rand` is
//! explicitly not promised.

/// Random number generator implementations.
pub mod rngs {
    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// A generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 expansion of the seed, as upstream rand does for
        // generators with larger state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Uniform sampling of a full-range primitive value ("standard"
/// distribution in upstream rand terms).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value uniformly from the range. Panics when empty.
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    lo + rng.next_u64() as $t
                } else {
                    lo + (rng.next_u64() % span) as $t
                }
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize);

macro_rules! range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
range_signed!(i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing sampling interface.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draw a uniformly distributed value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draw uniformly from a range. Panics on empty ranges.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0usize..1);
            assert_eq!(y, 0);
            let z = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
            let f = r.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
