//! Offline sequential shim for the slice of the `rayon` API this
//! workspace uses (`into_par_iter` / `par_iter` followed by ordinary
//! iterator adapters). The build environment has no registry access, so
//! "parallel" iterators here are plain sequential `std` iterators — the
//! API shape is preserved, the work-stealing pool is not. Results are
//! identical because the call sites only use order-preserving adapters
//! (`map` + `collect`).

/// The rayon prelude: parallel-iterator conversion traits.
pub mod prelude {
    /// Owned conversion: `collection.into_par_iter()`.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item;
        /// Iterator type (sequential in this shim).
        type Iter: Iterator<Item = Self::Item>;
        /// Convert into a "parallel" (here: sequential) iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Borrowed conversion: `collection.par_iter()`.
    pub trait IntoParallelRefIterator<'data> {
        /// Element type (a reference).
        type Item: 'data;
        /// Iterator type (sequential in this shim).
        type Iter: Iterator<Item = Self::Item>;
        /// Iterate over `&self` "in parallel" (here: sequentially).
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Item = <&'data C as IntoIterator>::Item;
        type Iter = <&'data C as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn par_map_collect_matches_sequential() {
        let v: Vec<u64> = (0u64..100).into_par_iter().map(|x| x * x).collect();
        let s: Vec<u64> = (0u64..100).map(|x| x * x).collect();
        assert_eq!(v, s);
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled[10], v[10] * 2);
    }

    #[test]
    fn par_collect_result_short_circuits() {
        let r: Result<Vec<u64>, String> = (0u64..10).into_par_iter().map(Ok).collect();
        assert_eq!(r.unwrap().len(), 10);
        let e: Result<Vec<u64>, String> = (0u64..10)
            .into_par_iter()
            .map(|x| {
                if x == 3 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert!(e.is_err());
    }
}
