//! Offline shim for the slice of the `rayon` API this workspace uses.
//!
//! Two layers:
//!
//! * the **prelude** (`into_par_iter` / `par_iter` followed by ordinary
//!   iterator adapters) stays sequential — the API shape is preserved,
//!   the work-stealing pool is not, and results are identical because
//!   the call sites only use order-preserving adapters (`map` +
//!   `collect`);
//! * [`join`] / [`current_num_threads`] are **genuinely parallel**,
//!   built on `std::thread::scope`. The numeric kernels in `fakequakes`
//!   fan out through recursive `join` with deterministic split points,
//!   so their outputs are byte-identical to the sequential path
//!   regardless of scheduling.

use std::sync::OnceLock;

/// Number of worker threads the fork-join primitives may use: the
/// machine's available parallelism, overridable with the workspace-wide
/// `FDW_THREADS` knob or (like real rayon) `RAYON_NUM_THREADS`, in that
/// precedence order. Cached after the first call.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        for var in ["FDW_THREADS", "RAYON_NUM_THREADS"] {
            if let Ok(v) = std::env::var(var) {
                if let Ok(n) = v.trim().parse::<usize>() {
                    if n >= 1 {
                        return n;
                    }
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Run two closures, potentially in parallel, and return both results.
///
/// `b` runs on a scoped worker thread while `a` runs on the caller;
/// with a single available core (or under `RAYON_NUM_THREADS=1`) both
/// run inline on the caller to avoid spawn overhead. Panics in either
/// closure propagate to the caller, as in real rayon.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        match hb.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

/// The rayon prelude: parallel-iterator conversion traits.
pub mod prelude {
    /// Owned conversion: `collection.into_par_iter()`.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item;
        /// Iterator type (sequential in this shim).
        type Iter: Iterator<Item = Self::Item>;
        /// Convert into a "parallel" (here: sequential) iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Borrowed conversion: `collection.par_iter()`.
    pub trait IntoParallelRefIterator<'data> {
        /// Element type (a reference).
        type Item: 'data;
        /// Iterator type (sequential in this shim).
        type Iter: Iterator<Item = Self::Item>;
        /// Iterate over `&self` "in parallel" (here: sequentially).
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Item = <&'data C as IntoIterator>::Item;
        type Iter = <&'data C as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = crate::join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_nests() {
        let ((a, b), c) = crate::join(|| crate::join(|| 1, || 2), || 3);
        assert_eq!(a + b + c, 6);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(crate::current_num_threads() >= 1);
    }

    #[test]
    fn par_map_collect_matches_sequential() {
        let v: Vec<u64> = (0u64..100).into_par_iter().map(|x| x * x).collect();
        let s: Vec<u64> = (0u64..100).map(|x| x * x).collect();
        assert_eq!(v, s);
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled[10], v[10] * 2);
    }

    #[test]
    fn par_collect_result_short_circuits() {
        let r: Result<Vec<u64>, String> = (0u64..10).into_par_iter().map(Ok).collect();
        assert_eq!(r.unwrap().len(), 10);
        let e: Result<Vec<u64>, String> = (0u64..10)
            .into_par_iter()
            .map(|x| {
                if x == 3 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert!(e.is_err());
    }
}
